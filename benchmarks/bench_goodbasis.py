"""E7: good-basis construction (Lemma 40) vs basis dimension k."""

import random

import pytest

from repro.queries.cq import cq_from_structure
from repro.structures.generators import cycle_structure, path_structure
from repro.core.goodbasis import construct_good_basis, find_distinguishers
from repro.structures.schema import Schema


POOL = [
    path_structure(["R"]),
    path_structure(["R", "R"]),
    path_structure(["R", "R", "R"]),
    cycle_structure(3),
    cycle_structure(4),
    cycle_structure(5),
]
AMBIENT = Schema({"R": 2})


@pytest.mark.parametrize("k", [1, 2, 4, 6])
def test_construction_vs_dimension(benchmark, k):
    # The query must be a member of V ∪ {q}: take q = the disjoint
    # union of all k components, so every component maps into it
    # (the Definition 27 / Step 4 precondition).
    from repro.structures.operations import sum_structures

    components = POOL[:k]
    query = cq_from_structure(sum_structures(components))

    def build():
        return construct_good_basis(
            components, query, rng=random.Random(1)
        )

    good = benchmark(build)
    assert good.matrix.is_nonsingular()


@pytest.mark.parametrize("k", [2, 4, 6])
def test_step1_distinguishers(benchmark, k):
    components = POOL[:k]

    def build():
        return find_distinguishers(components, AMBIENT, rng=random.Random(1))

    chosen = benchmark(build)
    assert chosen


def test_symbolic_matrix_entries(benchmark):
    """The Step-3/4 matrix entries live on structures with astronomical
    materialized size; the symbolic evaluator prices each entry."""
    from repro.hom.count import count_homs

    components = POOL[:4]
    query = cq_from_structure(components[-1])
    good = construct_good_basis(components, query, rng=random.Random(1))
    biggest = good.structures[-1]
    # materialized domain would be huge:
    assert biggest.domain_size() > 10 ** 6

    count = benchmark(count_homs, components[0], biggest)
    assert count > 0
