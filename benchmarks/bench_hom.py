"""E5: homomorphism-counting engine scaling + the factorization ablation.

Compares the component-factorized counter (Lemma 4(5)) against raw
backtracking on multi-component sources (DESIGN.md §6.3), and measures
symbolic counting into deep lazy expressions against materialization.
"""

import pytest

from repro.hom.count import count_homs
from repro.hom.search import count_homomorphisms_direct
from repro.structures.expression import PowerExpression, scaled_sum
from repro.structures.generators import (
    clique_structure,
    cycle_structure,
    path_structure,
)
from repro.structures.operations import sum_structures


EDGE = path_structure(["R"])
PATH3 = path_structure(["R", "R", "R"])
C3 = cycle_structure(3)


@pytest.mark.parametrize("target_size", [4, 6, 8])
def test_count_into_clique(benchmark, target_size):
    target = clique_structure(target_size)
    count = benchmark(count_homs, PATH3, target)
    assert count == target_size * (target_size - 1) ** 3


@pytest.mark.parametrize("components", [1, 2, 3])
def test_factorized_multi_component(benchmark, components):
    """Factorized counting: cost grows linearly in component count."""
    source = sum_structures([PATH3] * components)
    target = clique_structure(5)
    count = benchmark(count_homs, source, target)
    assert count == (5 * 4 ** 3) ** components


@pytest.mark.parametrize("components", [1, 2, 3])
def test_ablation_direct_multi_component(benchmark, components):
    """Ablation: raw backtracking pays the exponential product."""
    source = sum_structures([PATH3] * components)
    target = clique_structure(5)
    count = benchmark(count_homomorphisms_direct, source, target)
    assert count == (5 * 4 ** 3) ** components


@pytest.mark.parametrize("depth", [2, 8, 32])
def test_symbolic_count_into_power(benchmark, depth):
    """Counting into (2·C3 + edge)^depth without materializing."""
    expression = PowerExpression(scaled_sum([(2, C3), (1, EDGE)]), depth)
    count = benchmark(count_homs, EDGE, expression)
    assert count == 7 ** depth


def test_ablation_materialized_power(benchmark):
    """Materializing the same expression at the largest feasible depth
    (the symbolic path handles depth 32; materialization caps at 2)."""
    expression = PowerExpression(scaled_sum([(2, C3), (1, EDGE)]), 2)

    def materialize_and_count():
        concrete = expression.materialize(max_domain=100)
        return count_homomorphisms_direct(EDGE, concrete)

    assert benchmark(materialize_and_count) == 49
