"""Pytest hooks for the benchmark suite (workloads live in workloads.py)."""
