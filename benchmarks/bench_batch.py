"""E15: batch-evaluation throughput — workers, chunking, persistent cache.

Two faces:

* ``pytest benchmarks/bench_batch.py`` — pytest-benchmark timings for
  the single-worker evaluator, the chunk codec overhead, and the
  cache-warm rerun path;
* ``python benchmarks/bench_batch.py`` — the acceptance-style
  throughput sweep: evaluates one generated scenario at several worker
  counts and prints tasks/s and the speedup over one worker.  On a
  multi-core machine 4 workers should clear 2x; on a single-core
  container the sweep reports honestly that there is nothing to win.

The workload is deliberately CPU-heavy per task (witness construction
plus verification on multi-component instances), so process scheduling
overhead is amortized and the sweep measures compute scaling, not IPC.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.batch.runner import iter_results
from repro.batch.scenarios import generate_scenario
from repro.batch.tasks import encode_task


def heavy_lines(count: int, seed: int = 0):
    """A witness-heavy scenario: the per-task cost profile of E8."""
    tasks = generate_scenario("cq-witness", count, seed=seed,
                              n_views=16, max_components=4)
    return [encode_task(record) for record in tasks]


def light_lines(count: int, seed: int = 0):
    return [encode_task(record)
            for record in generate_scenario("mixed", count, seed=seed)]


# ----------------------------------------------------------------------
# pytest-benchmark timings
# ----------------------------------------------------------------------
def test_single_worker_throughput(benchmark):
    lines = light_lines(40, seed=21)
    results = benchmark(lambda: list(iter_results(lines, workers=1)))
    assert len(results) == 40


def test_witness_task_evaluation(benchmark):
    lines = heavy_lines(6, seed=2)
    results = benchmark(lambda: list(iter_results(lines, workers=1)))
    assert all(json.loads(r)["ok"] for r in results)


def test_cache_warm_rerun(benchmark, tmp_path):
    """Second run over the same scenario with a persistent store."""
    from repro.batch.cache import SQLiteHomStore

    cache = str(tmp_path / "bench-cache.sqlite")
    lines = heavy_lines(6, seed=3)
    cold = list(iter_results(lines, workers=1, cache_path=cache))
    warm = benchmark(
        lambda: list(iter_results(lines, workers=1, cache_path=cache)))
    assert warm == cold
    with SQLiteHomStore(cache) as store:
        assert len(store) > 0


def test_worker_output_is_byte_identical():
    """Correctness companion to the sweep: 2 workers == 1 worker."""
    lines = light_lines(24, seed=4)
    assert list(iter_results(lines, workers=1)) == \
        list(iter_results(lines, workers=2, chunk_size=4))


# ----------------------------------------------------------------------
# Standalone throughput sweep
# ----------------------------------------------------------------------
def sweep(count: int, workers_list, seed: int, chunk_size: int) -> int:
    lines = heavy_lines(count, seed=seed)
    print(f"batch throughput sweep: {count} witness-heavy tasks, "
          f"chunk size {chunk_size}")
    reference_time = None
    reference_output = None
    for workers in workers_list:
        start = time.perf_counter()
        results = list(iter_results(lines, workers=workers,
                                    chunk_size=chunk_size))
        elapsed = time.perf_counter() - start
        if reference_output is None:
            reference_time = elapsed
            reference_output = results
        else:
            assert results == reference_output, "worker count changed output!"
        throughput = count / elapsed if elapsed else float("inf")
        speedup = reference_time / elapsed if elapsed else float("inf")
        print(f"  workers={workers}: {elapsed:.3f}s  "
              f"{throughput:.1f} tasks/s  speedup {speedup:.2f}x")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--chunk-size", type=int, default=4)
    parser.add_argument("--workers", type=int, nargs="+",
                        default=[1, 2, 4])
    args = parser.parse_args(argv)
    return sweep(args.count, args.workers, args.seed, args.chunk_size)


if __name__ == "__main__":
    raise SystemExit(main())
