"""E12: decider ↔ refuter agreement (correctness experiment).

Runs the full decision pipeline on a batch of random instances and
cross-checks every verdict: determined instances must survive the
lattice refuter; undetermined ones must yield a verified witness.
The benchmark number is the cost of one full agreement sweep.
"""

import random

from repro.core.decision import decide_bag_determinacy
from repro.core.refuter import search_lattice_counterexample

from workloads import make_instance


def agreement_sweep(n_instances: int, seed: int) -> dict:
    determined = refuted = 0
    for index in range(n_instances):
        views, query = make_instance(n_views=2, n_components=2,
                                     seed=seed + index)
        result = decide_bag_determinacy(views, query)
        if result.determined:
            assert search_lattice_counterexample(
                views, query, max_multiplicity=2
            ) is None
            determined += 1
        else:
            pair = result.witness(rng=random.Random(seed + index))
            assert pair.verify().ok
            refuted += 1
    return {"determined": determined, "refuted": refuted}


def test_agreement_sweep(benchmark):
    stats = benchmark(agreement_sweep, 6, 20_000)
    assert stats["determined"] + stats["refuted"] == 6
