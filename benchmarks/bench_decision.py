"""E4: decision-procedure scaling in |V0| and query width.

The Theorem 3 pipeline is: containment checks (hom existence), basis
construction (components + isomorphism dedup), span test (exact RREF).
These benchmarks sweep the two workload axes the DESIGN.md index calls
out: number of views and components per query.
"""

import pytest

from repro.core.decision import decide_bag_determinacy

from workloads import make_instance


@pytest.mark.parametrize("n_views", [1, 4, 8, 16])
def test_decide_vs_view_count(benchmark, n_views):
    views, query = make_instance(n_views=n_views, n_components=2, seed=17)
    result = benchmark(decide_bag_determinacy, views, query)
    assert result.basis.dimension >= 1


@pytest.mark.parametrize("n_components", [1, 2, 4, 6])
def test_decide_vs_query_width(benchmark, n_components):
    views, query = make_instance(n_views=4, n_components=n_components, seed=29)
    result = benchmark(decide_bag_determinacy, views, query)
    assert result.basis.dimension >= 1


def test_decide_determined_fast_path(benchmark):
    """Self-view instances exercise containment + trivial span."""
    views, query = make_instance(n_views=1, n_components=2, seed=5)
    result = benchmark(decide_bag_determinacy, [query], query)
    assert result.determined
