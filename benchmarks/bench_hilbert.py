"""E9: the Appendix-A reduction — encoding size and round trips."""

import pytest

from repro.ucq.analysis import (
    counterexample_from_solution,
    search_reduction_counterexample,
)
from repro.ucq.hilbert import (
    DiophantineInstance,
    Monomial,
    linear_instance,
    pythagoras_instance,
    unsolvable_instance,
)
from repro.ucq.reduction import build_reduction


INSTANCES = {
    "linear": linear_instance(),
    "pythagoras": pythagoras_instance(),
    "unsolvable": unsolvable_instance(),
    "dense": DiophantineInstance([
        Monomial(3, {"x": 2, "y": 1}),
        Monomial(-1, {"z": 3}),
        Monomial(2, {"x": 1}),
        Monomial(-4, {"y": 2}),
    ]),
}


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_encoding_cost(benchmark, name):
    instance = INSTANCES[name]
    reduction = benchmark(build_reduction, instance)
    expected_disjuncts = sum(abs(m.coefficient) for m in instance.monomials)
    assert len(reduction.view_polynomial.disjuncts) == expected_disjuncts


@pytest.mark.parametrize("name,bound,solvable", [
    ("linear", 3, True),
    ("pythagoras", 5, True),
    ("unsolvable", 5, False),
])
def test_bounded_refutation(benchmark, name, bound, solvable):
    reduction = build_reduction(INSTANCES[name])
    witness = benchmark(search_reduction_counterexample, reduction, bound)
    assert (witness is not None) == solvable


def test_solution_to_structures_roundtrip(benchmark):
    reduction = build_reduction(pythagoras_instance())
    pair = benchmark(
        counterexample_from_solution, reduction, {"x": 3, "y": 4, "z": 5}
    )
    assert pair.ok
