"""Benchmarks for the extension layer: set-determinacy, catalogs,
serialization and cores (DESIGN.md §3.4)."""

import pytest

from repro.structures.generators import clique_structure
from repro.structures.serialization import dumps, loads
from repro.core.setdet import decide_set_determinacy_boolean
from repro.core.workbench import ViewCatalog
from repro.hom.cores import core

from workloads import make_instance


def test_set_determinacy_decision(benchmark):
    views, query = make_instance(n_views=4, n_components=2, seed=3)
    result = benchmark(decide_set_determinacy_boolean, views, query)
    assert result.relevant_views is not None


def test_catalog_workload_partition(benchmark):
    views, _ = make_instance(n_views=3, n_components=2, seed=4)
    workload = [make_instance(1, 2, seed=100 + i)[1] for i in range(6)]
    catalog = ViewCatalog(views)

    def sweep():
        fresh = ViewCatalog(views)
        return fresh.partition_workload(workload)

    answerable, unanswerable = benchmark(sweep)
    assert len(answerable) + len(unanswerable) == 6


def test_catalog_cached_redecision(benchmark):
    views, query = make_instance(n_views=3, n_components=2, seed=5)
    catalog = ViewCatalog(views)
    catalog.decide(query)  # warm

    result = benchmark(catalog.decide, query)
    assert result is catalog.decide(query)


@pytest.mark.parametrize("size", [3, 5])
def test_serialization_roundtrip(benchmark, size):
    structure = clique_structure(size)

    def roundtrip():
        return loads(dumps(structure))

    assert benchmark(roundtrip) == structure


def test_core_computation(benchmark):
    # symmetric 6-cycle retracts to the symmetric edge
    from repro.structures.structure import Structure

    facts = []
    for i in range(6):
        facts.append(("R", (i, (i + 1) % 6)))
        facts.append(("R", ((i + 1) % 6, i)))
    hexagon = Structure(facts)
    reduced = benchmark(core, hexagon)
    assert len(reduced.domain()) == 2
