"""E10: exact linear-algebra kernels vs dimension.

The determinacy pipeline's hot spots: RREF/span membership (Lemma 31),
inversion (Lemma 55), and the Vandermonde determinants that certify
Step 3 of Lemma 40.  Fractions keep everything exact — these benches
document the price (DESIGN.md §6.2).
"""

import random
from fractions import Fraction

import pytest

from repro.linalg.matrix import QMatrix
from repro.linalg.span import span_coefficients
from repro.linalg.vandermonde import vandermonde_matrix


def _random_matrix(size: int, seed: int = 0, magnitude: int = 9) -> QMatrix:
    rng = random.Random(seed)
    return QMatrix([
        [rng.randint(-magnitude, magnitude) for _ in range(size)]
        for _ in range(size)
    ])


@pytest.mark.parametrize("size", [4, 8, 16])
def test_rref(benchmark, size):
    matrix = _random_matrix(size, seed=size)
    reduced, pivots = benchmark(matrix.rref)
    assert reduced.nrows == size


@pytest.mark.parametrize("size", [4, 8, 16])
def test_inverse(benchmark, size):
    matrix = _random_matrix(size, seed=size + 100)
    if matrix.det() == 0:  # pragma: no cover - seeds chosen nonsingular
        pytest.skip("singular draw")
    inverse = benchmark(matrix.inverse)
    assert inverse.matmul(matrix) == QMatrix.identity(size)


@pytest.mark.parametrize("size", [4, 8, 16])
def test_span_membership(benchmark, size):
    rng = random.Random(size)
    generators = [
        [rng.randint(-5, 5) for _ in range(size)] for _ in range(size // 2)
    ]
    weights = [rng.randint(-3, 3) for _ in generators]
    target = [
        sum(w * g[i] for w, g in zip(weights, generators)) for i in range(size)
    ]
    coefficients = benchmark(span_coefficients, generators, target)
    assert coefficients is not None


@pytest.mark.parametrize("size", [4, 8])
def test_radix_vandermonde_determinant(benchmark, size):
    """The ill-conditioned case that motivates exact arithmetic: a
    Vandermonde matrix of radix-T counts (T = 10^3)."""
    values = [Fraction(1000 ** i + i) for i in range(size)]
    matrix = vandermonde_matrix(values)
    det = benchmark(matrix.det)
    assert det != 0
