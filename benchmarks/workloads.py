"""Shared workload generators for the benchmark suite.

Experiment ids (E1–E13) are defined in DESIGN.md §4; measured numbers
are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import random

from repro.queries.cq import cq_from_structure
from repro.structures.generators import cycle_structure, path_structure
from repro.structures.operations import sum_with_multiplicities
from repro.structures.schema import Schema


BINARY_RS = Schema({"R": 2, "S": 2})


def component_pool():
    """Small connected components used to assemble view sets."""
    return [
        path_structure(["R"]),
        path_structure(["R", "R"]),
        path_structure(["S"]),
        path_structure(["R", "S"]),
        path_structure(["S", "R"]),
        cycle_structure(3),
        cycle_structure(4),
    ]


def make_instance(n_views: int, n_components: int, seed: int = 0):
    """A synthetic determinacy instance: ``n_views`` boolean CQs, each
    with up to ``n_components`` components drawn from the pool, plus a
    query assembled the same way."""
    rng = random.Random(seed)
    pool = component_pool()

    def make_query():
        pieces = [
            (rng.randint(1, 2), rng.choice(pool))
            for _ in range(rng.randint(1, n_components))
        ]
        return cq_from_structure(sum_with_multiplicities(pieces))

    views = [make_query() for _ in range(n_views)]
    return views, make_query()
