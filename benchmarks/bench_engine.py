"""E14: the compiled counting engine vs its ablations.

Three axes, mirroring the DESIGN.md §6.5 architecture:

* **target compilation + forward checking** — cold engine (no memo
  reuse) against raw backtracking on the large-target workload;
* **canonical-component memoization** — sources assembled from renamed
  copies of the 7-element component pool, where exact-key dict caches
  cannot share anything but the canonical cache collapses everything
  onto one count per iso class;
* **fraction-free linear algebra** — Bareiss determinant against the
  textbook Fraction-Gauss reference on an ill-conditioned radix-style
  matrix (the shape Lemma 46 produces).

``python -m repro.cli bench --json`` runs the same workloads outside
pytest and records them in ``BENCH_engine.json``.
"""

import random

import pytest

from repro.hom.count import count_homs
from repro.hom.engine import HomEngine, default_engine
from repro.hom.search import count_homomorphisms_direct
from repro.linalg.matrix import QMatrix, gaussian_det
from repro.structures.components import connected_components
from repro.structures.generators import clique_structure, path_structure
from repro.structures.operations import sum_with_multiplicities

from workloads import component_pool

PATH3 = path_structure(["R", "R", "R"])


@pytest.mark.parametrize("target_size", [6, 8])
def test_cold_engine_large_target(benchmark, target_size):
    """Compile-and-count with zero memo reuse (engine cleared per call)."""
    target = clique_structure(target_size)
    engine = HomEngine()

    def cold():
        engine.clear()
        return engine.count(PATH3, target)

    assert benchmark(cold) == target_size * (target_size - 1) ** 3


@pytest.mark.parametrize("target_size", [6, 8])
def test_ablation_direct_large_target(benchmark, target_size):
    """Ablation: the naive recursive counter on the same workload."""
    target = clique_structure(target_size)
    count = benchmark(count_homomorphisms_direct, PATH3, target)
    assert count == target_size * (target_size - 1) ** 3


def test_memoized_engine_steady_state(benchmark):
    """The path the decision pipeline actually sees: warm shared engine."""
    target = clique_structure(8)
    engine = default_engine()
    engine.count(PATH3, target)
    assert benchmark(engine.count, PATH3, target) == 8 * 7 ** 3


def _renamed_pool_source(copies: int):
    pool = component_pool()
    renamed = []
    for i in range(copies):
        base = pool[i % len(pool)]
        renamed.append(base.rename({c: (i, c) for c in base.domain()}))
    return sum_with_multiplicities([(1, s) for s in renamed])


def test_canonical_memo_over_renamed_components(benchmark):
    """Isomorphic renames share one count through canonicalization."""
    source = _renamed_pool_source(12)
    target = clique_structure(5)
    truth = count_homomorphisms_direct(source, target)
    engine = HomEngine()

    def canonical():
        engine.clear()
        return engine.count(source, target)

    assert benchmark(canonical) == truth


def test_ablation_exact_key_dict_over_renamed_components(benchmark):
    """Ablation: seed-era exact-key dict — renames never share entries."""
    source = _renamed_pool_source(12)
    target = clique_structure(5)
    truth = count_homomorphisms_direct(source, target)

    def exact_dict():
        cache = {}
        total = 1
        for component in connected_components(source):
            key = (component, target)
            value = cache.get(key)
            if value is None:
                value = count_homomorphisms_direct(component, target)
                cache[key] = value
            total *= value
        return total

    assert benchmark(exact_dict) == truth


def _radix_matrix(size: int) -> list:
    rng = random.Random(0xBA5E)
    return [[rng.randint(0, 9) ** j for j in range(size)] for _ in range(size)]


@pytest.mark.parametrize("size", [6, 9])
def test_bareiss_det(benchmark, size):
    rows = _radix_matrix(size)
    reference = gaussian_det(QMatrix(rows))
    assert benchmark(lambda: QMatrix(rows).det()) == reference


@pytest.mark.parametrize("size", [6, 9])
def test_ablation_gaussian_det(benchmark, size):
    rows = _radix_matrix(size)
    benchmark(lambda: gaussian_det(QMatrix(rows)))


def test_engine_counts_identical_to_direct():
    """Bit-identity spot check inside the bench module itself."""
    for n in (4, 5, 6):
        target = clique_structure(n)
        assert count_homs(PATH3, target) == \
            count_homomorphisms_direct(PATH3, target)
