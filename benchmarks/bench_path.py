"""E6 + E11: path determinacy scaling and the rewriting engine.

E6: prefix-graph reachability vs query length and view-set size.
E11: reconstructing M_q from view matrices via linear relations.
"""

import random

import pytest

from repro.queries.path import PathQuery
from repro.queries.parser import parse_path
from repro.structures.generators import random_structure
from repro.structures.schema import Schema
from repro.core.pathdet import decide_path_determinacy
from repro.core.pathrewriting import PathRewritingEngine, view_matrices


def chain_instance(length: int):
    """q = A1...An with views {A1..A(n-1), A(n-1)', A(n-1)A(n)}-style
    chains that force multi-hop reachability: views are all length-2
    windows plus the length-1 prefix."""
    letters = [f"L{i}" for i in range(length)]
    query = PathQuery(letters)
    views = [PathQuery(letters[:1])]
    views += [PathQuery(letters[i:i + 2]) for i in range(length - 1)]
    return views, query


@pytest.mark.parametrize("length", [4, 16, 64])
def test_reachability_vs_query_length(benchmark, length):
    views, query = chain_instance(length)
    result = benchmark(decide_path_determinacy, views, query)
    assert result.determined


@pytest.mark.parametrize("n_views", [2, 8, 32])
def test_reachability_vs_view_count(benchmark, n_views):
    query = PathQuery(tuple("ABCD"))
    rng = random.Random(n_views)
    alphabet = list("ABCD")
    views = [
        PathQuery(tuple(rng.choices(alphabet, k=rng.randint(1, 3))))
        for _ in range(n_views)
    ]
    benchmark(decide_path_determinacy, views, query)


def test_certificate_walk_length(benchmark):
    """Certificate extraction on the Example 13 instance."""
    views = [parse_path("A.B.C"), parse_path("B.C"), parse_path("B.C.D")]
    query = parse_path("A.B.C.D")

    def decide_and_walk():
        result = decide_path_determinacy(views, query)
        return result.walk()

    walk = benchmark(decide_and_walk)
    assert len(walk) == 8


@pytest.mark.parametrize("domain_size", [4, 8, 12])
def test_rewriting_engine_vs_domain(benchmark, domain_size):
    """E11: M_q reconstruction cost grows with the database domain."""
    views = [parse_path("A.B.C"), parse_path("B.C"), parse_path("B.C.D")]
    query = parse_path("A.B.C.D")
    engine = PathRewritingEngine(decide_path_determinacy(views, query))
    schema = Schema({letter: 2 for letter in "ABCD"})
    database = random_structure(schema, domain_size, 0.3, random.Random(3))
    order = sorted(database.domain())
    answers = view_matrices(database, views, order)

    matrix = benchmark(engine.query_matrix, answers)
    assert matrix.nrows == domain_size
