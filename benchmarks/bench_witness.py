"""E8: counterexample construction + exact verification cost."""

import random

import pytest

from repro.queries.cq import cq_from_structure
from repro.queries.parser import parse_boolean_cq
from repro.structures.generators import cycle_structure
from repro.core.decision import decide_bag_determinacy
from repro.core.witness import construct_counterexample


def _undetermined_result(kind: str):
    if kind == "edge-vs-2path":
        query = parse_boolean_cq("R(x,y)")
        views = [parse_boolean_cq("R(x,y), R(y,z)")]
    elif kind == "triangle-vs-hexagon":
        query = cq_from_structure(cycle_structure(3))
        views = [cq_from_structure(cycle_structure(6))]
    else:  # three-component query, two views
        query = parse_boolean_cq("R(x,y), R(a,b), R(b,c), R(c,a)")
        views = [parse_boolean_cq("R(x,y), R(u,v)")]
    result = decide_bag_determinacy(views, query)
    assert not result.determined
    return result


@pytest.mark.parametrize("kind", [
    "edge-vs-2path", "triangle-vs-hexagon", "multi-component",
])
def test_witness_construction(benchmark, kind):
    result = _undetermined_result(kind)
    pair = benchmark(construct_counterexample, result,
                     rng=random.Random(2))
    assert pair.left_multiplicities != pair.right_multiplicities


@pytest.mark.parametrize("kind", ["edge-vs-2path", "triangle-vs-hexagon"])
def test_witness_verification(benchmark, kind):
    """Symbolic re-verification of (A), (B), (B0) — exact integer
    arithmetic over the lazy counterexample structures."""
    result = _undetermined_result(kind)
    pair = construct_counterexample(result, rng=random.Random(2))
    report = benchmark(pair.verify)
    assert report.ok
