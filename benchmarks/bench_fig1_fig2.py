"""E1 + E2: regenerate Figure 1 and Figure 2 of the paper.

Figure 1 (Example 39): the structure pair w1, w2 with evaluation
matrix M_W = [[2, 4], [1, 2]] — singular.

Figure 2 (Example 54): the good basis S = {s1, s2} with
M_S = [[1, 4], [1, 2]] — nonsingular — together with the cone C and
the lattice P of actual answer vectors.

Each benchmark regenerates the figure's data from scratch (hom
counting included) and asserts the published numbers.
"""

from fractions import Fraction

from repro.hom.count import count_homs
from repro.hom.matrix import evaluation_matrix
from repro.linalg.cone import SimplicialCone
from repro.structures.generators import loop_structure
from repro.structures.operations import sum_with_multiplicities
from repro.structures.structure import Structure


def figure1_pair():
    red = [("R", (0, 1)), ("R", (1, 1)), ("R", (1, 2)), ("R", (2, 2))]
    w1 = Structure(red + [("G", (2, 0)), ("G", (2, 2))])
    w2 = Structure(red + [
        ("G", (2, 0)), ("G", (2, 2)),
        ("G", (0, 0)), ("G", (0, 1)), ("G", (2, 1)),
    ])
    return w1, w2


def test_fig1_matrix(benchmark):
    """Regenerate M_W = [[2,4],[1,2]] and confirm singularity."""
    w1, w2 = figure1_pair()

    def regenerate():
        matrix = evaluation_matrix([w1, w2], [w1, w2])
        return matrix.to_int_rows(), matrix.det()

    rows, det = benchmark(regenerate)
    assert rows == [[2, 4], [1, 2]]
    assert det == 0


def test_fig2_cone_and_lattice(benchmark):
    """Regenerate M_S = [[1,4],[1,2]], the cone rays and the P-lattice
    points with both coordinates ≤ 16 (the figure's visible window)."""
    w1, w2 = figure1_pair()
    s1 = loop_structure(["R", "G"])
    s2 = w2

    def regenerate():
        matrix = evaluation_matrix([w1, w2], [s1, s2])
        cone = SimplicialCone(matrix)
        lattice = set()
        for a in range(5):
            for b in range(5):
                database = sum_with_multiplicities([(a, s1), (b, s2)])
                point = (count_homs(w1, database), count_homs(w2, database))
                if point[0] <= 16 and point[1] <= 16:
                    lattice.add(point)
        return matrix, cone, lattice

    matrix, cone, lattice = benchmark(regenerate)
    assert matrix.to_int_rows() == [[1, 4], [1, 2]]
    assert matrix.is_nonsingular()
    # Cone rays are the matrix columns (the figure's arrows).
    assert list(matrix.column(0)) == [1, 1]
    assert list(matrix.column(1)) == [4, 2]
    # Every lattice point is in the cone; the origin and both rays show.
    for point in lattice:
        assert cone.contains([Fraction(point[0]), Fraction(point[1])])
    assert (0, 0) in lattice
    assert (1, 1) in lattice
    assert (4, 2) in lattice
