"""E3: the paper's worked determinacy examples as benchmarks.

Regenerates the verdict (and certificate) for Examples 2/3/32/42 —
the rows a reader would check first.
"""

from repro.queries.cq import cq_from_structure
from repro.queries.parser import parse_ucq
from repro.structures.generators import cycle_structure, path_structure
from repro.structures.operations import sum_with_multiplicities
from repro.structures.structure import Structure
from repro.core.decision import decide_bag_determinacy
from repro.ucq.analysis import linear_certificate


def test_example32_decision(benchmark):
    w1 = path_structure(["R"])
    w2 = path_structure(["R", "R"])
    w3 = cycle_structure(3)

    def make(*pairs):
        return cq_from_structure(sum_with_multiplicities(list(pairs)))

    q = make((1, w1), (1, w2), (2, w3))
    v1 = make((2, w1), (1, w2), (3, w3))
    v2 = make((5, w1), (2, w2), (7, w3))

    result = benchmark(decide_bag_determinacy, [v1, v2], q)
    assert result.determined
    assert list(result.coefficients) == [3, -1]


def test_example42_decision(benchmark):
    red = [("R", (0, 1)), ("R", (1, 1)), ("R", (1, 2)), ("R", (2, 2))]
    w1 = Structure(red + [("G", (2, 0)), ("G", (2, 2))])
    w2 = Structure(red + [
        ("G", (2, 0)), ("G", (2, 2)),
        ("G", (0, 0)), ("G", (0, 1)), ("G", (2, 1)),
    ])
    q = cq_from_structure(w1)
    v = cq_from_structure(w2)

    result = benchmark(decide_bag_determinacy, [v], q)
    assert not result.determined
    assert result.relevant_views == (v,)


def test_example3_linear_certificate(benchmark):
    v1 = parse_ucq("P(x)")
    v2 = parse_ucq("P(x) or R(x)")
    q = parse_ucq("R(x)")

    certificate = benchmark(linear_certificate, [v1, v2], q)
    assert certificate is not None
    assert certificate.coefficients == (-1, 1)
