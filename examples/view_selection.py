#!/usr/bin/env python
"""View selection for a bag-semantics analytics workload.

Run:  python examples/view_selection.py

Scenario (the kind of workload the paper's introduction motivates):
an analytics layer wants to answer *counting* queries — boolean CQs
under bag semantics are exactly SQL ``COUNT(*)`` aggregates over joins
without DISTINCT — from a small set of materialized counting views.

Given a menu of candidate views and a target workload, we use the
Theorem 3 decider to find a minimal subset of views that determines
every workload query, and print the monomial rewriting each query
compiles to.
"""

import itertools

from repro import decide_bag_determinacy, parse_boolean_cq


#: Candidate materialized views over a social-graph schema:
#:   F(x, y)  "x follows y",   L(x, p) "x liked p",   P(p, u) "p posted-by u"
VIEW_MENU = {
    "follows_count": "F(x,y)",
    "likes_count": "L(x,p)",
    "posts_count": "P(p,u)",
    "follow_2hop": "F(x,y), F(y,z)",
    "like_of_followed": "F(x,y), L(y,p)",
    "engagement_pairs": "F(x,y), L(u,p)",
    "likes_squared": "L(x,p), L(y,q)",
}

#: The workload: counting queries the dashboard needs.
WORKLOAD = {
    "total_follows": "F(x,y)",
    "follow_edges_times_likes": "F(x,y), L(u,p)",
    "likes": "L(x,p)",
    "likes_cubed": "L(a,p), L(b,q), L(c,r)",
}


def main() -> None:
    views = {name: parse_boolean_cq(text) for name, text in VIEW_MENU.items()}
    workload = {name: parse_boolean_cq(text) for name, text in WORKLOAD.items()}

    print(f"{len(views)} candidate views, {len(workload)} workload queries")
    print()

    # Find the smallest view subset determining the whole workload.
    best = None
    for size in range(1, len(views) + 1):
        for combo in itertools.combinations(sorted(views), size):
            chosen = [views[name] for name in combo]
            if all(
                decide_bag_determinacy(chosen, q).determined
                for q in workload.values()
            ):
                best = combo
                break
        if best:
            break

    if best is None:
        print("no subset of the menu determines the workload")
        return

    print(f"minimal determining view set ({len(best)} views): {list(best)}")
    print()
    chosen = [views[name] for name in best]
    for name, query in workload.items():
        result = decide_bag_determinacy(chosen, query)
        print(f"workload query {name!r}:")
        print(f"  {result.rewriting().explain()}")
        print()

    # Show what goes wrong with a naive choice.
    naive = [views["follow_2hop"], views["engagement_pairs"]]
    print("naive view choice ['follow_2hop', 'engagement_pairs']:")
    for name, query in workload.items():
        verdict = decide_bag_determinacy(naive, query)
        status = "determined" if verdict.determined else "NOT determined"
        print(f"  {name}: {status}")


if __name__ == "__main__":
    main()
