#!/usr/bin/env python
"""Inside the Lemma 40/41 counterexample machine, step by step.

Run:  python examples/witness_deep_dive.py

When the span test of the Main Lemma fails, the paper doesn't just say
"not determined" — Sections 5–7 *build* two databases no view can tell
apart but the query can.  This walkthrough runs the construction on the
paper's own hard case (Example 42: q = w1, V = {w2}, the instance where
naive search over spanN{w1, w2} is provably blind) and prints every
intermediate object.
"""

import random

from repro.hom.count import count_homs
from repro.linalg.matrix import dot
from repro.queries.cq import cq_from_structure
from repro.structures.structure import Structure
from repro.core.decision import decide_bag_determinacy
from repro.core.goodbasis import construct_good_basis
from repro.core.witness import construct_counterexample


def figure1_pair():
    red = [("R", (0, 1)), ("R", (1, 1)), ("R", (1, 2)), ("R", (2, 2))]
    w1 = Structure(red + [("G", (2, 0)), ("G", (2, 2))])
    w2 = Structure(red + [
        ("G", (2, 0)), ("G", (2, 2)),
        ("G", (0, 0)), ("G", (0, 1)), ("G", (2, 1)),
    ])
    return w1, w2


def main() -> None:
    w1, w2 = figure1_pair()
    query = cq_from_structure(w1)
    view = cq_from_structure(w2)

    print("Instance (Example 42): q = w1, V0 = {w2}  (Figure 1 structures)")
    print(f"|hom(w1,w1)|={count_homs(w1,w1)}  |hom(w1,w2)|={count_homs(w1,w2)}")
    print(f"|hom(w2,w1)|={count_homs(w2,w1)}  |hom(w2,w2)|={count_homs(w2,w2)}")
    print()

    result = decide_bag_determinacy([view], query)
    print(f"span test: q⃗ = {list(result.query_vector)}, "
          f"v⃗ = {list(result.view_vectors[0])} -> determined = {result.determined}")
    print()
    print("The blind spot: on every D ∈ spanN{w1, w2}, "
          "hom(w1, D) = 2·hom(w2, D):")
    from repro.structures.operations import sum_with_multiplicities
    for a, b in ((1, 0), (0, 1), (2, 1)):
        D = sum_with_multiplicities([(a, w1), (b, w2)])
        print(f"  D = {a}·w1 + {b}·w2:  hom(w1,D) = {count_homs(w1, D)}, "
              f"hom(w2,D) = {count_homs(w2, D)}")
    print("so no counterexample lives there — we need a GOOD basis.\n")

    print("=" * 70)
    print("Lemma 40, Step by step")
    print("=" * 70)
    good = construct_good_basis(result.basis.components, query,
                                rng=random.Random(11))
    print(f"Step 1: {len(good.distinguishers)} distinguishing structure(s):")
    for s in good.distinguishers:
        counts = [count_homs(w, s) for w in good.components]
        print(f"  counts over W: {counts}  ({s.count_facts()} facts)")
    print(f"Step 2: radix T = {good.radix}; merged counts "
          f"{list(good.merged_counts)} (pairwise distinct — Obs. 45)")
    print(f"Step 3+4: S = (s⁽²⁾)^j × q for j = 0..{good.dimension - 1};")
    for j, s in enumerate(good.structures):
        print(f"  s_{j+1}: virtual domain size {s.domain_size()}")
    print(f"evaluation matrix M_S = {good.matrix.to_int_rows()}")
    print(f"det M_S = {good.matrix.det()}  (nonsingular!)")
    print()

    print("=" * 70)
    print("Lemma 41/55/56/57: the counterexample")
    print("=" * 70)
    pair = construct_counterexample(result, rng=random.Random(11))
    print(f"orthogonal direction z = {list(pair.direction)}  "
          f"(⟨z, v⃗⟩ = {dot(pair.direction, result.view_vectors[0])}, "
          f"⟨z, q⃗⟩ = {dot(pair.direction, result.query_vector)})")
    print(f"perturbation parameter t = {pair.parameter}")
    print(f"D  multiplicities over S: {list(pair.left_multiplicities)}")
    print(f"D' multiplicities over S: {list(pair.right_multiplicities)}")
    left_counts, right_counts = pair.basis_counts()
    print(f"basis counts (w_i(D))_i  = {left_counts}")
    print(f"basis counts (w_i(D'))_i = {right_counts}")
    print("(basis order is as discovered from V ∪ {q}: here w2 first)")
    print()

    report = pair.verify()
    print("exact verification by symbolic hom counting:")
    print(f"  view answers on (D, D'): {report.view_answers}  "
          f"(equal: {all(a == b for a, b in report.view_answers)})")
    print(f"  q answers on (D, D'):    {report.query_answers}  "
          f"(different: {report.query_answers[0] != report.query_answers[1]})")
    print(f"  matrix/symbolic counts agree: {report.basis_counts_match}")
    print(f"  ALL CONDITIONS: {report.ok}")


if __name__ == "__main__":
    main()
