#!/usr/bin/env python
"""View-based answering of path queries (Theorem 1, Sections 3.2–3.3).

Run:  python examples/path_query_rewriting.py

Scenario: a data provider publishes materialized views of a large graph
database — the answer matrices of a few *path queries* — but not the
graph itself.  A client wants the answer to another path query q.

Theorem 1 says: if ε reaches q in the prefix graph G_{q,V}, the views
determine q under bag semantics, and the proof is constructive — view
answer matrices compose as *linear relations* (inverses always exist
for relations!), and the composite is exactly the graph of M_q.

This example runs that pipeline end to end on the paper's Example 13
(q = ABCD, V = {ABC, BC, BCD}), answering q without ever touching the
database — then double-checks against direct evaluation.
"""

import random

from repro import decide_path_determinacy, parse_path
from repro.core.pathrewriting import PathRewritingEngine, view_matrices, word_matrix
from repro.core.qwalk import format_signed_word
from repro.queries.evaluation import evaluate_path_query
from repro.structures.generators import random_structure
from repro.structures.schema import Schema


def main() -> None:
    views = [parse_path("A.B.C"), parse_path("B.C"), parse_path("B.C.D")]
    query = parse_path("A.B.C.D")

    print(f"views: {[str(v) for v in views]}")
    print(f"query: {query}")
    print()

    result = decide_path_determinacy(views, query)
    print(f"determined (both set AND bag semantics, Theorem 1): "
          f"{result.determined}")
    print(result.explain())
    print(f"induced q-walk: {format_signed_word(result.walk())}")
    print()

    engine = PathRewritingEngine(result)

    # The "hidden" database lives with the provider:
    rng = random.Random(7)
    schema = Schema({letter: 2 for letter in "ABCD"})
    hidden = random_structure(schema, 6, 0.35, rng)
    order = sorted(hidden.domain())

    # The provider publishes only the view answer matrices:
    published = view_matrices(hidden, views, order)
    print(f"provider publishes {len(published)} view matrices of "
          f"dimension {len(order)}x{len(order)}")

    # The client reconstructs M_q purely from the views:
    reconstructed = engine.query_matrix(published)
    truth = word_matrix(hidden, query, order)
    print(f"reconstructed M_q equals the true M_q: {reconstructed == truth}")

    answer = engine.answer(published, order)
    direct = evaluate_path_query(query, hidden)
    print(f"bag answer from views:  {sorted(answer.items())}")
    print(f"bag answer from database: {sorted(direct.items())}")
    print(f"agree: {answer == direct}")

    # And the negative side: remove a view and the query escapes.
    print()
    broken = decide_path_determinacy(views[:1], query)
    print(f"with only {views[0]}: determined = {broken.determined}")
    left, right = broken.counterexample()
    for view in views[:1]:
        assert evaluate_path_query(view, left) == evaluate_path_query(view, right)
    print("Appendix-B counterexample: views agree on (D, D'), but "
          f"q(D) has {evaluate_path_query(query, left).total()} walks vs "
          f"{evaluate_path_query(query, right).total()} in D'")


if __name__ == "__main__":
    main()
