#!/usr/bin/env python
"""A guided tour of the paper's examples and figures.

Run:  python examples/paper_gallery.py

Reproduces, with real computation:

* Example 2 — set-determined but not bag-determined (free variables);
* Example 3 — bag-determined but not set-determined (UCQs);
* Example 13 — the prefix-graph certificate and its q-walk;
* Example 32 — the monomial rewriting q = v1³/v2;
* Figure 2 / Example 54 — the answer lattice P inside the cone C,
  rendered in ASCII.
"""

from fractions import Fraction

from repro.hom.count import count_homs
from repro.hom.matrix import evaluation_matrix
from repro.linalg.cone import SimplicialCone
from repro.queries.cq import cq_from_structure
from repro.queries.evaluation import evaluate_cq
from repro.queries.parser import parse_cq, parse_path, parse_ucq
from repro.structures.generators import cycle_structure, loop_structure, path_structure
from repro.structures.operations import sum_with_multiplicities
from repro.structures.structure import Structure
from repro.core.decision import decide_bag_determinacy
from repro.core.pathdet import decide_path_determinacy
from repro.core.qwalk import format_signed_word
from repro.ucq.analysis import linear_certificate


def example_2() -> None:
    print("=" * 70)
    print("Example 2: V →set q but V ̸→bag q")
    print("=" * 70)
    q = parse_cq("x | P(u,x), R(x,y), S(y,z)")
    v1 = parse_cq("x | P(u,x), R(x,y)")
    v2 = parse_cq("x | R(x,y), S(y,z)")
    left = Structure([
        ("P", ("u1", "x")), ("R", ("x", "y1")), ("R", ("x", "y2")),
        ("S", ("y1", "z")),
    ])
    right = Structure([
        ("P", ("u1", "x")), ("P", ("u2", "x")), ("R", ("x", "y1")),
        ("S", ("y1", "z")),
    ])
    print(f"v1(D) = v1(D'): {evaluate_cq(v1, left) == evaluate_cq(v1, right)}")
    print(f"v2(D) = v2(D'): {evaluate_cq(v2, left) == evaluate_cq(v2, right)}")
    print(f"q(D)  = {dict(evaluate_cq(q, left).items())}")
    print(f"q(D') = {dict(evaluate_cq(q, right).items())}")
    print("-> the views cannot see the difference; bag determinacy fails.\n")


def example_3() -> None:
    print("=" * 70)
    print("Example 3: V ̸→set q but V →bag q  (q = v2 − v1)")
    print("=" * 70)
    v1, v2, q = parse_ucq("P(x)"), parse_ucq("P(x) or R(x)"), parse_ucq("R(x)")
    certificate = linear_certificate([v1, v2], q)
    print(f"linear certificate: {certificate.explain()}")
    print(f"coefficients: {certificate.coefficients}\n")


def example_13() -> None:
    print("=" * 70)
    print("Example 13: prefix graph path and its q-walk")
    print("=" * 70)
    views = [parse_path("A.B.C"), parse_path("B.C"), parse_path("B.C.D")]
    query = parse_path("A.B.C.D")
    result = decide_path_determinacy(views, query)
    print(result.explain())
    print(f"q-walk: {format_signed_word(result.walk())}\n")


def example_32() -> None:
    print("=" * 70)
    print("Example 32: q = w1 + w2 + 2w3, v1 = 2w1+w2+3w3, v2 = 5w1+2w2+7w3")
    print("=" * 70)
    w1 = path_structure(["R"])
    w2 = path_structure(["R", "R"])
    w3 = cycle_structure(3)

    def make(*pairs):
        return cq_from_structure(sum_with_multiplicities(list(pairs)))

    q = make((1, w1), (1, w2), (2, w3))
    v1 = make((2, w1), (1, w2), (3, w3))
    v2 = make((5, w1), (2, w2), (7, w3))
    result = decide_bag_determinacy([v1, v2], q)
    print(f"determined: {result.determined}; coefficients {result.coefficients}")
    print("  (the paper: q(D) = v1(D)³ / v2(D), i.e. q⃗ = 3v⃗1 − v⃗2)\n")


def figure_2() -> None:
    print("=" * 70)
    print("Figure 2 / Example 54: the lattice P inside the cone C")
    print("=" * 70)
    # The paper's own basis: w1, w2 are the Figure 1 structures (same
    # red part; w2 has three extra green edges), s1 is a single vertex
    # with red and green loops, s2 = w2.  M_S = [[1,4],[1,2]].
    red = [("R", (0, 1)), ("R", (1, 1)), ("R", (1, 2)), ("R", (2, 2))]
    w1 = Structure(red + [("G", (2, 0)), ("G", (2, 2))])
    w2 = Structure(red + [
        ("G", (2, 0)), ("G", (2, 2)),
        ("G", (0, 0)), ("G", (0, 1)), ("G", (2, 1)),
    ])
    s1 = loop_structure(["R", "G"])
    s2 = w2
    matrix = evaluation_matrix([w1, w2], [s1, s2])
    print(f"M_S = {matrix.to_int_rows()}  (nonsingular: {matrix.is_nonsingular()})")
    cone = SimplicialCone(matrix)

    width, height = 33, 17
    max_x = max_y = 16
    lattice = set()
    for a in range(5):
        for b in range(5):
            database = sum_with_multiplicities([(a, s1), (b, s2)])
            point = (count_homs(w1, database), count_homs(w2, database))
            if point[0] <= max_x and point[1] <= max_y:
                lattice.add(point)

    print("  y = w2(D) ↑   (#: answer vector in P,  ·: inside cone C)")
    for y in range(max_y, -1, -1):
        row = []
        for x in range(max_x + 1):
            if (x, y) in lattice:
                row.append("#")
            elif cone.contains([Fraction(x), Fraction(y)]):
                row.append("·")
            else:
                row.append(" ")
        print(f"  {y:2d} " + " ".join(row))
    print("      " + " ".join(f"{x % 10}" for x in range(max_x + 1)) +
          "   → x = w1(D)")
    print()


def main() -> None:
    example_2()
    example_3()
    example_13()
    example_32()
    figure_2()


if __name__ == "__main__":
    main()
