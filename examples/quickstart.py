#!/usr/bin/env python
"""Quickstart: decide bag-semantics determinacy for boolean CQs.

Run:  python examples/quickstart.py

Walks through the library's headline feature (Theorem 3 of the paper):
given a set of views V0 and a query q — all boolean conjunctive
queries — decide whether the multiset of view answers always determines
the query answer, and either produce an executable *rewriting* or an
explicit *counterexample pair* of databases.
"""

from repro import decide_bag_determinacy, evaluate_boolean, parse_boolean_cq
from repro.structures.generators import random_structure
from repro.structures.schema import Schema

import random


def main() -> None:
    # ------------------------------------------------------------------
    # A determined instance: the query counts pairs (edge, edge+2path),
    # and the views expose enough counting structure to pin it down.
    # (This is the paper's Example 32 in miniature.)
    # ------------------------------------------------------------------
    print("=" * 70)
    print("Instance 1: DETERMINED")
    print("=" * 70)
    q = parse_boolean_cq("R(x,y), R(u,v), R(v,w)")        # edge + 2-path
    v1 = parse_boolean_cq("R(x,y)")                        # edge count
    v2 = parse_boolean_cq("R(u,v), R(v,w)")                # 2-path count

    result = decide_bag_determinacy([v1, v2], q)
    print(f"q  = {q}")
    print(f"V0 = [{v1}, {v2}]")
    print(f"determined: {result.determined}")
    print()
    print(result.explain())
    print()

    rewriting = result.rewriting()
    print("Answering q from the views only, on random databases:")
    rng = random.Random(42)
    schema = Schema({"R": 2})
    for trial in range(3):
        database = random_structure(schema, 5, 0.4, rng)
        from_views = rewriting.answer_on(database)
        direct = evaluate_boolean(q, database)
        print(f"  database #{trial}: rewriting -> {from_views}, "
              f"direct -> {direct}  {'OK' if from_views == direct else 'MISMATCH'}")

    # ------------------------------------------------------------------
    # An undetermined instance — with a constructive counterexample.
    # ------------------------------------------------------------------
    print()
    print("=" * 70)
    print("Instance 2: NOT DETERMINED (with witness)")
    print("=" * 70)
    q = parse_boolean_cq("R(x,y)")
    v = parse_boolean_cq("R(x,y), R(y,z)")   # 2-path view: q ⊄set v!
    result = decide_bag_determinacy([v], q)
    print(f"q  = {q}")
    print(f"V0 = [{v}]")
    print(f"determined: {result.determined}")
    print()

    pair = result.witness()
    print("Lemma 41 counterexample pair (as lazy structure expressions):")
    print(pair.explain())
    report = pair.verify()
    print()
    print(f"verified: views agree on (D, D'): "
          f"{all(a == b for a, b in report.view_answers)}")
    print(f"verified: q(D) = {report.query_answers[0]} ≠ "
          f"{report.query_answers[1]} = q(D')")
    print(f"all conditions (A), (B), (B0) hold: {report.ok}")


if __name__ == "__main__":
    main()
