#!/usr/bin/env python
"""The Theorem 2 reduction, instance by instance.

Run:  python examples/hilbert_gallery.py

Boolean-UCQ bag-determinacy is undecidable: Appendix A encodes any
Diophantine equation as a determinacy instance where the views
determine q = H *iff the equation has no natural solution*.  This
gallery builds the encoding for several equations, searches bounded
solution boxes, and — when a solution exists — materializes the two
databases that refute determinacy.
"""

from repro.queries.evaluation import evaluate_boolean
from repro.ucq.analysis import semidecide_reduction_determinacy
from repro.ucq.hilbert import (
    DiophantineInstance,
    Monomial,
    fermat_like_instance,
    linear_instance,
    pythagoras_instance,
    unsolvable_instance,
)
from repro.ucq.reduction import build_reduction


GALLERY = [
    ("x - y = 0", linear_instance(), 3),
    ("x² + y² - z² = 0 (Pythagoras)", pythagoras_instance(), 6),
    ("x² + 1 = 0 (no natural solution)", unsolvable_instance(), 8),
    ("x³ + y³ - z³ = 0 (Fermat, n=3)", fermat_like_instance(), 5),
    ("2x - 3y = 0", DiophantineInstance([
        Monomial(2, {"x": 1}), Monomial(-3, {"y": 1})
    ]), 4),
]


def main() -> None:
    for title, instance, bound in GALLERY:
        print("=" * 70)
        print(f"equation: {title}")
        reduction = build_reduction(instance)
        print(reduction.summary())

        verdict, witness = semidecide_reduction_determinacy(reduction, bound)
        if verdict == "not-determined":
            print(f"verdict: V does NOT bag-determine q "
                  f"(solution {witness.solution})")
            left, right = witness.left, witness.right
            print(f"  counterexample databases: |D| = {left.count_facts()} "
                  f"facts, |D'| = {right.count_facts()} facts")
            for view, (a, b) in zip(reduction.views(), witness.view_answers):
                assert a == b
            print(f"  all {len(reduction.views())} views agree on D, D'")
            print(f"  q(D) = {evaluate_boolean(reduction.query, left)}  vs  "
                  f"q(D') = {evaluate_boolean(reduction.query, right)}")
        else:
            print(f"verdict: no counterexample with unknowns ≤ {bound}.")
            print("  (By Theorem 2 this is all a terminating procedure can "
                  "say: determinacy of the encoding ⟺ unsolvability of the "
                  "equation, which is Π1 in general.)")
        print()


if __name__ == "__main__":
    main()
