"""Algebraic laws of the structure algebra, observed through counting.

Two structures are "equal" for every purpose in this library when all
hom counts into them agree (Lemma 43).  These property tests check the
semiring-style laws of `+` and `×` at the counting level — for lazy
expressions AND for the eager operations, against random probes:

* commutativity and associativity of `+` and `×`;
* distributivity of `×` over `+`;
* units: the empty structure for `+`, the all-loops unit for `×`;
* power laws `A^{m+n} = A^m × A^n`.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.hom.count import count_homs
from repro.structures.expression import (
    PowerExpression,
    ProductExpression,
    SumExpression,
    as_expression,
)
from repro.structures.generators import random_connected_structure, random_structure
from repro.structures.schema import Schema

SCHEMA = Schema({"R": 2, "S": 2})


def _probe(seed: int):
    """Random connected probe (connected, so sum rules apply)."""
    return random_connected_structure(SCHEMA, 1 + seed % 3,
                                      rng=random.Random(seed))


def _operand(seed: int):
    return random_structure(SCHEMA, 1 + seed % 3, 0.4, random.Random(seed))


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 9999), b=st.integers(0, 9999), p=st.integers(0, 9999))
def test_sum_commutes(a, b, p):
    probe = _probe(p)
    left = SumExpression([(1, as_expression(_operand(a))),
                          (1, as_expression(_operand(b)))])
    right = SumExpression([(1, as_expression(_operand(b))),
                           (1, as_expression(_operand(a)))])
    assert count_homs(probe, left) == count_homs(probe, right)


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 9999), b=st.integers(0, 9999), c=st.integers(0, 9999),
       p=st.integers(0, 9999))
def test_sum_associates(a, b, c, p):
    probe = _probe(p)
    x, y, z = map(_operand, (a, b, c))
    left = SumExpression([(1, as_expression(x)),
                          (1, SumExpression([(1, as_expression(y)),
                                             (1, as_expression(z))]))])
    right = SumExpression([(1, SumExpression([(1, as_expression(x)),
                                              (1, as_expression(y))])),
                           (1, as_expression(z))])
    assert count_homs(probe, left) == count_homs(probe, right)


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 9999), b=st.integers(0, 9999), p=st.integers(0, 9999))
def test_product_commutes(a, b, p):
    probe = _operand(p)  # product rules need no connectedness
    left = ProductExpression([as_expression(_operand(a)),
                              as_expression(_operand(b))])
    right = ProductExpression([as_expression(_operand(b)),
                               as_expression(_operand(a))])
    assert count_homs(probe, left) == count_homs(probe, right)


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 9999), b=st.integers(0, 9999), c=st.integers(0, 9999),
       p=st.integers(0, 9999))
def test_product_distributes_over_sum(a, b, c, p):
    probe = _probe(p)
    x, y, z = map(_operand, (a, b, c))
    bundled = ProductExpression([
        as_expression(x),
        SumExpression([(1, as_expression(y)), (1, as_expression(z))]),
    ])
    spread = SumExpression([
        (1, ProductExpression([as_expression(x), as_expression(y)])),
        (1, ProductExpression([as_expression(x), as_expression(z)])),
    ])
    assert count_homs(probe, bundled) == count_homs(probe, spread)


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 9999), p=st.integers(0, 9999))
def test_multiplicative_unit(a, p):
    """A × unit ≡ A (counting-wise), when the unit carries the full
    ambient schema — the subtlety behind the 0^0 = 1 convention."""
    probe = _operand(p)
    operand = _operand(a).with_schema(SCHEMA)
    unit = PowerExpression(as_expression(operand), 0)  # all-loops over SCHEMA
    with_unit = ProductExpression([as_expression(operand), unit])
    assert count_homs(probe, with_unit) == count_homs(probe, operand)


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 9999), m=st.integers(0, 2), n=st.integers(0, 2),
       p=st.integers(0, 9999))
def test_power_addition_law(a, m, n, p):
    probe = _operand(p)
    base = as_expression(_operand(a))
    combined = PowerExpression(base, m + n)
    split = ProductExpression([PowerExpression(base, m), PowerExpression(base, n)])
    assert count_homs(probe, combined) == count_homs(probe, split)


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 9999), p=st.integers(0, 9999))
def test_additive_unit(a, p):
    probe = _probe(p)
    operand = _operand(a)
    padded = SumExpression([(1, as_expression(operand)), (0, as_expression(operand))])
    assert count_homs(probe, padded) == count_homs(probe, as_expression(operand))
