"""Unit tests for set-semantics containment (Chandra–Merlin)."""

import pytest

from repro.errors import QueryError
from repro.queries.parser import parse_boolean_cq, parse_cq, parse_ucq
from repro.hom.containment import (
    are_equivalent_set,
    is_contained_set,
    is_contained_set_ucq,
    views_containing,
)


class TestBooleanContainment:
    def test_longer_path_contained_in_shorter(self):
        long_path = parse_boolean_cq("R(x,y), R(y,z)")
        edge = parse_boolean_cq("R(x,y)")
        assert is_contained_set(long_path, edge)
        assert not is_contained_set(edge, long_path)

    def test_self_containment(self):
        q = parse_boolean_cq("R(x,y), S(y,z)")
        assert is_contained_set(q, q)

    def test_containment_respects_semantics(self):
        """q ⊆set v must mean: q(D) > 0 ⇒ v(D) > 0 on samples."""
        from repro.queries.evaluation import evaluate_boolean
        from repro.structures.generators import random_structure
        from repro.structures.schema import Schema
        import random

        q = parse_boolean_cq("R(x,y), R(y,z), S(z,u)")
        v = parse_boolean_cq("R(x,y), S(u,w)")
        assert is_contained_set(q, v)
        schema = Schema({"R": 2, "S": 2})
        rng = random.Random(3)
        for _ in range(30):
            D = random_structure(schema, 4, 0.3, rng)
            if evaluate_boolean(q, D) > 0:
                assert evaluate_boolean(v, D) > 0

    def test_incomparable_queries(self):
        q1 = parse_boolean_cq("R(x,y)")
        q2 = parse_boolean_cq("S(x,y)")
        assert not is_contained_set(q1, q2)
        assert not is_contained_set(q2, q1)

    def test_equivalence_up_to_redundancy(self):
        # R(x,y) ∧ R(u,v) is equivalent to R(x,y) under set semantics.
        redundant = parse_boolean_cq("R(x,y), R(u,v)")
        edge = parse_boolean_cq("R(x,y)")
        assert are_equivalent_set(redundant, edge)

    def test_loop_contained_in_everything_r(self):
        loop = parse_boolean_cq("R(x,x)")
        path = parse_boolean_cq("R(x,y), R(y,z)")
        assert is_contained_set(loop, path)
        assert not is_contained_set(path, loop)

    def test_free_variables_rejected(self):
        unary = parse_cq("x | R(x,y)")
        boolean = parse_boolean_cq("R(x,y)")
        with pytest.raises(QueryError):
            is_contained_set(unary, boolean)


class TestUCQContainment:
    def test_disjunct_wise(self):
        small = parse_ucq("R(x,y), R(y,z)")
        big = parse_ucq("R(x,y) or S(x,y)")
        assert is_contained_set_ucq(small, big)
        assert not is_contained_set_ucq(big, small)

    def test_each_disjunct_needs_a_home(self):
        left = parse_ucq("R(x,y) or S(x,y)")
        right = parse_ucq("R(x,y)")
        assert not is_contained_set_ucq(left, right)


class TestViewsContaining:
    def test_definition_25(self):
        q = parse_boolean_cq("R(x,y), R(y,z)")
        v1 = parse_boolean_cq("R(x,y)")          # q ⊆ v1
        v2 = parse_boolean_cq("S(x,y)")          # q ⊄ v2
        v3 = parse_boolean_cq("R(x,y), R(y,z)")  # q ⊆ v3
        assert views_containing(q, [v1, v2, v3]) == [v1, v3]
