"""Unit + property tests for span membership, orthogonal witnesses and
Vandermonde matrices (Facts 5/7, Lemmas 46/55 plumbing)."""

import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.linalg.matrix import dot, vector
from repro.linalg.orthogonal import integer_orthogonal_witness, orthogonal_witness
from repro.linalg.span import (
    in_span,
    integerize,
    span_basis,
    span_coefficients,
    span_dimension,
    verify_combination,
)
from repro.linalg.vandermonde import (
    is_vandermonde_nonsingular,
    vandermonde_determinant,
    vandermonde_matrix,
)


class TestSpan:
    def test_membership_with_certificate(self):
        coefficients = span_coefficients([[1, 0], [1, 1]], [3, 2])
        assert coefficients == vector([1, 2])
        assert verify_combination([[1, 0], [1, 1]], coefficients, [3, 2])

    def test_non_membership(self):
        assert span_coefficients([[1, 1]], [1, 2]) is None
        assert not in_span([[1, 1]], [1, 2])

    def test_empty_generators_span_zero(self):
        assert span_coefficients([], [0, 0]) == ()
        assert span_coefficients([], [1, 0]) is None

    def test_rational_coefficients(self):
        coefficients = span_coefficients([[2, 0]], [1, 0])
        assert coefficients == (Fraction(1, 2),)

    def test_span_basis_prunes_dependents(self):
        basis = span_basis([[1, 0], [2, 0], [0, 1]])
        assert len(basis) == 2

    def test_span_dimension(self):
        assert span_dimension([[1, 1], [2, 2], [1, 0]]) == 2

    def test_verify_combination_rejects_wrong(self):
        assert not verify_combination([[1, 0]], [2], [1, 0])

    def test_integerize(self):
        scale, scaled = integerize([Fraction(1, 2), Fraction(1, 3)])
        assert scale == 6
        assert scaled == [3, 2]


class TestOrthogonalWitness:
    def test_fact5_basic(self):
        z = orthogonal_witness([[1, 0, 0]], [0, 0, 1])
        assert z is not None
        assert dot(z, [1, 0, 0]) == 0
        assert dot(z, [0, 0, 1]) != 0

    def test_none_when_target_in_span(self):
        assert orthogonal_witness([[1, 0], [0, 1]], [1, 1]) is None

    def test_empty_generators(self):
        z = orthogonal_witness([], [2, 5])
        assert z is not None
        assert dot(z, [2, 5]) != 0

    def test_integer_scaling(self):
        z = integer_orthogonal_witness([[2, 1, 0]], [0, 0, 3])
        assert z is not None
        assert all(isinstance(value, int) for value in z)
        assert dot(vector(z), [2, 1, 0]) == 0


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000), dim=st.integers(1, 4), count=st.integers(0, 3))
def test_witness_exists_iff_outside_span(seed, dim, count):
    """Fact 5 as a biconditional, on random rational data."""
    rng = random.Random(seed)
    generators = [[rng.randint(-3, 3) for _ in range(dim)] for _ in range(count)]
    target = [rng.randint(-3, 3) for _ in range(dim)]
    witness = orthogonal_witness(generators, target)
    member = in_span(generators, target)
    assert (witness is None) == member
    if witness is not None:
        for generator in generators:
            assert dot(witness, generator) == 0
        assert dot(witness, target) != 0


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000), dim=st.integers(1, 4), count=st.integers(1, 4))
def test_span_certificate_always_verifies(seed, dim, count):
    rng = random.Random(seed)
    generators = [[rng.randint(-3, 3) for _ in range(dim)] for _ in range(count)]
    weights = [rng.randint(-3, 3) for _ in range(count)]
    target = [
        sum(w * g[i] for w, g in zip(weights, generators)) for i in range(dim)
    ]
    coefficients = span_coefficients(generators, target)
    assert coefficients is not None
    assert verify_combination(generators, coefficients, target)


class TestVandermonde:
    def test_lemma46_distinct_values(self):
        matrix = vandermonde_matrix([3, 5, 7])
        assert matrix.is_nonsingular()
        assert is_vandermonde_nonsingular([3, 5, 7])

    def test_repeated_values_singular(self):
        matrix = vandermonde_matrix([2, 2, 5])
        assert not matrix.is_nonsingular()
        assert not is_vandermonde_nonsingular([2, 2, 5])

    def test_closed_form_determinant(self):
        values = [1, 3, 4, 9]
        assert vandermonde_matrix(values).det() == vandermonde_determinant(values)

    def test_zero_value_uses_00_equals_1(self):
        # First column is all ones even when a value is 0 (0^0 = 1).
        matrix = vandermonde_matrix([0, 2])
        assert matrix.entry(0, 0) == 1
        assert matrix.is_nonsingular()


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.integers(-20, 20), min_size=1, max_size=5))
def test_vandermonde_det_closed_form(values):
    assert vandermonde_matrix(values).det() == vandermonde_determinant(values)
