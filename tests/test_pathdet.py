"""Unit tests for path-query determinacy (Theorem 1, Appendix B)."""

import pytest

from repro.errors import DecisionError, QueryError
from repro.queries.evaluation import evaluate_path_query
from repro.queries.parser import parse_path
from repro.core.pathdet import (
    PrefixGraph,
    appendix_b_counterexample,
    decide_path_determinacy,
)
from repro.core.qwalk import is_q_walk


class TestPrefixGraph:
    def test_nodes_are_prefixes(self, example13_paths):
        views, query = example13_paths
        graph = PrefixGraph(views, query)
        assert len(graph.nodes) == len(query) + 1

    def test_example13_reachability(self, example13_paths):
        views, query = example13_paths
        reachable = PrefixGraph(views, query).reachable_from_epsilon()
        # ε -> ABC -> A -> ABCD
        assert ("A", "B", "C") in reachable
        assert ("A",) in reachable
        assert ("A", "B", "C", "D") in reachable

    def test_empty_view_rejected(self):
        with pytest.raises(QueryError):
            PrefixGraph([parse_path("")], parse_path("A"))


class TestDecision:
    def test_example13_determined(self, example13_paths):
        views, query = example13_paths
        result = decide_path_determinacy(views, query)
        assert result.determined
        steps = result.certificate
        assert steps[0].source.is_empty()
        assert steps[-1].target == query

    def test_trivial_self_view(self):
        q = parse_path("A.B")
        assert decide_path_determinacy([q], q).determined

    def test_not_determined_without_connection(self):
        result = decide_path_determinacy([parse_path("B")], parse_path("A"))
        assert not result.determined

    def test_view_longer_than_query(self):
        # ε + AB is not a prefix of A: no edge, not determined.
        result = decide_path_determinacy([parse_path("A.B")], parse_path("A"))
        assert not result.determined

    def test_peeling_needs_both_directions(self):
        # V = {AB, B}: ε—AB (append AB), AB—A?? A = AB minus B: edge
        # between A and AB since A + B = AB. So ε -> AB -> A: determined.
        result = decide_path_determinacy(
            [parse_path("A.B"), parse_path("B")], parse_path("A.B")
        )
        assert result.determined

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            decide_path_determinacy([parse_path("A")], parse_path(""))

    def test_walk_certificate_is_q_walk(self, example13_paths):
        views, query = example13_paths
        result = decide_path_determinacy(views, query)
        assert is_q_walk(result.walk(), query)

    def test_walk_on_undetermined_raises(self):
        result = decide_path_determinacy([parse_path("B")], parse_path("A"))
        with pytest.raises(DecisionError):
            result.walk()

    def test_explain(self, example13_paths):
        views, query = example13_paths
        assert "certificate path" in decide_path_determinacy(views, query).explain()
        negative = decide_path_determinacy([parse_path("B")], parse_path("A"))
        assert "cannot reach" in negative.explain()


class TestAppendixB:
    def _check_pair(self, views_text, query_text):
        views = [parse_path(t) for t in views_text]
        query = parse_path(query_text)
        result = decide_path_determinacy(views, query)
        assert not result.determined
        left, right = result.counterexample()
        # (B): every view answers identically (as a bag of pairs!)
        for view in views:
            assert evaluate_path_query(view, left) == evaluate_path_query(view, right), view
        # (A): the query differs
        assert evaluate_path_query(query, left) != evaluate_path_query(query, right)
        return left, right

    def test_single_unreachable_view(self):
        self._check_pair(["B"], "A")

    def test_example2_flavor(self):
        # The Example 2 queries, path-ified: q = P.R.S with views
        # {P.R, R.S}: prefixes of q are ε,P,PR,PRS; P.R connects ε—PR;
        # R.S connects nothing else (PR + RS = PRRS not a prefix).
        self._check_pair(["P.R", "R.S"], "P.R.S")

    def test_overshooting_views(self):
        self._check_pair(["A.B"], "A")

    def test_counterexample_is_q_plus_q(self):
        views = [parse_path("B")]
        query = parse_path("A.B")
        left, _ = appendix_b_counterexample(views, query)
        # D = q + q: two disjoint copies -> 2 facts per letter.
        assert left.count_facts("A") == 2
        assert left.count_facts("B") == 2
        assert len(left.domain()) == 2 * (len(query) + 1)

    def test_counterexample_on_determined_raises(self):
        q = parse_path("A")
        result = decide_path_determinacy([q], q)
        with pytest.raises(DecisionError):
            result.counterexample()


class TestTheorem1Coincidence:
    """Theorem 1: for path queries set- and bag-determinacy coincide;
    our decider implements the common characterization (Fact 10 /
    Lemma 11).  We sanity-check the *bag* side on concrete databases:
    when determined, equal view bags must force equal query bags on a
    family of random databases."""

    def test_determined_instances_never_refuted_on_random_pairs(self):
        import random
        from repro.structures.generators import random_structure
        from repro.structures.schema import Schema

        views = [parse_path("A.B.C"), parse_path("B.C"), parse_path("B.C.D")]
        query = parse_path("A.B.C.D")
        assert decide_path_determinacy(views, query).determined
        schema = Schema({letter: 2 for letter in "ABCD"})
        rng = random.Random(23)
        databases = [random_structure(schema, 4, 0.4, rng) for _ in range(40)]
        for left in databases:
            for right in databases:
                if all(
                    evaluate_path_query(v, left) == evaluate_path_query(v, right)
                    for v in views
                ):
                    assert evaluate_path_query(query, left) == evaluate_path_query(
                        query, right
                    )
