"""Tests for Lovász distinguishers (Lemmas 43/44)."""

import random

from repro.hom.count import count_homs
from repro.hom.lovasz import (
    distinguisher_battery,
    find_left_distinguisher,
    find_right_distinguisher,
    hom_count_profile,
)
from repro.structures.generators import (
    clique_structure,
    cycle_structure,
    path_structure,
    random_structure,
)
from repro.structures.schema import Schema


class TestRightDistinguishers:
    def test_none_for_isomorphic(self):
        c3 = cycle_structure(3)
        renamed = c3.rename({i: f"v{i}" for i in range(3)})
        assert find_right_distinguisher(c3, renamed) is None

    def test_distinguishes_cycles(self):
        witness = find_right_distinguisher(cycle_structure(3), cycle_structure(4))
        assert witness is not None
        assert count_homs(cycle_structure(3), witness) != count_homs(
            cycle_structure(4), witness
        )

    def test_distinguishes_path_lengths(self):
        left = path_structure(["R"])
        right = path_structure(["R", "R"])
        witness = find_right_distinguisher(left, right, rng=random.Random(1))
        assert count_homs(left, witness) != count_homs(right, witness)

    def test_random_pairs(self):
        schema = Schema({"R": 2})
        rng = random.Random(9)
        for seed in range(5):
            left = random_structure(schema, 3, 0.4, random.Random(seed))
            right = random_structure(schema, 3, 0.4, random.Random(seed + 100))
            witness = find_right_distinguisher(left, right, rng=rng)
            if witness is None:
                continue  # isomorphic draw
            assert count_homs(left, witness) != count_homs(right, witness)


class TestLeftDistinguishers:
    def test_none_for_isomorphic(self):
        k3 = clique_structure(3)
        assert find_left_distinguisher(k3, k3) is None

    def test_distinguishes_by_incoming_counts(self):
        left = cycle_structure(3)
        right = cycle_structure(5)
        witness = find_left_distinguisher(left, right, rng=random.Random(2))
        assert witness is not None
        assert count_homs(witness, left) != count_homs(witness, right)


class TestBattery:
    def test_battery_separates_family(self):
        family = [
            path_structure(["R"]),
            path_structure(["R", "R"]),
            cycle_structure(3),
            cycle_structure(4),
        ]
        probes = distinguisher_battery(family, rng=random.Random(3))
        profiles = [hom_count_profile(s, probes) for s in family]
        assert len(set(profiles)) == len(family)

    def test_battery_empty_for_singleton(self):
        assert distinguisher_battery([cycle_structure(3)]) == []

    def test_profile_shape(self):
        probes = [clique_structure(2), clique_structure(3)]
        profile = hom_count_profile(path_structure(["R"]), probes)
        assert profile == (2, 6)
