"""Tests for path-query containment (footnote 14)."""

import itertools

import pytest

from repro.errors import QueryError
from repro.queries.parser import parse_path
from repro.core.pathcontainment import containment_homomorphism, path_contained


WORDS = ["A", "B", "A.B", "B.A", "A.B.C", "A.A"]


class TestCharacterization:
    def test_equality_iff_contained(self):
        for left_text, right_text in itertools.product(WORDS, repeat=2):
            left = parse_path(left_text)
            right = parse_path(right_text)
            assert path_contained(left, right) == (left == right)

    def test_characterization_matches_homomorphism_definition(self):
        """word-equality ⟺ existence of an endpoint-fixing hom."""
        for left_text, right_text in itertools.product(WORDS, repeat=2):
            left = parse_path(left_text)
            right = parse_path(right_text)
            witnessed = containment_homomorphism(left, right) is not None
            assert witnessed == path_contained(left, right), (left, right)

    def test_non_containment_witnessed_by_evaluation(self):
        """A ⊄ A.B in either semantics: exhibit a database where A has
        an answer but A.B has none — the semantic content behind the
        word-equality characterization."""
        from repro.queries.evaluation import evaluate_path_query
        from repro.structures.generators import path_structure

        database = path_structure(["A"])  # one A-edge, no B continuation
        assert evaluate_path_query(parse_path("A"), database).total() == 1
        assert evaluate_path_query(parse_path("A.B"), database).total() == 0
        assert not path_contained(parse_path("A"), parse_path("A.B"))
        assert not path_contained(parse_path("A.B"), parse_path("A"))

    def test_epsilon_rejected(self):
        with pytest.raises(QueryError):
            path_contained(parse_path(""), parse_path("A"))
        with pytest.raises(QueryError):
            containment_homomorphism(parse_path("A"), parse_path(""))


def test_prefix_graph_dot_export(example13_paths):
    from repro.core.pathdet import PrefixGraph

    views, query = example13_paths
    dot = PrefixGraph(views, query).to_dot()
    assert dot.startswith("graph G_qV {")
    assert '"ε"' in dot
    assert '"ABCD"' in dot
    assert "palegreen" in dot  # reachable nodes highlighted
    assert '[label="ABC"]' in dot  # an edge labeled by its view
