"""Unit tests for the component basis (Definitions 27–29, Obs. 28/30)."""

import pytest

from repro.errors import DecisionError, UnsupportedQueryError
from repro.queries.cq import ConjunctiveQuery, cq_from_structure
from repro.queries.parser import parse_boolean_cq, parse_cq
from repro.structures.generators import cycle_structure, path_structure
from repro.structures.operations import sum_with_multiplicities
from repro.core.basis import ComponentBasis, validate_for_component_basis


EDGE_Q = parse_boolean_cq("R(x,y)")
TWO_COMPONENT_Q = parse_boolean_cq("R(x,y), R(u,v)")
MIXED_Q = parse_boolean_cq("R(x,y), S(u,v)")


class TestConstruction:
    def test_single_query(self):
        basis = ComponentBasis.from_queries([EDGE_Q])
        assert basis.dimension == 1

    def test_components_deduplicated_across_queries(self):
        basis = ComponentBasis.from_queries([EDGE_Q, TWO_COMPONENT_Q])
        # Both queries only use the R-edge component.
        assert basis.dimension == 1

    def test_distinct_components_kept(self):
        basis = ComponentBasis.from_queries([MIXED_Q])
        assert basis.dimension == 2

    def test_empty_query_contributes_nothing(self):
        empty = ConjunctiveQuery([])
        basis = ComponentBasis.from_queries([empty])
        assert basis.dimension == 0

    def test_nullary_rejected(self):
        nullary = parse_boolean_cq("H()")
        with pytest.raises(UnsupportedQueryError):
            ComponentBasis.from_queries([nullary])

    def test_free_variables_rejected(self):
        unary = parse_cq("x | R(x,y)")
        with pytest.raises(UnsupportedQueryError):
            validate_for_component_basis(unary)


class TestVectors:
    def test_observation_28_multiplicities(self):
        basis = ComponentBasis.from_queries([TWO_COMPONENT_Q])
        assert basis.vector(TWO_COMPONENT_Q) == (2,)
        assert basis.vector(EDGE_Q) == (1,)

    def test_mixed_vector(self):
        basis = ComponentBasis.from_queries([MIXED_Q, EDGE_Q])
        vec = basis.vector(MIXED_Q)
        assert sorted(vec) == [1, 1]
        assert sum(basis.vector(EDGE_Q)) == 1

    def test_vector_of_unknown_component_raises(self):
        basis = ComponentBasis.from_queries([EDGE_Q])
        triangle = cq_from_structure(cycle_structure(3))
        with pytest.raises(DecisionError):
            basis.vector(triangle)
        assert basis.vector_or_none(triangle) is None

    def test_empty_query_vector_is_zero(self):
        basis = ComponentBasis.from_queries([EDGE_Q])
        assert basis.vector(ConjunctiveQuery([])) == (0,)

    def test_index_of(self):
        basis = ComponentBasis.from_queries([MIXED_Q])
        edge = path_structure(["R"])
        index = basis.index_of(edge.rename({0: "a", 1: "b"}))
        assert index is not None
        assert basis.index_of(cycle_structure(4)) is None


class TestObservation30:
    def test_evaluation_from_counts(self):
        # v = 2*w1 + 1*w2, counts (3, 5): v(D) = 3^2 * 5 = 45.
        assert ComponentBasis.evaluate_from_counts([3, 5], [2, 1]) == 45

    def test_zero_to_the_zero_is_one(self):
        # Paper's convention 0^0 = 1 must hold.
        assert ComponentBasis.evaluate_from_counts([0, 5], [0, 1]) == 5

    def test_dimension_mismatch(self):
        with pytest.raises(DecisionError):
            ComponentBasis.evaluate_from_counts([1], [1, 2])

    def test_observation_30_against_real_counts(self):
        """v(D) = Π w_i(D)^{v_i} on concrete structures."""
        from repro.queries.evaluation import evaluate_boolean
        from repro.hom.count import count_homs

        w1 = path_structure(["R"])
        w2 = cycle_structure(3)
        v = cq_from_structure(sum_with_multiplicities([(2, w1), (1, w2)]))
        basis = ComponentBasis.from_queries([v])
        vector = basis.vector(v)
        database = sum_with_multiplicities([(1, w1), (2, w2)])
        counts = [count_homs(w, database) for w in basis.components]
        assert evaluate_boolean(v, database) == ComponentBasis.evaluate_from_counts(
            counts, vector
        )
