"""Unit + property tests for exact rational matrices."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LinalgError
from repro.linalg.matrix import QMatrix, dot, vector


class TestConstruction:
    def test_entries_become_fractions(self):
        m = QMatrix([[1, 2], [3, 4]])
        assert m.entry(0, 1) == Fraction(2)
        assert isinstance(m.entry(0, 0), Fraction)

    def test_ragged_rejected(self):
        with pytest.raises(LinalgError):
            QMatrix([[1, 2], [3]])

    def test_float_rejected(self):
        with pytest.raises(LinalgError):
            QMatrix([[0.5]])

    def test_identity(self):
        eye = QMatrix.identity(3)
        assert eye.matvec([1, 2, 3]) == vector([1, 2, 3])

    def test_from_columns(self):
        m = QMatrix.from_columns([[1, 2], [3, 4]])
        assert m.column(0) == vector([1, 2])
        assert m.row(0) == vector([1, 3])


class TestArithmetic:
    def test_matvec(self):
        m = QMatrix([[1, 2], [3, 4]])
        assert m.matvec([1, 1]) == vector([3, 7])

    def test_matmul(self):
        a = QMatrix([[1, 2], [3, 4]])
        b = QMatrix([[0, 1], [1, 0]])
        assert a.matmul(b) == QMatrix([[2, 1], [4, 3]])

    def test_matmul_shape_mismatch(self):
        with pytest.raises(LinalgError):
            QMatrix([[1, 2]]).matmul(QMatrix([[1, 2]]))

    def test_dot(self):
        assert dot([1, 2], [3, 4]) == Fraction(11)
        with pytest.raises(LinalgError):
            dot([1], [1, 2])

    def test_transpose(self):
        m = QMatrix([[1, 2, 3]])
        assert m.transpose() == QMatrix([[1], [2], [3]])

    def test_scale_and_add(self):
        m = QMatrix([[1, 2]])
        assert m.scale(Fraction(1, 2)) == QMatrix([[Fraction(1, 2), 1]])
        assert m.add(m) == QMatrix([[2, 4]])


class TestElimination:
    def test_rref_pivots(self):
        m = QMatrix([[2, 4], [1, 2]])  # Figure 1 matrix: singular
        reduced, pivots = m.rref()
        assert pivots == (0,)
        assert m.rank() == 1

    def test_det_singular(self):
        assert QMatrix([[2, 4], [1, 2]]).det() == 0
        assert not QMatrix([[2, 4], [1, 2]]).is_nonsingular()

    def test_det_2x2(self):
        assert QMatrix([[1, 4], [1, 2]]).det() == Fraction(-2)

    def test_det_non_square_rejected(self):
        with pytest.raises(LinalgError):
            QMatrix([[1, 2]]).det()

    def test_inverse_roundtrip(self):
        m = QMatrix([[1, 4], [1, 2]])
        assert m.matmul(m.inverse()) == QMatrix.identity(2)

    def test_inverse_singular_rejected(self):
        with pytest.raises(LinalgError):
            QMatrix([[2, 4], [1, 2]]).inverse()

    def test_solve_consistent(self):
        m = QMatrix([[1, 1], [0, 1]])
        solution = m.solve([3, 1])
        assert m.matvec(solution) == vector([3, 1])

    def test_solve_inconsistent(self):
        m = QMatrix([[1, 1], [1, 1]])
        assert m.solve([0, 1]) is None

    def test_solve_underdetermined_picks_particular(self):
        m = QMatrix([[1, 1]])
        solution = m.solve([5])
        assert m.matvec(solution) == vector([5])

    def test_nullspace(self):
        m = QMatrix([[1, 1]])
        basis = m.nullspace()
        assert len(basis) == 1
        assert dot(m.row(0), basis[0]) == 0

    def test_nullspace_of_nonsingular_is_empty(self):
        assert QMatrix([[1, 0], [0, 1]]).nullspace() == []

    def test_to_int_rows(self):
        assert QMatrix([[1, 2]]).to_int_rows() == [[1, 2]]
        with pytest.raises(LinalgError):
            QMatrix([[Fraction(1, 2)]]).to_int_rows()


def _random_matrix(seed: int, size: int) -> QMatrix:
    rng = random.Random(seed)
    return QMatrix([
        [rng.randint(-5, 5) for _ in range(size)] for _ in range(size)
    ])


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000), size=st.integers(1, 4))
def test_det_zero_iff_rank_deficient(seed, size):
    m = _random_matrix(seed, size)
    assert (m.det() == 0) == (m.rank() < size)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000), size=st.integers(1, 4))
def test_inverse_property(seed, size):
    m = _random_matrix(seed, size)
    if m.det() == 0:
        return
    assert m.matmul(m.inverse()) == QMatrix.identity(size)
    assert m.inverse().matmul(m) == QMatrix.identity(size)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000), size=st.integers(1, 4))
def test_nullspace_vectors_annihilate(seed, size):
    m = _random_matrix(seed, size)
    for candidate in m.nullspace():
        assert all(value == 0 for value in m.matvec(candidate))
