"""Unit tests for Diophantine instances and the bounded solver."""

import pytest

from repro.errors import QueryError
from repro.ucq.hilbert import (
    DiophantineInstance,
    Monomial,
    fermat_like_instance,
    iter_solutions,
    linear_instance,
    pythagoras_instance,
    solve_bounded,
    unsolvable_instance,
)


class TestMonomial:
    def test_evaluate(self):
        m = Monomial(-2, {"x": 1, "y": 2})
        assert m.evaluate({"x": 3, "y": 1}) == -6
        assert m.monomial_value({"x": 3, "y": 1}) == 3

    def test_degree(self):
        m = Monomial(1, {"x": 2})
        assert m.degree("x") == 2
        assert m.degree("z") == 0

    def test_constant_monomial(self):
        m = Monomial(5, {})
        assert m.evaluate({}) == 5
        assert m.variables() == ()

    def test_zero_degree_dropped(self):
        m = Monomial(1, {"x": 0, "y": 1})
        assert m.variables() == ("y",)

    def test_zero_coefficient_rejected(self):
        with pytest.raises(QueryError):
            Monomial(0, {"x": 1})

    def test_negative_degree_rejected(self):
        with pytest.raises(QueryError):
            Monomial(1, {"x": -1})

    def test_missing_variable_evaluates_to_zero_base(self):
        m = Monomial(1, {"x": 1})
        assert m.evaluate({}) == 0


class TestInstance:
    def test_variables_sorted(self):
        instance = DiophantineInstance([
            Monomial(1, {"z": 1}), Monomial(-1, {"a": 1})
        ])
        assert instance.variables() == ("a", "z")

    def test_sign_partition(self):
        instance = pythagoras_instance()
        assert len(instance.positive_monomials()) == 2
        assert len(instance.negative_monomials()) == 1

    def test_is_solution(self):
        assert pythagoras_instance().is_solution({"x": 3, "y": 4, "z": 5})
        assert not pythagoras_instance().is_solution({"x": 1, "y": 1, "z": 1})

    def test_solution_must_be_natural(self):
        with pytest.raises(QueryError):
            linear_instance().is_solution({"x": -1, "y": -1})

    def test_empty_instance_rejected(self):
        with pytest.raises(QueryError):
            DiophantineInstance([])


class TestBoundedSolver:
    def test_finds_pythagorean_triple(self):
        nontrivial = [
            s for s in iter_solutions(pythagoras_instance(), 5)
            if any(v > 0 for v in s.values())
        ]
        assert {"x": 3, "y": 4, "z": 5} in nontrivial

    def test_unsolvable_returns_none(self):
        assert solve_bounded(unsolvable_instance(), 10) is None

    def test_linear_solutions(self):
        solutions = list(iter_solutions(linear_instance(), 2))
        assert {"x": 0, "y": 0} in solutions
        assert {"x": 2, "y": 2} in solutions
        assert len(solutions) == 3

    def test_budget_respected(self):
        assert solve_bounded(unsolvable_instance(), 10_000, max_assignments=5) is None

    def test_fermat_like_only_degenerate(self):
        solutions = [
            s for s in iter_solutions(fermat_like_instance(), 4)
            if all(v > 0 for v in s.values())
        ]
        assert solutions == []
