"""Unit tests for counterexample construction (Lemmas 41/55/56/57)."""

import random

import pytest

from repro.errors import DecisionError
from repro.hom.count import count_homs
from repro.queries.parser import parse_boolean_cq
from repro.core.decision import decide_bag_determinacy


def _witness_for(views_text, query_text, seed=3):
    views = [parse_boolean_cq(t) for t in views_text]
    query = parse_boolean_cq(query_text)
    result = decide_bag_determinacy(views, query)
    assert not result.determined
    return result.witness(rng=random.Random(seed))


class TestSimpleCases:
    def test_no_views(self):
        pair = _witness_for([], "R(x,y)")
        report = pair.verify()
        assert report.ok
        assert report.query_answers[0] != report.query_answers[1]

    def test_example42_shape(self):
        # q = edge, view = 2-path (q ⊆set v but not in span).
        pair = _witness_for(["R(x,y), R(y,z)"], "R(x,y)")
        report = pair.verify()
        assert report.ok
        # view answers agree exactly
        for left, right in report.view_answers:
            assert left == right

    def test_irrelevant_views_are_zeroed(self):
        # v over S is irrelevant; decency must force v(D) = v(D') = 0.
        pair = _witness_for(["S(x,y)"], "R(x,y)")
        report = pair.verify()
        assert report.ok
        assert report.irrelevant_answers == ((0, 0),)

    def test_multi_component_instance(self):
        # q = edge + triangle, view = edge + edge: not determined.
        pair = _witness_for(
            ["R(x,y), R(u,v)"],
            "R(x,y), R(a,b), R(b,c), R(c,a)",
        )
        assert pair.verify().ok

    def test_two_views_span_misses(self):
        # basis {edge, 2path, triangle}: views give 2 vectors, q outside.
        views = [
            "R(x,y), R(u,v), R(v,w)",             # edge + 2path
            "R(x,y), R(a,b), R(b,c), R(c,a)",     # edge + triangle
        ]
        pair = _witness_for(views, "R(x,y)")
        assert pair.verify().ok


class TestWitnessInternals:
    def test_multiplicities_nonnegative(self):
        pair = _witness_for(["R(x,y), R(y,z)"], "R(x,y)")
        assert all(a >= 0 for a in pair.left_multiplicities)
        assert all(a >= 0 for a in pair.right_multiplicities)
        assert pair.left_multiplicities != pair.right_multiplicities

    def test_parameter_is_not_one(self):
        pair = _witness_for(["R(x,y), R(y,z)"], "R(x,y)")
        assert pair.parameter != 1
        assert pair.parameter > 0

    def test_direction_orthogonal_to_views(self):
        from repro.linalg.matrix import dot

        views = [parse_boolean_cq("R(x,y), R(y,z)")]
        query = parse_boolean_cq("R(x,y)")
        result = decide_bag_determinacy(views, query)
        pair = result.witness()
        for vec in result.view_vectors:
            assert dot(pair.direction, vec) == 0
        assert dot(pair.direction, result.query_vector) != 0

    def test_basis_counts_cross_check(self):
        """Matrix-derived w_i(D) must equal symbolic hom counts."""
        pair = _witness_for(["R(x,y), R(y,z)"], "R(x,y)")
        matrix_left, matrix_right = pair.basis_counts()
        for i, w in enumerate(pair.basis.components):
            assert count_homs(w, pair.left) == matrix_left[i]
            assert count_homs(w, pair.right) == matrix_right[i]

    def test_explain_mentions_parameters(self):
        pair = _witness_for(["R(x,y), R(y,z)"], "R(x,y)")
        text = pair.explain()
        assert "direction z" in text
        assert "parameter t" in text

    def test_witness_cached_on_result(self):
        views = [parse_boolean_cq("R(x,y), R(y,z)")]
        query = parse_boolean_cq("R(x,y)")
        result = decide_bag_determinacy(views, query)
        assert result.witness() is result.witness()

    def test_construct_on_determined_raises(self):
        from repro.core.witness import construct_counterexample

        query = parse_boolean_cq("R(x,y)")
        result = decide_bag_determinacy([query], query)
        with pytest.raises(DecisionError):
            construct_counterexample(result)
