"""Tests for canonical query printing (parser inverse)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryError
from repro.queries.cq import ConjunctiveQuery, cq_from_structure
from repro.queries.parser import parse_cq, parse_path, parse_ucq
from repro.queries.printing import format_cq, format_path, format_ucq
from repro.structures.generators import random_structure
from repro.structures.schema import Schema


class TestFormatCQ:
    def test_boolean(self):
        q = parse_cq("R(x,y), S(y,z)")
        assert format_cq(q) == "R(x, y), S(y, z)"

    def test_free_variables(self):
        q = parse_cq("x, y | R(x,y)")
        assert format_cq(q) == "x, y | R(x, y)"

    def test_roundtrip_simple(self):
        for text in (
            "R(x,y)",
            "R(x,y), R(y,z), S(z,u)",
            "a | P(u,a)",
            "H()",
        ):
            q = parse_cq(text)
            assert parse_cq(format_cq(q)) == q

    def test_free_but_unused_roundtrips(self):
        q = parse_cq("x, w | R(x,y)")
        assert parse_cq(format_cq(q)) == q

    def test_stray_extra_variables_rejected(self):
        q = ConjunctiveQuery([("R", ("x", "y"))], extra_variables=["ghost"])
        with pytest.raises(QueryError):
            format_cq(q)

    def test_empty_conjunction_rejected(self):
        with pytest.raises(QueryError):
            format_cq(ConjunctiveQuery([]))

    def test_deterministic_atom_order(self):
        left = parse_cq("S(y,z), R(x,y)")
        right = parse_cq("R(x,y), S(y,z)")
        assert format_cq(left) == format_cq(right)


class TestFormatUCQAndPath:
    def test_ucq_roundtrip(self):
        u = parse_ucq("P(x) or R(x), R(y)")
        assert parse_ucq(format_ucq(u)) == u

    def test_path_roundtrip(self):
        p = parse_path("A.B.C")
        assert parse_path(format_path(p)) == p

    def test_epsilon(self):
        assert format_path(parse_path("")) == "ε"
        assert parse_path(format_path(parse_path(""))).is_empty()


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000), size=st.integers(1, 4))
def test_random_boolean_cq_roundtrip(seed, size):
    """Property: print-then-parse is the identity on frozen queries."""
    schema = Schema({"R": 2, "S": 2, "U": 1})
    s = random_structure(schema, size, 0.4, random.Random(seed),
                         ensure_nonempty=True)
    q = cq_from_structure(s.restrict_domain(s.active_domain()))
    if not q.atoms:
        return
    assert parse_cq(format_cq(q)) == q
