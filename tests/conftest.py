"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.queries.cq import cq_from_structure
from repro.queries.parser import parse_boolean_cq, parse_path
from repro.structures.generators import (
    cycle_structure,
    path_structure,
)
from repro.structures.operations import sum_with_multiplicities
from repro.structures.schema import Schema


@pytest.fixture
def binary_rs_schema() -> Schema:
    """The workhorse schema {R/2, S/2}."""
    return Schema({"R": 2, "S": 2})


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def edge_query():
    return parse_boolean_cq("R(x,y)")


@pytest.fixture
def two_path_query():
    return parse_boolean_cq("R(x,y), R(y,z)")


@pytest.fixture
def example32_instance():
    """The paper's Example 32: q = w1+w2+2w3, v1 = 2w1+w2+3w3,
    v2 = 5w1+2w2+7w3 over connected non-isomorphic w1, w2, w3."""
    w1 = path_structure(["R"])
    w2 = path_structure(["R", "R"])
    w3 = cycle_structure(3)

    def make(*pairs):
        return cq_from_structure(sum_with_multiplicities(list(pairs)))

    q = make((1, w1), (1, w2), (2, w3))
    v1 = make((2, w1), (1, w2), (3, w3))
    v2 = make((5, w1), (2, w2), (7, w3))
    return [v1, v2], q


@pytest.fixture
def example13_paths():
    """Example 13: q = ABCD, V = {ABC, BC, BCD}."""
    views = [parse_path("A.B.C"), parse_path("B.C"), parse_path("B.C.D")]
    return views, parse_path("A.B.C.D")
