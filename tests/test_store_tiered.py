"""Tests for the tiered sharded hom store (schema v3) and its tooling."""

from __future__ import annotations

import json

import pytest

from repro.batch.cache import SQLiteHomStore, StoreFormatError
from repro.cli import main
from repro.errors import ReproError
from repro.hom.engine import HomEngine
from repro.batch.store import (
    DEFAULT_SHARDS,
    MemoryTier,
    TieredHomStore,
    copy_rows,
    export_warm_pack,
    import_warm_pack,
    open_store,
    shard_of,
)
from repro.structures.canonical import canonical_key
from repro.structures.generators import clique_structure, path_structure


SRC = path_structure(["R", "R"])
TGT = clique_structure(4)


def _sources(count: int):
    """Distinct sources: single-relation paths of growing length."""
    return [path_structure(["R"] * (length + 1)) for length in range(count)]


# ----------------------------------------------------------------------
# Memory tier
# ----------------------------------------------------------------------
class TestMemoryTier:
    def test_capacity_evicts_least_recently_used(self):
        tier = MemoryTier(capacity=2)
        tier.put("a", "1")
        tier.put("b", "2")
        tier.put("c", "3")  # evicts "a" — oldest, never touched
        assert tier.get("a") is None
        assert tier.get("b") == "2"
        assert tier.get("c") == "3"
        assert tier.evictions == 1

    def test_get_refreshes_recency(self):
        tier = MemoryTier(capacity=2)
        tier.put("a", "1")
        tier.put("b", "2")
        assert tier.get("a") == "1"  # "a" is now the most recent
        tier.put("c", "3")           # so "b" is the one evicted
        assert tier.get("b") is None
        assert tier.get("a") == "1"

    def test_put_refreshes_recency_and_overwrites(self):
        tier = MemoryTier(capacity=2)
        tier.put("a", "1")
        tier.put("b", "2")
        tier.put("a", "9")
        tier.put("c", "3")
        assert tier.get("a") == "9"
        assert tier.get("b") is None

    def test_counters(self):
        tier = MemoryTier(capacity=4)
        assert tier.get("missing") is None
        tier.put("k", "v")
        assert tier.get("k") == "v"
        assert (tier.hits, tier.misses) == (1, 1)
        assert len(tier) == 1


# ----------------------------------------------------------------------
# Tiered store basics
# ----------------------------------------------------------------------
class TestTieredStore:
    def test_round_trip_and_iso_sharing(self, tmp_path):
        with TieredHomStore(str(tmp_path / "store"), shards=4) as store:
            store.record(SRC, TGT, 144)
            store.flush()
            assert store.lookup(SRC, TGT) == 144
            # isomorphic source hits the same canonical row
            renamed = SRC.rename({c: f"z{c}" for c in SRC.domain()})
            assert store.lookup(renamed, TGT) == 144

    def test_exists_round_trip(self, tmp_path):
        with TieredHomStore(str(tmp_path / "store"), shards=2) as store:
            store.record_exists(SRC, TGT, True)
            store.flush()
            assert store.lookup_exists(SRC, TGT) is True

    def test_second_lookup_served_by_memory_tier(self, tmp_path):
        with TieredHomStore(str(tmp_path / "store"), shards=2) as store:
            store.record(SRC, TGT, 7)
            store.flush()
            assert store.lookup(SRC, TGT) == 7  # shard hit, tier fill
            before = store.tier.hits
            assert store.lookup(SRC, TGT) == 7  # tier hit, zero I/O
            assert store.tier.hits == before + 1

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "store")
        with TieredHomStore(path, shards=4) as store:
            for index, source in enumerate(_sources(12)):
                store.record(source, TGT, index)
        with TieredHomStore(path) as reopened:  # shard count from meta
            assert reopened.shards == 4
            for index, source in enumerate(_sources(12)):
                assert reopened.lookup(source, TGT) == index

    def test_rows_spread_across_shard_files(self, tmp_path):
        path = tmp_path / "store"
        with TieredHomStore(str(path), shards=4) as store:
            for index, source in enumerate(_sources(32)):
                store.record(source, TGT, index)
        populated = {shard_of(canonical_key(s), 4) for s in _sources(32)}
        assert len(populated) > 1  # crc32 actually partitions
        files = sorted(p.name for p in path.glob("shard-*.sqlite"))
        assert files == [f"shard-{i:03d}.sqlite" for i in sorted(populated)]

    def test_shard_of_is_deterministic_and_in_range(self):
        for source in _sources(16):
            key = canonical_key(source)
            index = shard_of(key, 8)
            assert 0 <= index < 8
            assert index == shard_of(key, 8)
        assert shard_of(canonical_key(SRC), 1) == 0

    def test_ensure_shards_materializes_every_file(self, tmp_path):
        path = tmp_path / "store"
        with TieredHomStore(str(path), shards=4) as store:
            assert not list(path.glob("shard-*.sqlite"))  # lazy by default
            store.ensure_shards()
            assert len(list(path.glob("shard-*.sqlite"))) == 4

    def test_reopen_with_contradicting_shards_refused(self, tmp_path):
        path = str(tmp_path / "store")
        TieredHomStore(path, shards=4).close()
        with pytest.raises(ReproError, match="cache merge"):
            TieredHomStore(path, shards=8)

    def test_stats_shape(self, tmp_path):
        with TieredHomStore(str(tmp_path / "store"), shards=2) as store:
            stats = store.stats()
        assert set(stats) == {
            "counts", "exists", "lookups", "lookup_hits", "inserts",
            "corruptions", "retries", "tier_hits", "tier_misses",
            "tier_evictions", "tier_entries", "flush_batches",
            "flush_rows", "shard_opens", "shards",
        }

    def test_flush_batches_one_transaction_per_dirty_shard(self, tmp_path):
        with TieredHomStore(str(tmp_path / "store"), shards=4) as store:
            sources = _sources(24)
            for index, source in enumerate(sources):
                store.record(source, TGT, index)
            assert store.flush_batches == 0  # still queued
            store.flush()
            dirty = {shard_of(canonical_key(s), 4) for s in sources}
            assert store.flush_batches == len(dirty)
            assert store.flush_rows == len(sources)

    def test_clear_wipes_every_shard(self, tmp_path):
        with TieredHomStore(str(tmp_path / "store"), shards=4) as store:
            for index, source in enumerate(_sources(12)):
                store.record(source, TGT, index)
            store.flush()
            assert store.clear() == 12
            assert len(store) == 0
            assert store.lookup(SRC, TGT) is None


# ----------------------------------------------------------------------
# open_store routing
# ----------------------------------------------------------------------
class TestOpenStore:
    def test_plain_path_stays_single_file(self, tmp_path):
        with open_store(str(tmp_path / "cache.sqlite")) as store:
            assert isinstance(store, SQLiteHomStore)

    def test_knobs_opt_into_tiered(self, tmp_path):
        with open_store(str(tmp_path / "a"), shards=2) as store:
            assert isinstance(store, TieredHomStore)
            assert store.shards == 2
        with open_store(str(tmp_path / "b"), memory_tier=64) as store:
            assert isinstance(store, TieredHomStore)
            assert store.shards == DEFAULT_SHARDS
            assert store.tier.capacity == 64

    def test_directory_is_tiered(self, tmp_path):
        path = str(tmp_path / "store")
        TieredHomStore(path, shards=2).close()
        with open_store(path) as store:
            assert isinstance(store, TieredHomStore)
            assert store.shards == 2


# ----------------------------------------------------------------------
# v2 -> v3 migration
# ----------------------------------------------------------------------
class TestMigration:
    def test_v2_file_migrates_round_trip(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        with SQLiteHomStore(path) as legacy:
            for index, source in enumerate(_sources(10)):
                legacy.record(source, TGT, index)
            legacy.record_exists(SRC, TGT, True)
        with open_store(path, shards=4) as migrated:
            assert isinstance(migrated, TieredHomStore)
            for index, source in enumerate(_sources(10)):
                assert migrated.lookup(source, TGT) == index
            assert migrated.lookup_exists(SRC, TGT) is True
            assert migrated.counts_len() == 10
            assert migrated.exists_len() == 1
        assert (tmp_path / "cache.sqlite").is_dir()
        assert (tmp_path / "cache.sqlite.v2-backup").is_file()

    def test_future_version_refused_not_migrated(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "cache.sqlite")
        connection = sqlite3.connect(path)
        connection.execute("PRAGMA user_version=99")
        connection.commit()
        connection.close()
        with pytest.raises(StoreFormatError):
            TieredHomStore(path, shards=2)


# ----------------------------------------------------------------------
# Per-shard self-healing
# ----------------------------------------------------------------------
class TestShardQuarantine:
    def test_one_corrupt_shard_leaves_siblings_serving(self, tmp_path):
        path = tmp_path / "store"
        sources = _sources(24)
        with TieredHomStore(str(path), shards=4) as store:
            for index, source in enumerate(sources):
                store.record(source, TGT, index)

        victim = shard_of(canonical_key(sources[0]), 4)
        victim_file = path / f"shard-{victim:03d}.sqlite"
        victim_file.write_bytes(b"definitely not a database" * 64)

        with TieredHomStore(str(path)) as store:
            for index, source in enumerate(sources):
                expected = (None if shard_of(canonical_key(source), 4)
                            == victim else index)
                assert store.lookup(source, TGT) == expected
            assert store.corruptions == 1  # only the victim healed
            assert len(list(path.glob(f"shard-{victim:03d}.sqlite"
                                      f".corrupt-*"))) == 1
            # the healed shard accepts fresh writes again
            store.record(sources[0], TGT, 0)
            store.flush()
            store.tier.clear()
            assert store.lookup(sources[0], TGT) == 0


# ----------------------------------------------------------------------
# Preload: recency and limit
# ----------------------------------------------------------------------
class TestPreload:
    def test_preload_seeds_engine(self, tmp_path):
        path = str(tmp_path / "store")
        with TieredHomStore(path, shards=2) as store:
            engine = HomEngine(store=store)
            expected = engine.count(SRC, TGT)
        with TieredHomStore(path) as store:
            warmed = HomEngine()
            assert store.preload(warmed) > 0
            before = warmed.misses
            assert warmed.count(SRC, TGT) == expected
            assert warmed.misses == before

    def test_preload_limit_keeps_most_recent_rows(self, tmp_path):
        path = str(tmp_path / "store")
        sources = _sources(10)
        with TieredHomStore(path, shards=1) as store:
            # deliberately wrong sentinel counts: a memo hit is then
            # distinguishable from a recomputation (paths into K4 have
            # counts 4*3^n, never a small index)
            for index, source in enumerate(sources):
                store.record(source, TGT, index)
        with TieredHomStore(path) as store:
            engine = HomEngine()
            assert store.preload(engine, limit=3) == 3
            # with one shard, rowid order is global recency order:
            # exactly the last three recorded rows are seeded
            for index, source in enumerate(sources):
                served = engine.count(source, TGT)
                if index >= len(sources) - 3:
                    assert served == index  # sentinel: memo hit
                else:
                    assert served >= 12     # recomputed for real


# ----------------------------------------------------------------------
# Tooling: merge / compact / warm packs (library + CLI)
# ----------------------------------------------------------------------
class TestTooling:
    def test_copy_rows_between_layouts(self, tmp_path):
        single = str(tmp_path / "cache.sqlite")
        sharded = str(tmp_path / "store")
        with SQLiteHomStore(single) as source:
            for index, src in enumerate(_sources(8)):
                source.record(src, TGT, index)
        with SQLiteHomStore(single) as source, \
                TieredHomStore(sharded, shards=4) as destination:
            assert copy_rows(source, destination) == 8
            for index, src in enumerate(_sources(8)):
                assert destination.lookup(src, TGT) == index

    def test_warm_pack_round_trip(self, tmp_path):
        pack = str(tmp_path / "pack.jsonl")
        with TieredHomStore(str(tmp_path / "a"), shards=2) as store:
            for index, src in enumerate(_sources(6)):
                store.record(src, TGT, index)
            store.record_exists(SRC, TGT, True)
            assert export_warm_pack(store, pack) == 7
        header = json.loads(open(pack, encoding="utf-8").readline())
        assert header == {"format": "repro-warm-pack", "version": 1}
        with TieredHomStore(str(tmp_path / "b"), shards=4) as cold:
            assert import_warm_pack(cold, pack) == 7
            for index, src in enumerate(_sources(6)):
                assert cold.lookup(src, TGT) == index
            assert cold.lookup_exists(SRC, TGT) is True

    def test_warm_pack_limit_is_newest_first(self, tmp_path):
        pack = str(tmp_path / "pack.jsonl")
        sources = _sources(6)
        with TieredHomStore(str(tmp_path / "a"), shards=1) as store:
            for index, src in enumerate(sources):
                store.record(src, TGT, index)
            assert export_warm_pack(store, pack, limit=2) == 2
        with TieredHomStore(str(tmp_path / "b"), shards=1) as cold:
            import_warm_pack(cold, pack)
            assert cold.lookup(sources[-1], TGT) == 5
            assert cold.lookup(sources[-2], TGT) == 4
            assert cold.lookup(sources[0], TGT) is None

    def test_import_refuses_foreign_file(self, tmp_path):
        alien = tmp_path / "not-a-pack.jsonl"
        alien.write_text('{"something": "else"}\n')
        with TieredHomStore(str(tmp_path / "a"), shards=1) as store:
            with pytest.raises(ReproError, match="warm pack"):
                import_warm_pack(store, str(alien))

    def test_cli_merge_compact_warm_pack(self, tmp_path, capsys):
        scenario = tmp_path / "scenario.jsonl"
        out = tmp_path / "out.jsonl"
        cache_a = tmp_path / "a.sqlite"
        cache_b = tmp_path / "b.sqlite"
        merged = tmp_path / "merged"
        pack = tmp_path / "pack.jsonl"

        assert main(["batch", "gen", "--kind", "mixed", "--count", "16",
                     "--seed", "5", "--output", str(scenario)]) == 0
        for cache in (cache_a, cache_b):
            assert main(["batch", "run", "--input", str(scenario),
                         "--output", str(out), "--workers", "1",
                         "--cache", str(cache)]) == 0

        assert main(["cache", "merge", "--into", str(merged),
                     "--shards", "4", str(cache_a), str(cache_b)]) == 0
        assert "rows merged" in capsys.readouterr().out
        assert merged.is_dir()

        assert main(["cache", "compact", "--cache", str(merged)]) == 0
        assert "compacted" in capsys.readouterr().out

        assert main(["cache", "warm-pack", "--cache", str(merged),
                     "--output", str(pack), "--limit", "64"]) == 0
        assert "packed" in capsys.readouterr().out

        with open_store(str(cache_a)) as source:
            source_counts = source.counts_len()
        with open_store(str(merged)) as store:
            info = store.info()
            assert info["schema_version"] == 3
            assert info["shards"] == 4
            assert info["counts"] == source_counts  # identical runs dedup
            assert len(info["shard_files"]) == 4

    def test_cli_cache_info_json(self, tmp_path, capsys):
        path = str(tmp_path / "store")
        with TieredHomStore(path, shards=2) as store:
            store.record(SRC, TGT, 3)
        assert main(["cache", "info", "--cache", path, "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["shards"] == 2
        assert info["counts"] == 1
        assert info["memory_tier"]["capacity"] > 0
        assert [s["index"] for s in info["shard_files"]] == [0, 1]


# ----------------------------------------------------------------------
# Multi-process parity
# ----------------------------------------------------------------------
class TestWorkerParity:
    def test_bytes_identical_across_workers_and_shards(self, tmp_path):
        scenario = tmp_path / "scenario.jsonl"
        assert main(["batch", "gen", "--kind", "mixed", "--count", "24",
                     "--seed", "11", "--output", str(scenario)]) == 0

        outputs = []
        for label, extra in [
            ("plain", []),
            ("w1-s2", ["--workers", "1", "--cache",
                       str(tmp_path / "c1"), "--shards", "2"]),
            ("w3-s2", ["--workers", "3", "--chunk-size", "4", "--cache",
                       str(tmp_path / "c1"), "--shards", "2"]),
            ("w3-s5", ["--workers", "3", "--chunk-size", "4", "--cache",
                       str(tmp_path / "c2"), "--shards", "5",
                       "--memory-tier", "128"]),
        ]:
            out = tmp_path / f"out-{label}.jsonl"
            assert main(["batch", "run", "--input", str(scenario),
                         "--output", str(out)] + extra) == 0
            outputs.append(out.read_bytes())
        assert all(blob == outputs[0] for blob in outputs[1:])
