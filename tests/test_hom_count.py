"""Unit + property tests for component-factorized hom counting."""

import random

from hypothesis import given, settings, strategies as st

from repro.structures.expression import (
    PowerExpression,
    ProductExpression,
    as_expression,
    scaled_sum,
)
from repro.structures.generators import (
    clique_structure,
    cycle_structure,
    path_structure,
    random_structure,
)
from repro.structures.operations import disjoint_union
from repro.structures.schema import Schema
from repro.structures.structure import Fact, Structure, singleton
from repro.hom.count import count_homs, count_homs_connected, hom_vector
from repro.hom.search import count_homomorphisms_direct

EDGE = path_structure(["R"])
C3 = cycle_structure(3)
SCHEMA = Schema({"R": 2, "U": 1})


class TestAgainstDirectCounting:
    def test_simple_cases(self):
        assert count_homs(EDGE, C3) == 3
        assert count_homs(C3, C3) == 3
        assert count_homs(EDGE, clique_structure(3)) == 6

    def test_multi_component_source(self):
        source = disjoint_union(EDGE, EDGE)
        target = clique_structure(3)
        assert count_homs(source, target) == 6 * 6
        assert count_homs(source, target) == count_homomorphisms_direct(source, target)

    def test_isolated_vertex_counts_domain(self):
        assert count_homs(singleton(), clique_structure(4)) == 4

    def test_nullary_fact_membership(self):
        h = Structure([Fact("H", ())])
        assert count_homs(h, h) == 1
        assert count_homs(h, Structure()) == 0

    def test_empty_source(self):
        assert count_homs(Structure(), C3) == 1

    def test_cache_reuse(self):
        cache = {}
        first = count_homs(EDGE, C3, cache)
        second = count_homs(EDGE, C3, cache)
        assert first == second == 3
        assert cache  # something was stored

    def test_hom_vector(self):
        assert hom_vector([EDGE, C3], C3) == [3, 3]


class TestExpressionTargets:
    def test_sum_target(self):
        expr = scaled_sum([(2, C3), (1, EDGE)])
        # edge into 2*C3 + edge: 2*3 + 1 = 7
        assert count_homs(EDGE, expr) == 7
        assert count_homs(EDGE, expr) == count_homomorphisms_direct(
            EDGE, expr.materialize()
        )

    def test_product_target(self):
        expr = ProductExpression([as_expression(C3), as_expression(C3)])
        assert count_homs(EDGE, expr) == 9
        assert count_homs(EDGE, expr) == count_homomorphisms_direct(
            EDGE, expr.materialize()
        )

    def test_power_target(self):
        expr = PowerExpression(as_expression(C3), 3)
        assert count_homs(EDGE, expr) == 27

    def test_power_zero_unit(self):
        expr = PowerExpression(as_expression(C3), 0)
        assert count_homs(EDGE, expr) == 1
        assert count_homs(C3, expr) == 1

    def test_unit_missing_relation_gives_zero(self):
        expr = PowerExpression(as_expression(C3), 0)  # schema {R}
        s_edge = path_structure(["S"])
        assert count_homs(s_edge, expr) == 0

    def test_deep_nesting_matches_materialization(self):
        expr = PowerExpression(scaled_sum([(1, EDGE), (1, C3)]), 2)
        concrete = expr.materialize()
        for probe in (EDGE, C3, path_structure(["R", "R"])):
            assert count_homs(probe, expr) == count_homomorphisms_direct(
                probe, concrete
            ), probe

    def test_multi_component_source_into_sum(self):
        source = disjoint_union(EDGE, C3)
        expr = scaled_sum([(2, C3), (3, EDGE)])
        concrete = expr.materialize()
        assert count_homs(source, expr) == count_homomorphisms_direct(
            source, concrete
        )


@settings(max_examples=50, deadline=None)
@given(
    source_seed=st.integers(0, 10_000),
    target_seed=st.integers(0, 10_000),
    source_size=st.integers(1, 3),
    target_size=st.integers(1, 4),
)
def test_factorized_count_equals_direct(source_seed, target_seed, source_size, target_size):
    """Property: Lemma 4(5) factorization never changes the count."""
    source = random_structure(SCHEMA, source_size, 0.4, random.Random(source_seed))
    target = random_structure(SCHEMA, target_size, 0.4, random.Random(target_seed))
    assert count_homs(source, target) == count_homomorphisms_direct(source, target)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), copies=st.integers(0, 4))
def test_connected_count_scales_linearly(seed, copies):
    """Property: Lemma 4(2) — |hom(A, tB)| = t|hom(A, B)| for connected A."""
    rng = random.Random(seed)
    target = random_structure(Schema({"R": 2}), 3, 0.5, rng)
    base = count_homs_connected(C3, target)
    expr = scaled_sum([(copies, target)])
    assert count_homs_connected(C3, expr) == copies * base
