"""Unit tests for the observability core (:mod:`repro.obs`).

The metric-name schema documented in ``repro/obs/__init__.py`` is a
compatibility contract consumed by the service's ``metrics`` control
op, the batch summary and the Prometheus exposition — these tests pin
the registry semantics underneath it: log2 bucket boundaries, snapshot
composition over attached registries and collectors, cross-process
merge rules, structured log record shape, and the no-op guarantee of
spans outside a collection context.
"""

from __future__ import annotations

import io
import json

from repro.obs import (
    MetricsRegistry,
    StructuredLogger,
    collect_phases,
    merge_counter_snapshots,
    new_request_id,
    span,
)
from repro.obs.metrics import Counter, Gauge, Histogram


# ----------------------------------------------------------------------
# Histogram bucket boundaries
# ----------------------------------------------------------------------
class TestHistogram:
    def test_log2_bucket_boundaries(self):
        # v lands in the least power of two strictly greater than v:
        # 0 -> 1, 1 -> 2, 2..3 -> 4, 4..7 -> 8, 8..15 -> 16.
        h = Histogram("t")
        for value, expected in [(0, 1), (1, 2), (2, 4), (3, 4), (4, 8),
                                (7, 8), (8, 16), (15, 16), (16, 32),
                                (1023, 1024), (1024, 2048)]:
            before = h.buckets.get(expected, 0)
            h.observe(value)
            assert h.buckets[expected] == before + 1, value

    def test_floats_truncate_and_negatives_clip(self):
        h = Histogram("t")
        h.observe(3.9)      # int() -> 3 -> bucket 4
        h.observe(-5)       # clipped to 0 -> bucket 1
        assert h.buckets == {4: 1, 1: 1}
        assert h.count == 2
        assert h.sum == 3.9 - 5

    def test_snapshot_shape(self):
        h = Histogram("t")
        for v in (0, 1, 1, 6):
            h.observe(v)
        snap = h.snapshot()
        assert snap == {"count": 4, "sum": 8,
                        "buckets": {"1": 1, "2": 2, "8": 1}}

    def test_reset(self):
        h = Histogram("t")
        h.observe(3)
        h.reset()
        assert h.count == 0 and h.sum == 0 and h.buckets == {}


# ----------------------------------------------------------------------
# Registry composition
# ----------------------------------------------------------------------
class TestRegistry:
    def test_create_or_return_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_walks_attached_children(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.counter("top.requests").inc(2)
        child.counter("leaf.hits").inc(5)
        parent.attach(child)
        parent.attach(child)  # idempotent
        snap = parent.snapshot()
        assert snap["top.requests"] == 2
        assert snap["leaf.hits"] == 5

    def test_gauge_callback_read_at_snapshot_time(self):
        reg = MetricsRegistry()
        backing = {"n": 1}
        reg.gauge("size", fn=lambda: backing["n"])
        assert reg.snapshot()["size"] == 1
        backing["n"] = 7
        assert reg.snapshot()["size"] == 7

    def test_collectors_feed_snapshots(self):
        reg = MetricsRegistry()
        reg.register_collector(lambda: {"layer.events": 3}, monotonic=True)
        reg.register_collector(lambda: {"layer.cached": 9}, monotonic=False)
        snap = reg.snapshot()
        assert snap["layer.events"] == 3 and snap["layer.cached"] == 9
        # counters_snapshot keeps only the monotonic slice.
        counters = reg.counters_snapshot()
        assert counters["layer.events"] == 3
        assert "layer.cached" not in counters

    def test_counters_snapshot_expands_histograms(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        h.observe(3)
        h.observe(3)
        counters = reg.counters_snapshot()
        assert counters["lat.count"] == 2
        assert counters["lat.sum"] == 6
        assert counters["lat.bucket.4"] == 2

    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("engine.memo.hits").inc(4)
        reg.gauge("service.workers").set(2)
        h = reg.histogram("service.request.latency_us")
        for v in (1, 3, 3, 900):
            h.observe(v)
        text = reg.exposition()
        assert "# TYPE engine_memo_hits counter" in text
        assert "engine_memo_hits 4" in text
        assert "# TYPE service_workers gauge" in text
        # Buckets are cumulative and close with +Inf == count.
        assert 'service_request_latency_us_bucket{le="2"} 1' in text
        assert 'service_request_latency_us_bucket{le="4"} 3' in text
        assert 'service_request_latency_us_bucket{le="1024"} 4' in text
        assert 'service_request_latency_us_bucket{le="+Inf"} 4' in text
        assert "service_request_latency_us_count 4" in text
        assert text.endswith("\n")


class TestMerge:
    def test_counters_sum_and_gauges_max(self):
        into = {"engine.memo.hits": 10, "engine.memo.entries": 40}
        merge_counter_snapshots(into, {"engine.memo.hits": 5,
                                       "engine.memo.entries": 25,
                                       "intern.cached": 7})
        assert into["engine.memo.hits"] == 15       # counter: sums
        assert into["engine.memo.entries"] == 40    # gauge suffix: max
        assert into["intern.cached"] == 7

    def test_merge_returns_target(self):
        into: dict = {}
        assert merge_counter_snapshots(into, {"a": 1}) is into


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_span_is_shared_noop_outside_collection(self):
        assert span("anything") is span("other")  # the shared _NULL

    def test_collect_phases_accumulates(self):
        with collect_phases() as phases:
            with span("parse"):
                pass
            with span("parse"):
                pass
            with span("count"):
                pass
        assert set(phases) == {"parse", "count"}
        assert phases["parse"] >= 0.0
        # Outside the context the thread is back to no-op spans.
        assert span("parse") is span("x")

    def test_nested_collections_stack(self):
        with collect_phases() as outer:
            with span("a"):
                pass
            with collect_phases() as inner:
                with span("b"):
                    pass
            with span("c"):
                pass
        assert set(outer) == {"a", "c"}
        assert set(inner) == {"b"}


# ----------------------------------------------------------------------
# Structured logs / request ids
# ----------------------------------------------------------------------
class TestStructuredLogs:
    def test_request_ids_unique_and_greppable(self):
        first, second = new_request_id(), new_request_id()
        assert first != second
        assert first.startswith("req-")
        prefix, seq = first.rsplit("-", 1)
        assert second.rsplit("-", 1)[0] == prefix  # same process prefix
        assert int(second.rsplit("-", 1)[1]) == int(seq) + 1

    def test_log_lines_are_json_with_request_id(self):
        sink = io.StringIO()
        logger = StructuredLogger(stream=sink, component="repro.test")
        request_id = new_request_id()
        logger.request(request_id, kind="hom_count", ok=True,
                       elapsed_s=0.0123, task_id="t-1",
                       phases={"parse": 0.001, "count": 0.011})
        lines = sink.getvalue().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["request_id"] == request_id
        assert record["event"] == "request"
        assert record["component"] == "repro.test"
        assert record["kind"] == "hom_count"
        assert record["ok"] is True
        assert record["id"] == "t-1"
        assert record["elapsed_ms"] == 12.3
        assert record["phases"] == {"parse": 1.0, "count": 11.0}
        assert isinstance(record["ts"], float)

    def test_none_fields_are_dropped(self):
        sink = io.StringIO()
        StructuredLogger(stream=sink).request(
            new_request_id(), kind=None, ok=False, elapsed_s=0.0)
        record = json.loads(sink.getvalue())
        assert "kind" not in record and "phases" not in record
        assert record["ok"] is False


# ----------------------------------------------------------------------
# Metric primitives
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(3)
        c.value += 1  # the documented hot-path form
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_gauge_set_wins_without_fn(self):
        g = Gauge("n")
        g.set(4)
        assert g.read() == 4
