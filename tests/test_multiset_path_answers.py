"""Interplay tests: multiset algebra on actual query answer bags.

The ♠ condition compares answer *multisets*; these tests exercise the
multiset operations on real path/CQ answers, where the paper's
definitions (union adds multiplicities, etc.) have observable
consequences.
"""

from repro.queries.evaluation import evaluate_cq, evaluate_path_query
from repro.queries.parser import parse_cq, parse_path
from repro.structures.generators import path_structure
from repro.structures.multiset import Multiset
from repro.structures.operations import disjoint_union
from repro.structures.structure import Structure


class TestAnswerBags:
    def test_answers_on_disjoint_union_add(self):
        """For a connected query body, answers on A + B are the tagged
        union of answers on A and on B — multiplicities included."""
        query = parse_cq("x, y | R(x,y)")
        left = path_structure(["R"])
        right = path_structure(["R", "R"])
        merged = disjoint_union(left, right)
        answers = evaluate_cq(query, merged)
        assert answers.total() == (
            evaluate_cq(query, left).total() + evaluate_cq(query, right).total()
        )

    def test_diamond_multiplicities_survive_union(self):
        diamond = Structure([
            ("R", ("a", "b1")), ("R", ("a", "b2")),
            ("R", ("b1", "c")), ("R", ("b2", "c")),
        ])
        word = parse_path("R.R")
        single = evaluate_path_query(word, diamond)
        assert single[("a", "c")] == 2
        # two tagged copies: multiplicities stay 2 per copy, total 4
        doubled = disjoint_union(diamond, diamond)
        both = evaluate_path_query(word, doubled)
        assert both.total() == 4
        assert sorted(both.items(), key=repr)[0][1] == 2

    def test_multiset_difference_detects_answer_changes(self):
        base = path_structure(["R", "R"])
        extended = Structure(
            list(base.facts()) + [("R", (0, 2))],
            domain=base.domain(),
        )
        word = parse_path("R")
        before = evaluate_path_query(word, base)
        after = evaluate_path_query(word, extended)
        delta = after - before
        assert delta == Multiset({(0, 2): 1})

    def test_submultiset_on_substructure(self):
        """Removing facts can only shrink the answer bag pointwise."""
        big = Structure([
            ("R", (0, 1)), ("R", (1, 2)), ("R", (0, 2)),
        ])
        small = Structure([("R", (0, 1)), ("R", (1, 2))], domain=[0, 1, 2])
        word = parse_path("R")
        assert evaluate_path_query(word, small) <= evaluate_path_query(word, big)

    def test_scaled_copies_scale_answers(self):
        from repro.structures.operations import scalar_multiple

        word = parse_path("R")
        base = path_structure(["R"])
        tripled = scalar_multiple(3, base)
        assert evaluate_path_query(word, tripled).total() == 3
