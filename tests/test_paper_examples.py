"""Every concrete example from the paper, executed.

Examples 2, 3, 13, 32, 39, 42, 54 and the data behind Figures 1 and 2.
This file is the "does the library actually reproduce the paper"
checklist; EXPERIMENTS.md points here.
"""

from repro.hom.matrix import evaluation_matrix
from repro.linalg.cone import SimplicialCone
from repro.queries.cq import cq_from_structure
from repro.queries.evaluation import evaluate_boolean, evaluate_cq
from repro.queries.parser import parse_cq, parse_ucq
from repro.structures.generators import loop_structure
from repro.structures.structure import Structure
from repro.core.decision import decide_bag_determinacy
from repro.core.pathdet import decide_path_determinacy
from repro.ucq.analysis import linear_certificate


def _figure1_structures():
    """Connected w1, w2 realizing Figure 1 exactly.

    The figure shows two connected structures over a red (R) and a
    green (G) binary relation, where "w2 has three additional green
    edges compared to w1", with evaluation matrix
    ``M_W = [[2, 4], [1, 2]]`` — singular.

    The pair below (found by automated search over small structures)
    matches both the caption and the matrix:

    * shared red part:  R(0,1), R(1,1), R(1,2), R(2,2)
    * w1 greens:        G(2,0), G(2,2)
    * w2 = w1 plus the three extra greens G(0,0), G(0,1), G(2,1)

    |hom(w1,w1)| = 2, |hom(w1,w2)| = 4, |hom(w2,w1)| = 1,
    |hom(w2,w2)| = 2 — the published matrix, verified below.
    """
    red = [("R", (0, 1)), ("R", (1, 1)), ("R", (1, 2)), ("R", (2, 2))]
    w1 = Structure(red + [("G", (2, 0)), ("G", (2, 2))])
    w2 = Structure(red + [
        ("G", (2, 0)), ("G", (2, 2)),
        ("G", (0, 0)), ("G", (0, 1)), ("G", (2, 1)),
    ])
    return w1, w2


class TestFigure1Example39:
    """The paper's Figure 1: 'w2 has three additional green edges
    compared to w1' and M_W = [[2,4],[1,2]] is singular.  Our pair
    matches the caption (same red part, exactly three extra green
    edges) and the published matrix exactly.
    """

    def test_matrix_is_published_one(self):
        w1, w2 = _figure1_structures()
        matrix = evaluation_matrix([w1, w2], [w1, w2])
        assert matrix.to_int_rows() == [[2, 4], [1, 2]]

    def test_matrix_singular(self):
        w1, w2 = _figure1_structures()
        matrix = evaluation_matrix([w1, w2], [w1, w2])
        assert not matrix.is_nonsingular()
        assert matrix.det() == 0

    def test_example42_not_determined_yet_lattice_blind(self):
        """Example 42: q = w1, V0 = {w2}.  Main Lemma says NOT
        determined, but every D ∈ spanN{w1, w2} satisfies
        hom(w1, D) = 2·hom(w2, D), so S = W can never witness it."""
        from repro.hom.count import count_homs
        from repro.structures.operations import sum_with_multiplicities

        w1, w2 = _figure1_structures()
        q = cq_from_structure(w1)
        v = cq_from_structure(w2)
        result = decide_bag_determinacy([v], q)
        assert result.relevant_views == (v,)  # w1 ⊆set w2
        assert not result.determined
        for a in range(3):
            for b in range(3):
                database = sum_with_multiplicities([(a, w1), (b, w2)])
                assert count_homs(w1, database) == 2 * count_homs(w2, database)

    def test_example42_witness_via_good_basis(self):
        """The Lemma 40/41 machinery escapes the blind spot."""
        w1, w2 = _figure1_structures()
        result = decide_bag_determinacy([cq_from_structure(w2)],
                                        cq_from_structure(w1))
        pair = result.witness()
        assert pair.verify().ok


class TestExample54Figure2:
    """Example 54: s1 = single vertex with red+green loops, s2 = w2;
    M_S = [[1,4],[1,2]], nonsingular; C is the cone, P the lattice."""

    def _basis(self):
        w1, w2 = _figure1_structures()
        s1 = loop_structure(["R", "G"])
        s2 = w2
        return w1, w2, s1, s2

    def test_published_matrix(self):
        w1, w2, s1, s2 = self._basis()
        matrix = evaluation_matrix([w1, w2], [s1, s2])
        assert matrix.to_int_rows() == [[1, 4], [1, 2]]
        assert matrix.is_nonsingular()

    def test_p_subset_of_cone(self):
        """Every answer vector of Σ a·s1 + b·s2 lies in C (Fig. 2)."""
        from repro.hom.count import count_homs
        from repro.structures.operations import sum_with_multiplicities

        w1, w2, s1, s2 = self._basis()
        cone = SimplicialCone(evaluation_matrix([w1, w2], [s1, s2]))
        for a in range(4):
            for b in range(4):
                database = sum_with_multiplicities([(a, s1), (b, s2)])
                point = [count_homs(w1, database), count_homs(w2, database)]
                assert cone.contains(point)

    def test_answer_vectors_match_matrix_arithmetic(self):
        from repro.hom.count import count_homs
        from repro.structures.operations import sum_with_multiplicities

        w1, w2, s1, s2 = self._basis()
        matrix = evaluation_matrix([w1, w2], [s1, s2])
        for a, b in ((1, 0), (0, 1), (2, 3)):
            database = sum_with_multiplicities([(a, s1), (b, s2)])
            expected = matrix.matvec([a, b])
            actual = [count_homs(w1, database), count_homs(w2, database)]
            assert list(expected) == actual


class TestExample2:
    """Example 2: q(x) = ∃u,y,z P(u,x),R(x,y),S(y,z);
    V = {∃u,y P(u,x),R(x,y),  ∃y,z R(x,y),S(y,z)}.
    V →set q but V ̸→bag q.  We exhibit the bag counterexample."""

    Q = parse_cq("x | P(u,x), R(x,y), S(y,z)")
    V1 = parse_cq("x | P(u,x), R(x,y)")
    V2 = parse_cq("x | R(x,y), S(y,z)")

    def test_bag_counterexample(self):
        # D : one P-pred, two R-edges, one S-continuation.
        left = Structure([
            ("P", ("u1", "x")),
            ("R", ("x", "y1")), ("R", ("x", "y2")),
            ("S", ("y1", "z")),
        ])
        # D': two P-preds, one R-edge with S-continuation.
        right = Structure([
            ("P", ("u1", "x")), ("P", ("u2", "x")),
            ("R", ("x", "y1")),
            ("S", ("y1", "z")),
        ])
        assert evaluate_cq(self.V1, left) == evaluate_cq(self.V1, right)
        assert evaluate_cq(self.V2, left) == evaluate_cq(self.V2, right)
        assert evaluate_cq(self.Q, left) != evaluate_cq(self.Q, right)


class TestExample3:
    """Example 3: V ̸→set q but V →bag q via q = v2 − v1."""

    def test_linear_certificate(self):
        v1 = parse_ucq("P(x)")
        v2 = parse_ucq("P(x) or R(x)")
        q = parse_ucq("R(x)")
        certificate = linear_certificate([v1, v2], q)
        assert certificate is not None
        assert certificate.coefficients == (-1, 1)

    def test_set_determinacy_fails(self):
        """Under set semantics v1, v2 cannot distinguish 'some R' from
        'no R' once P is present: exhibit the classic pair."""
        v1 = parse_ucq("P(x)")
        v2 = parse_ucq("P(x) or R(x)")
        q = parse_ucq("R(x)")
        with_r = Structure([("P", ("a",)), ("R", ("a",))])
        without_r = Structure([("P", ("a",))])
        # boolean set-answers of the views agree (both positive):
        assert (evaluate_boolean(v1, with_r) > 0) == (evaluate_boolean(v1, without_r) > 0)
        assert (evaluate_boolean(v2, with_r) > 0) == (evaluate_boolean(v2, without_r) > 0)
        # but q's set answers differ:
        assert (evaluate_boolean(q, with_r) > 0) != (evaluate_boolean(q, without_r) > 0)


class TestExample13:
    def test_certificate_walk(self, example13_paths):
        views, query = example13_paths
        result = decide_path_determinacy(views, query)
        assert result.determined
        walk = result.walk()
        assert walk == (
            ("A", 1), ("B", 1), ("C", 1),
            ("C", -1), ("B", -1),
            ("B", 1), ("C", 1), ("D", 1),
        )


class TestExample32:
    def test_rewriting_is_v1_cubed_over_v2(self, example32_instance):
        views, q = example32_instance
        result = decide_bag_determinacy(views, q)
        assert list(result.coefficients) == [3, -1]
        rewriting = result.rewriting()
        # q(D) = v1(D)^3 / v2(D) when v2(D) != 0
        assert rewriting.evaluate([2, 4]) == 2
