"""Unit tests for bag-semantics query evaluation."""

import pytest

from repro.errors import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import (
    answers_agree,
    evaluate_boolean,
    evaluate_cq,
    evaluate_path_boolean,
    evaluate_path_query,
)
from repro.queries.parser import parse_boolean_cq, parse_cq, parse_path, parse_ucq
from repro.structures.generators import clique_structure, cycle_structure, path_structure
from repro.structures.multiset import Multiset
from repro.structures.structure import Fact, Structure


class TestBooleanEvaluation:
    def test_count_is_hom_count(self):
        q = parse_boolean_cq("R(x,y)")
        assert evaluate_boolean(q, clique_structure(3)) == 6

    def test_zero_when_no_match(self):
        q = parse_boolean_cq("R(x,y), R(y,x)")
        assert evaluate_boolean(q, path_structure(["R"])) == 0

    def test_empty_query_answers_one(self):
        q = ConjunctiveQuery([])
        assert evaluate_boolean(q, path_structure(["R"])) == 1
        assert evaluate_boolean(q, Structure()) == 1

    def test_ucq_sums_disjuncts(self):
        # Bag semantics: Ψ(D) = Σ Φ(D), *not* max.
        u = parse_ucq("R(x,y) or R(x,y)")
        D = clique_structure(3)
        assert evaluate_boolean(u, D) == 12

    def test_nullary_queries(self):
        h = parse_boolean_cq("H()")
        with_h = Structure([Fact("H", ())])
        assert evaluate_boolean(h, with_h) == 1
        assert evaluate_boolean(h, Structure()) == 0

    def test_free_variables_rejected(self):
        q = parse_cq("x | R(x,y)")
        with pytest.raises(QueryError):
            evaluate_boolean(q, Structure())


class TestCQEvaluation:
    def test_answers_with_multiplicity(self):
        # q(x) = ∃y,z R(x,y), R(y,z): on a path a->b->c->d,
        # a has 1 grandchild-witness, b has 1.
        q = parse_cq("x | R(x,y), R(y,z)")
        answers = evaluate_cq(q, path_structure(["R", "R", "R"]))
        assert answers == Multiset({(0,): 1, (1,): 1})

    def test_multiplicity_counts_witnesses(self):
        # Two witnesses y for the same x.
        q = parse_cq("x | R(x,y)")
        D = Structure([("R", ("a", "b")), ("R", ("a", "c"))])
        assert evaluate_cq(q, D) == Multiset({("a",): 2})

    def test_boolean_query_gives_empty_tuple_bag(self):
        q = parse_boolean_cq("R(x,y)")
        answers = evaluate_cq(q, path_structure(["R"]))
        assert answers == Multiset({(): 1})

    def test_zero_answers(self):
        q = parse_cq("x | R(x,x)")
        assert evaluate_cq(q, path_structure(["R"])) == Multiset()


class TestPathEvaluation:
    def test_matches_cq_semantics(self):
        word = parse_path("R.R")
        cq = word.to_cq()
        D = clique_structure(3)
        assert evaluate_path_query(word, D) == evaluate_cq(cq, D)

    def test_epsilon_is_identity(self):
        D = path_structure(["R"])
        answers = evaluate_path_query(parse_path(""), D)
        assert answers == Multiset({(0, 0): 1, (1, 1): 1})

    def test_walk_multiplicities(self):
        # Diamond: a->b1->c, a->b2->c gives multiplicity 2 for (a, c).
        D = Structure([
            ("R", ("a", "b1")), ("R", ("a", "b2")),
            ("R", ("b1", "c")), ("R", ("b2", "c")),
        ])
        answers = evaluate_path_query(parse_path("R.R"), D)
        assert answers[("a", "c")] == 2

    def test_cycle_walks(self):
        answers = evaluate_path_query(parse_path("R.R.R"), cycle_structure(3))
        assert answers.total() == 3
        assert all(pair[0] == pair[1] for pair in answers)

    def test_boolean_total(self):
        assert evaluate_path_boolean(parse_path("R"), clique_structure(3)) == 6


class TestAnswersAgree:
    def test_boolean_agreement(self):
        q = parse_boolean_cq("R(x,y)")
        assert answers_agree(q, cycle_structure(3), path_structure(["R", "R", "R"]))

    def test_path_agreement_uses_full_bag(self):
        word = parse_path("R")
        left = path_structure(["R"])
        right = cycle_structure(1)
        # Same count (1 edge) but different answer tuples.
        assert not answers_agree(word, left, right)

    def test_cq_with_free_variables(self):
        q = parse_cq("x | R(x,y)")
        D = Structure([("R", ("a", "b"))])
        assert answers_agree(q, D, D)
