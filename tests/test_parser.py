"""Unit tests for the textual query syntax."""

import pytest

from repro.errors import ParseError
from repro.queries.parser import (
    parse_boolean_cq,
    parse_cq,
    parse_path,
    parse_ucq,
)
from repro.structures.schema import Schema


class TestParseCQ:
    def test_boolean(self):
        q = parse_cq("R(x,y), S(y,z)")
        assert q.is_boolean()
        assert len(q.atoms) == 2

    def test_free_variables(self):
        q = parse_cq("x, y | R(x,y)")
        assert q.free == ("x", "y")

    def test_whitespace_tolerance(self):
        q = parse_cq("  R( x , y ) ,  S(y,z)  ")
        assert len(q.atoms) == 2

    def test_nullary_atom(self):
        q = parse_cq("H()")
        assert q.has_nullary_atom()

    def test_schema_validation(self):
        with pytest.raises(ParseError):
            parse_cq("R(x)", schema=Schema({"R": 2}))

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("")
        with pytest.raises(ParseError):
            parse_cq("   ")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("R(x,y) S(y,z)")  # missing comma
        with pytest.raises(ParseError):
            parse_cq("R(x,,y)")

    def test_primed_names(self):
        q = parse_cq("R(x', y')")
        assert len(q.variables()) == 2

    def test_parse_boolean_rejects_free(self):
        with pytest.raises(ParseError):
            parse_boolean_cq("x | R(x,y)")


class TestParseUCQ:
    def test_or_keyword(self):
        u = parse_ucq("P(x) or R(x)")
        assert len(u.disjuncts) == 2

    def test_vee_symbol(self):
        u = parse_ucq("P(x) ∨ R(x)")
        assert len(u.disjuncts) == 2

    def test_single_disjunct(self):
        assert parse_ucq("P(x)").is_single_cq()

    def test_three_disjuncts(self):
        u = parse_ucq("P(x) or Q(x) or R(x)")
        assert len(u.disjuncts) == 3

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_ucq("")


class TestParsePath:
    def test_basic(self):
        assert parse_path("A.B.C").letters == ("A", "B", "C")

    def test_single_letter(self):
        assert parse_path("A").letters == ("A",)

    def test_epsilon_spellings(self):
        for text in ("", "ε", "eps", "epsilon", "  "):
            assert parse_path(text).is_empty()

    def test_multichar_letters(self):
        assert parse_path("Rel1.Rel2").letters == ("Rel1", "Rel2")

    def test_bad_letter_rejected(self):
        with pytest.raises(ParseError):
            parse_path("A..B")
        with pytest.raises(ParseError):
            parse_path("A.B!")
