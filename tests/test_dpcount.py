"""Property tests for the tree-decomposition DP backend (DESIGN.md §9).

Three layers of guarantees:

* **decompositions** — the greedy min-fill / min-degree decompositions
  satisfy the three invariants (vertex coverage, fact coverage,
  running intersection) on the whole random corpus, and the nice
  conversion preserves the node grammar (leaf/introduce/forget/join,
  empty leaves, empty root, child-parent bag deltas of exactly one);
* **counts** — the DP counter is bit-identical to the naive recursive
  ground truth ``count_homomorphisms_direct`` *and* to the PR 1
  backtracking engine on random structures covering constants of mixed
  types, nullary relations, isolated elements and disconnected
  sources;
* **plan selection** — the cost model picks the DP on the workloads it
  exists for (grids, long chains into dense targets) and backtracking
  on trivia, and the engine's override knob plus per-strategy stats
  behave.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError, StructureError
from repro.hom.count import count_homs
from repro.hom.decompose import (
    FORGET,
    INTRODUCE,
    JOIN,
    LEAF,
    TreeDecomposition,
    decompose,
    gaifman_graph,
    make_nice,
)
from repro.hom.dpcount import count_homomorphisms_dp
from repro.hom.engine import (
    HomEngine,
    TargetIndex,
    choose_strategy,
    count_plan,
    source_plan,
)
from repro.hom.search import count_homomorphisms_direct
from repro.structures.generators import (
    clique_structure,
    grid_structure,
    path_structure,
    random_structure,
)
from repro.structures.schema import Schema
from repro.structures.structure import Fact, Structure

# Nullary relation, mixed arities up to 3: the corpus covers the edge
# cases the counting preamble owns (0-ary facts, arity guards) plus
# hyperedge cliques in the Gaifman graph (ternary facts).
SCHEMA = Schema({"R": 2, "S": 2, "P": 1, "T": 3, "N": 0})


def _random_pair(seed: int):
    rng = random.Random(seed)
    source = random_structure(SCHEMA, rng.randint(0, 5),
                              density=rng.choice((0.1, 0.3, 0.6)), rng=rng)
    target = random_structure(SCHEMA, rng.randint(0, 5),
                              density=rng.choice((0.1, 0.3, 0.6)), rng=rng)
    return source, target


def _mixed_constant_structure():
    """Constants of different types in one structure (strings, ints,
    tuples) — the 'supports constants' clause of the DP contract."""
    return Structure(
        [("R", ("a", 1)), ("R", (1, ("t", 2))), ("S", (("t", 2), "a")),
         ("P", ("a",)), Fact("N", ())],
        domain=["a", 1, ("t", 2), "isolated"],
    )


# ----------------------------------------------------------------------
# Decomposition invariants
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 100_000),
       heuristic=st.sampled_from(["min-fill", "min-degree"]))
def test_decomposition_invariants_on_random_corpus(seed, heuristic):
    source, _ = _random_pair(seed)
    decomposition = decompose(source, heuristic=heuristic)
    decomposition.validate(source)  # raises on any violated invariant
    active = len(source.active_domain())
    assert decomposition.width <= max(0, active - 1)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_nice_decomposition_grammar(seed):
    source, _ = _random_pair(seed)
    nice = make_nice(decompose(source))
    nodes = nice.nodes
    assert nodes[-1].order == ()  # empty root: final table key is ()
    consumed = set()
    for index, node in enumerate(nodes):
        bag = frozenset(node.order)
        # Bag orders sort naturally when comparable (the interned DP
        # path: dense ints, matching the packed-key layout), by repr
        # otherwise.
        try:
            expected_order = sorted(node.order)
        except TypeError:
            expected_order = sorted(node.order, key=repr)
        assert list(node.order) == expected_order
        for child in node.children:
            assert child < index and child not in consumed
            consumed.add(child)
        if node.kind == LEAF:
            assert node.order == () and node.children == ()
        elif node.kind == INTRODUCE:
            child_bag = frozenset(nodes[node.children[0]].order)
            assert node.var in bag and bag - child_bag == {node.var}
            assert node.order[node.var_pos] == node.var
        elif node.kind == FORGET:
            child = nodes[node.children[0]]
            assert frozenset(child.order) - bag == {node.var}
            assert child.order[node.var_pos] == node.var
        else:
            assert node.kind == JOIN
            left, right = node.children
            assert nodes[left].order == nodes[right].order == node.order
    # every node except the root is consumed exactly once: a tree
    assert consumed == set(range(len(nodes) - 1))


def test_gaifman_graph_shape():
    triangle_plus = Structure([("T", ("a", "b", "c")), ("R", ("c", "d")),
                               ("P", ("e",)), Fact("N", ())],
                              domain=["a", "b", "c", "d", "e", "lonely"])
    graph = gaifman_graph(triangle_plus)
    assert graph["a"] == {"b", "c"}          # ternary fact = clique
    assert graph["d"] == {"c"}
    assert graph["e"] == set()               # unary fact: no edges
    assert "lonely" not in graph             # isolated: excluded


def test_grid_decomposition_width_is_bounded():
    # tw(3×6 grid) = 3; greedy min-fill should land on it (and must
    # never exceed it by much — that is the whole point of the DP).
    decomposition = decompose(grid_structure(3, 6, horizontal="R",
                                             vertical="S"))
    assert decomposition.width <= 4
    chain = decompose(path_structure(["R", "S"] * 6))
    assert chain.width == 1


def test_validator_rejects_broken_decompositions():
    source = Structure([("R", ("a", "b")), ("R", ("b", "c"))])
    good = decompose(source)
    good.validate(source)
    # drop a vertex
    with pytest.raises(StructureError, match="no bag"):
        TreeDecomposition([frozenset({"a", "b"})], []).validate(source)
    # cover vertices but not the R(b, c) fact
    with pytest.raises(StructureError, match="covered by no bag"):
        TreeDecomposition([frozenset({"a", "b"}), frozenset({"c"})],
                          [(0, 1)]).validate(source)
    # break running intersection: 'b' in two disconnected bags
    with pytest.raises(StructureError, match="not connected"):
        TreeDecomposition(
            [frozenset({"a", "b"}), frozenset({"c"}),
             frozenset({"b", "c"})],
            [(0, 1), (1, 2)]).validate(source)
    with pytest.raises(StructureError, match="cycle"):
        TreeDecomposition([frozenset({"a", "b"}), frozenset({"b", "c"})],
                          [(0, 1), (1, 0)]).validate(source)
    with pytest.raises(StructureError, match="heuristic"):
        decompose(source, heuristic="magic")


# ----------------------------------------------------------------------
# DP ≡ direct ≡ backtracking engine
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_dp_matches_direct_and_backtracking(seed):
    source, target = _random_pair(seed)
    truth = count_homomorphisms_direct(source, target)
    assert count_homomorphisms_dp(source, target) == truth
    plan, index = source_plan(source), TargetIndex(target)
    assert count_plan(plan, index, strategy="backtrack") == truth
    assert count_plan(plan, index, strategy="auto") == truth


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_dp_engine_end_to_end_matches_direct(seed):
    """A DP-forced engine, through the full component-factorized
    count path, against the naive ground truth."""
    source, target = _random_pair(seed)
    engine = HomEngine(strategy="dp")
    assert engine.count(source, target) == \
        count_homomorphisms_direct(source, target)


def test_dp_mixed_constants_nullary_and_isolated():
    source = _mixed_constant_structure()
    target = Structure(
        [("R", (0, 1)), ("R", (1, 0)), ("R", (1, 1)), ("S", (0, 0)),
         ("S", (1, 0)), ("P", (0,)), ("P", (1,)), Fact("N", ())],
        domain=[0, 1, 2],
    )
    truth = count_homomorphisms_direct(source, target)
    assert truth > 0  # isolated element contributes a |dom| = 3 factor
    assert count_homomorphisms_dp(source, target) == truth
    # nullary fact missing from the target: decided before any DP
    assert count_homomorphisms_dp(
        source, Structure([("R", (0, 1))], domain=[0, 1])) == 0


def test_dp_disconnected_source_without_factorization():
    """count_plan_dp takes whole structures: a disconnected source
    exercises the chained-forest decomposition directly."""
    two_parts = Structure([("R", ("a", "b")), ("R", ("b", "a")),
                           ("S", ("x", "y")), ("S", ("y", "z"))])
    target = clique_structure(3, relation="R").union(
        clique_structure(3, relation="S"))
    truth = count_homomorphisms_direct(two_parts, target)
    assert count_homomorphisms_dp(two_parts, target) == truth
    # and through the factorizing engine as well
    assert count_homs(two_parts, target, HomEngine(strategy="dp")) == truth


def test_dp_known_closed_forms():
    # paths into cliques: n·(n-1)^length proper walks
    path3 = path_structure(["R", "R", "R"])
    for n in (3, 5):
        assert count_homomorphisms_dp(path3, clique_structure(n)) == \
            n * (n - 1) ** 3
    # empty source: exactly one (empty) homomorphism
    assert count_homomorphisms_dp(Structure(), clique_structure(4)) == 1
    # single isolated vertex: |dom|
    assert count_homomorphisms_dp(Structure((), domain=["v"]),
                                  clique_structure(4)) == 4


# ----------------------------------------------------------------------
# Plan selection and the engine knob
# ----------------------------------------------------------------------
def _dense_target(size: int = 4) -> Structure:
    return Structure(
        [("R", (i, j)) for i in range(size) for j in range(size) if i != j]
        + [("S", (i, j)) for i in range(size) for j in range(size) if i != j],
        domain=range(size))


def test_auto_selection_picks_dp_on_grids_and_chains():
    index = TargetIndex(_dense_target())
    grid = grid_structure(3, 4, horizontal="R", vertical="S")
    chain = path_structure(["R", "S"] * 4)
    assert choose_strategy(source_plan(grid), index) == "dp"
    assert choose_strategy(source_plan(chain), index) == "dp"


def test_auto_selection_backtracks_on_trivia_and_existence():
    index = TargetIndex(_dense_target())
    edge = path_structure(["R"])
    assert choose_strategy(source_plan(edge), index) == "backtrack"
    grid = grid_structure(3, 4, horizontal="R", vertical="S")
    # existence probes short-circuit: always backtracking under auto
    assert choose_strategy(source_plan(grid), index,
                           first_only=True) == "backtrack"


def test_engine_strategy_knob_and_stats():
    grid = grid_structure(2, 4, horizontal="R", vertical="S")
    target = _dense_target()
    forced_dp = HomEngine(strategy="dp")
    forced_bt = HomEngine(strategy="backtrack")
    auto = HomEngine()
    expected = count_homomorphisms_direct(grid, target)
    assert forced_dp.count(grid, target) == expected
    assert forced_bt.count(grid, target) == expected
    assert auto.count(grid, target) == expected
    assert forced_dp.stats()["dp_counts"] == 1
    assert forced_dp.stats()["backtrack_counts"] == 0
    assert forced_dp.stats()["width_histogram"] == {2: 1}
    assert forced_bt.stats()["dp_counts"] == 0
    assert forced_bt.stats()["backtrack_counts"] == 1
    assert auto.stats()["dp_counts"] + auto.stats()["backtrack_counts"] == 1
    forced_dp.clear()
    assert forced_dp.stats()["dp_counts"] == 0
    assert forced_dp.stats()["width_histogram"] == {}
    assert forced_dp.strategy == "dp"  # clear() keeps the knob


def test_engine_rejects_unknown_strategy():
    with pytest.raises(ReproError, match="strategy"):
        HomEngine(strategy="quantum")
    with pytest.raises(ReproError, match="strategy"):
        count_plan(source_plan(path_structure(["R"])),
                   TargetIndex(clique_structure(3)), strategy="quantum")


def test_forced_dp_existence_probe_is_exact():
    engine = HomEngine(strategy="dp")
    triangle = Structure([("R", (0, 1)), ("R", (1, 2)), ("R", (2, 0))])
    assert engine.exists(triangle, Structure([("R", ("a", "a"))]))
    assert not engine.exists(triangle, path_structure(["R", "R"]))


def test_store_keys_are_shared_across_backends(tmp_path):
    """A count persisted by a DP engine is a store hit for a
    backtracking engine: the SQLite keys are canonical-component
    based and backend-agnostic."""
    from repro.batch.cache import SQLiteHomStore

    grid = grid_structure(2, 4, horizontal="R", vertical="S")
    target = _dense_target()
    path = str(tmp_path / "cache.sqlite")
    with SQLiteHomStore(path) as store:
        dp_engine = HomEngine(store=store, strategy="dp")
        expected = dp_engine.count(grid, target)
        dp_engine.flush_store()
    with SQLiteHomStore(path) as store:
        bt_engine = HomEngine(store=store, strategy="backtrack")
        assert bt_engine.count(grid, target) == expected
        assert bt_engine.store_hits == 1
        assert bt_engine.dp_counts == 0 and bt_engine.backtrack_counts == 0


def test_dp_plan_is_shared_across_targets():
    grid = grid_structure(2, 5, horizontal="R", vertical="S")
    plan = source_plan(grid)
    first = plan.dp_plan()
    for size in (3, 4, 5):
        count_plan(plan, TargetIndex(_dense_target(size)), strategy="dp")
    assert plan.dp_plan() is first  # one decomposition, many targets
