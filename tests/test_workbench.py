"""Tests for the view catalog workbench."""

import pytest

from repro.errors import DecisionError, UnsupportedQueryError
from repro.queries.parser import parse_boolean_cq, parse_cq
from repro.core.workbench import ViewCatalog


EDGE = parse_boolean_cq("R(x,y)")
TWO_PATH = parse_boolean_cq("R(x,y), R(y,z)")
S_EDGE = parse_boolean_cq("S(x,y)")
PRODUCT_Q = parse_boolean_cq("R(x,y), S(u,v)")


class TestDecisions:
    def test_can_answer(self):
        catalog = ViewCatalog([EDGE, S_EDGE])
        assert catalog.can_answer(PRODUCT_Q)
        assert catalog.can_answer(EDGE)
        assert not catalog.can_answer(TWO_PATH)

    def test_rewriting_roundtrip(self):
        from repro.queries.evaluation import evaluate_boolean
        from repro.structures.generators import random_structure
        from repro.structures.schema import Schema
        import random

        catalog = ViewCatalog([EDGE, S_EDGE])
        rewriting = catalog.rewriting(PRODUCT_Q)
        database = random_structure(Schema({"R": 2, "S": 2}), 4, 0.5,
                                    random.Random(8))
        assert rewriting.answer_on(database) == evaluate_boolean(PRODUCT_Q, database)

    def test_rewriting_unanswerable_raises(self):
        catalog = ViewCatalog([EDGE])
        with pytest.raises(DecisionError):
            catalog.rewriting(TWO_PATH)

    def test_decisions_cached(self):
        catalog = ViewCatalog([EDGE])
        first = catalog.decide(PRODUCT_Q)
        second = catalog.decide(PRODUCT_Q)
        assert first is second

    def test_invalid_views_rejected_up_front(self):
        with pytest.raises(UnsupportedQueryError):
            ViewCatalog([parse_cq("x | R(x,y)")])


class TestWorkloadAnalysis:
    def test_partition(self):
        catalog = ViewCatalog([EDGE, S_EDGE])
        answerable, unanswerable = catalog.partition_workload(
            [EDGE, TWO_PATH, PRODUCT_Q]
        )
        assert answerable == [EDGE, PRODUCT_Q]
        assert unanswerable == [TWO_PATH]

    def test_coverage_report(self):
        catalog = ViewCatalog([EDGE, S_EDGE])
        report = catalog.coverage_report([EDGE, TWO_PATH, PRODUCT_Q])
        assert report["answerable"] == 2
        assert report["unanswerable"] == 1
        assert abs(report["coverage"] - 2 / 3) < 1e-9

    def test_coverage_of_empty_workload(self):
        assert ViewCatalog([EDGE]).coverage_report([])["coverage"] == 1.0

    def test_missing_views_hint_names_blind_component(self):
        catalog = ViewCatalog([EDGE])
        hints = catalog.missing_views_hint(TWO_PATH)
        assert hints
        assert any("unconstrained" in hint for hint in hints)

    def test_missing_views_hint_flags_irrelevant_views(self):
        catalog = ViewCatalog([S_EDGE])
        hints = catalog.missing_views_hint(TWO_PATH)
        assert any("irrelevant" in hint for hint in hints)

    def test_no_hints_when_answerable(self):
        catalog = ViewCatalog([EDGE])
        assert catalog.missing_views_hint(EDGE) == []


class TestCatalogEvolution:
    def test_with_view_is_monotone(self):
        small = ViewCatalog([EDGE])
        assert not small.can_answer(TWO_PATH)
        bigger = small.with_view(TWO_PATH)
        assert bigger.can_answer(TWO_PATH)
        assert bigger.can_answer(EDGE)  # old capability retained

    def test_minimal_subcatalog(self):
        catalog = ViewCatalog([EDGE, S_EDGE, TWO_PATH])
        minimal = catalog.minimal_subcatalog([PRODUCT_Q])
        assert minimal is not None
        assert len(minimal) == 2
        assert minimal.can_answer(PRODUCT_Q)

    def test_minimal_subcatalog_none_when_uncoverable(self):
        catalog = ViewCatalog([EDGE])
        assert catalog.minimal_subcatalog([TWO_PATH]) is None

    def test_repr(self):
        catalog = ViewCatalog([EDGE])
        catalog.decide(EDGE)
        assert "1 views" in repr(catalog)
        assert "1 decided" in repr(catalog)
