"""Smoke tests: every example script must run clean and say what it
promises.  Keeps deliverable (b) from rotting."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "DETERMINED" in out
        assert "all conditions (A), (B), (B0) hold: True" in out
        assert "MISMATCH" not in out

    def test_path_query_rewriting(self):
        out = _run("path_query_rewriting.py")
        assert "reconstructed M_q equals the true M_q: True" in out
        assert "agree: True" in out

    def test_view_selection(self):
        out = _run("view_selection.py")
        assert "minimal determining view set" in out

    def test_hilbert_gallery(self):
        out = _run("hilbert_gallery.py")
        assert "Pythagoras" in out
        assert "does NOT bag-determine" in out
        assert "no counterexample" in out  # the unsolvable instance

    def test_paper_gallery(self):
        out = _run("paper_gallery.py")
        assert "M_S = [[1, 4], [1, 2]]" in out
        assert "determined: True; coefficients (Fraction(3, 1), Fraction(-1, 1))" in out

    def test_witness_deep_dive(self):
        out = _run("witness_deep_dive.py")
        assert "ALL CONDITIONS: True" in out
        assert "nonsingular" in out
