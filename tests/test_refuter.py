"""Unit tests for the randomized/exhaustive refuter."""

import random

from repro.queries.cq import cq_from_structure
from repro.queries.parser import parse_boolean_cq
from repro.structures.generators import cycle_structure
from repro.core.refuter import (
    default_blocks,
    search_exhaustive_counterexample,
    search_lattice_counterexample,
)


class TestLatticeSearch:
    def test_finds_counterexample_for_undetermined(self):
        # q = triangle, V = {hexagon}: independent basis directions, so
        # pure component sums already separate them.
        q = cq_from_structure(cycle_structure(3))
        v = cq_from_structure(cycle_structure(6))
        refutation = search_lattice_counterexample([v], q, max_multiplicity=2)
        assert refutation is not None
        assert refutation.ok
        # verified answers carried along
        assert refutation.query_answers[0] != refutation.query_answers[1]
        for left, right in refutation.view_answers:
            assert left == right

    def test_none_for_determined_instance(self):
        q = parse_boolean_cq("R(x,y)")
        refutation = search_lattice_counterexample([q], q, max_multiplicity=3)
        assert refutation is None

    def test_respects_example42_blindspot(self):
        """Example 42: with S = W the lattice cannot separate q = w1
        from V = {w2} when hom-counts are proportional on all of
        spanN(W).  The triangle/hexagon pair does NOT have this
        property, but edge/2-path does: |hom(edge, D)| counts edges and
        on sums of edges and 2-paths the view (edge+edge component
        structure)… — here we simply check the search is honest: it
        returns None rather than a bogus pair when the blocks can't
        separate."""
        q = parse_boolean_cq("U(x)")
        v = parse_boolean_cq("U(x), U(y)")  # v(D) = q(D)^2: determined
        refutation = search_lattice_counterexample([v], q, max_multiplicity=4)
        assert refutation is None

    def test_extra_random_blocks(self):
        q = cq_from_structure(cycle_structure(3))
        v = cq_from_structure(cycle_structure(4))
        refutation = search_lattice_counterexample(
            [v], q, max_multiplicity=2, extra_random_blocks=2,
            rng=random.Random(5),
        )
        assert refutation is not None and refutation.ok

    def test_default_blocks_deduplicated(self):
        q = parse_boolean_cq("R(x,y), R(u,v)")
        blocks = default_blocks([q], parse_boolean_cq("R(x,y)"))
        assert len(blocks) == 1  # one edge class


class TestExhaustiveSearch:
    def test_unary_schema_counterexample(self):
        # q = U(x): count of U-elements; view = U(x),U(y) = count².
        # Determined -> no counterexample below any bound.
        q = parse_boolean_cq("U(x)")
        v = parse_boolean_cq("U(x), U(y)")
        assert search_exhaustive_counterexample([v], q, max_size=3) is None

    def test_finds_tiny_counterexample(self):
        # No views at all: any two structures with different q answers.
        q = parse_boolean_cq("U(x)")
        refutation = search_exhaustive_counterexample([], q, max_size=1)
        assert refutation is not None and refutation.ok

    def test_agrees_with_decider_on_tiny_instances(self):
        """Exhaustive-search soundness: whenever it returns a pair, the
        decider must have said 'not determined'."""
        from repro.core.decision import decide_bag_determinacy

        q = parse_boolean_cq("U(x), U(y)")
        views = [parse_boolean_cq("U(x)")]
        result = decide_bag_determinacy(views, q)
        found = search_exhaustive_counterexample(views, q, max_size=2)
        assert result.determined == (found is None)
