"""HomEngine cache behaviour: LRU eviction and persistent-store hooks.

The eviction paths were previously untested; they matter because batch
workloads run engines for hours and the bounds are what keeps memory
flat.  Observability is through ``stats()`` and the hit/miss counters —
the tests never reach into the OrderedDicts directly.
"""

from __future__ import annotations

from repro.hom.engine import HomEngine
from repro.hom.search import count_homomorphisms_direct
from repro.structures.generators import (
    clique_structure,
    cycle_structure,
    path_structure,
)

PATHS = [path_structure(["R"] * n) for n in (1, 2, 3)]
TARGET = clique_structure(4)


class TestCountLRU:
    def test_memo_is_bounded(self):
        engine = HomEngine(max_counts=2)
        for source in PATHS:
            engine.count_connected_leaf(source, TARGET)
        assert engine.stats()["cached_counts"] == 2
        assert engine.misses == 3
        assert engine.hits == 0

    def test_least_recently_used_is_evicted(self):
        engine = HomEngine(max_counts=2)
        first, second, third = PATHS
        engine.count_connected_leaf(first, TARGET)
        engine.count_connected_leaf(second, TARGET)
        engine.count_connected_leaf(first, TARGET)   # refresh first
        assert engine.hits == 1
        engine.count_connected_leaf(third, TARGET)   # evicts second
        engine.count_connected_leaf(first, TARGET)   # still cached
        assert engine.hits == 2
        engine.count_connected_leaf(second, TARGET)  # must recompute
        assert engine.misses == 4

    def test_eviction_does_not_change_counts(self):
        engine = HomEngine(max_counts=1)
        for _ in range(2):
            for source in PATHS:
                assert engine.count_connected_leaf(source, TARGET) == \
                    count_homomorphisms_direct(source, TARGET)

    def test_isomorphic_components_share_one_entry(self):
        engine = HomEngine(max_counts=8)
        base = cycle_structure(3)
        renamed = base.rename({c: ("copy", c) for c in base.domain()})
        engine.count_connected_leaf(base, TARGET)
        engine.count_connected_leaf(renamed, TARGET)
        assert engine.hits == 1
        assert engine.stats()["cached_counts"] == 1


class TestTargetLRU:
    def test_compiled_targets_are_bounded(self):
        engine = HomEngine(max_targets=2)
        for size in (3, 4, 5):
            engine.target_index(clique_structure(size))
        assert engine.stats()["compiled_targets"] == 2

    def test_recently_used_target_survives(self):
        engine = HomEngine(max_targets=2)
        small = clique_structure(3)
        first_index = engine.target_index(small)
        engine.target_index(clique_structure(4))
        engine.target_index(small)                   # refresh
        engine.target_index(clique_structure(5))     # evicts clique(4)
        assert engine.target_index(small) is first_index


class TestExistsLRU:
    def test_exists_cache_is_bounded_by_max_counts(self):
        engine = HomEngine(max_counts=2)
        for source in PATHS:
            engine.exists(source, TARGET)
        # Third insert evicted the first; nothing blows up and verdicts
        # stay correct after recomputation.
        assert engine.exists(PATHS[0], TARGET) is True


class TestCanonicalKeys:
    def test_memo_stays_bounded_across_many_classes(self):
        engine = HomEngine(max_counts=3)
        for n in range(3, 9):
            engine.count_connected_leaf(cycle_structure(n), TARGET)
        # Distinct iso classes churn through the bounded memo; no
        # per-engine representative table grows with them, and the
        # shared canonical layer reports its work through stats().
        assert engine.stats()["cached_counts"] <= 3
        assert engine.stats()["canonical"]["keys"] >= 6

    def test_seed_count_key_matches_computed_key(self):
        from repro.structures.canonical import canonical_key

        base = cycle_structure(3)
        renamed = base.rename({c: ("warm", c) for c in base.domain()})
        truth = count_homomorphisms_direct(base, TARGET)
        engine = HomEngine()
        engine.seed_count_key(canonical_key(base), TARGET, truth)
        # A rename of the seeded component is a pure memo hit.
        assert engine.count_connected_leaf(renamed, TARGET) == truth
        assert engine.hits == 1 and engine.misses == 0


class DictStore:
    """Minimal in-memory implementation of the engine store protocol."""

    def __init__(self):
        self.counts = {}
        self.exists = {}
        self.flushes = 0

    def lookup(self, component, leaf):
        return self.counts.get((component, leaf))

    def record(self, component, leaf, value):
        self.counts[(component, leaf)] = value

    def lookup_exists(self, source, target):
        return self.exists.get((source, target))

    def record_exists(self, source, target, value):
        self.exists[(source, target)] = value

    def flush(self):
        self.flushes += 1


class TestStoreHooks:
    def test_counts_flow_through_store(self):
        store = DictStore()
        first = HomEngine(store=store)
        truth = first.count_connected_leaf(PATHS[2], TARGET)
        assert first.store_misses == 1
        assert store.counts  # persisted

        second = HomEngine(store=store)
        assert second.count_connected_leaf(PATHS[2], TARGET) == truth
        assert second.store_hits == 1
        assert second.stats()["store_hits"] == 1

    def test_exists_flows_through_store(self):
        store = DictStore()
        first = HomEngine(store=store)
        verdict = first.exists(PATHS[0], TARGET)
        second = HomEngine(store=store)
        assert second.exists(PATHS[0], TARGET) is verdict
        assert second.store_hits == 1

    def test_memo_hit_skips_store(self):
        store = DictStore()
        engine = HomEngine(store=store)
        engine.count_connected_leaf(PATHS[1], TARGET)
        engine.count_connected_leaf(PATHS[1], TARGET)
        assert engine.store_misses == 1  # only the cold call consulted it

    def test_attach_detach_and_flush(self):
        store = DictStore()
        engine = HomEngine()
        engine.flush_store()  # no store: a no-op
        engine.attach_store(store)
        engine.count_connected_leaf(PATHS[0], TARGET)
        engine.flush_store()
        assert store.flushes == 1
        engine.detach_store()
        assert engine.store is None

    def test_clear_keeps_store_contents(self):
        store = DictStore()
        engine = HomEngine(store=store)
        engine.count_connected_leaf(PATHS[0], TARGET)
        engine.clear()
        assert store.counts
        assert engine.store is store
        assert engine.store_hits == 0

    def test_seed_count_prepopulates_memo(self):
        engine = HomEngine()
        truth = count_homomorphisms_direct(PATHS[1], TARGET)
        engine.seed_count(PATHS[1], TARGET, truth)
        assert engine.count_connected_leaf(PATHS[1], TARGET) == truth
        assert engine.hits == 1
        assert engine.misses == 0
