"""Unit tests for the simplicial cone (Definitions 51/52, Corollary 8,
Lemmas 55/57)."""

from fractions import Fraction

import pytest

from repro.errors import LinalgError
from repro.linalg.cone import SimplicialCone, perturb
from repro.linalg.matrix import QMatrix


EXAMPLE_54 = QMatrix([[1, 4], [1, 2]])  # the paper's Figure 2 matrix


class TestConstruction:
    def test_singular_matrix_rejected(self):
        with pytest.raises(LinalgError):
            SimplicialCone(QMatrix([[2, 4], [1, 2]]))  # Figure 1 matrix

    def test_non_square_rejected(self):
        with pytest.raises(LinalgError):
            SimplicialCone(QMatrix([[1, 2, 3], [4, 5, 6]]))


class TestMembership:
    def test_columns_are_in_cone(self):
        cone = SimplicialCone(EXAMPLE_54)
        for j in range(2):
            assert cone.contains(EXAMPLE_54.column(j))

    def test_negative_combination_outside(self):
        cone = SimplicialCone(EXAMPLE_54)
        outside = [-1, -1]
        assert not cone.contains(outside)

    def test_boundary_not_strict(self):
        cone = SimplicialCone(EXAMPLE_54)
        ray = EXAMPLE_54.column(0)
        assert cone.contains(ray)
        assert not cone.strictly_contains(ray)

    def test_coefficients_recover(self):
        cone = SimplicialCone(EXAMPLE_54)
        point = EXAMPLE_54.matvec([2, 3])
        assert cone.coefficients(point) == (Fraction(2), Fraction(3))


class TestCorollary8:
    def test_interior_point_is_interior_and_rational(self):
        cone = SimplicialCone(EXAMPLE_54)
        p = cone.interior_point()
        assert cone.strictly_contains(p)
        assert all(isinstance(v, Fraction) for v in p)


class TestLemma55:
    def test_lattice_scaling(self):
        cone = SimplicialCone(EXAMPLE_54)
        point = EXAMPLE_54.matvec([Fraction(1, 2), Fraction(1, 3)])
        scale, scaled_alpha = cone.lattice_scaling(point)
        assert scale == 6
        assert all(v.denominator == 1 for v in scaled_alpha)
        # c·u = M(c·α) stays exact
        assert cone.matrix.matvec(scaled_alpha) == tuple(scale * v for v in point)

    def test_scaling_outside_cone_rejected(self):
        cone = SimplicialCone(EXAMPLE_54)
        with pytest.raises(LinalgError):
            cone.lattice_scaling([-1, -1])


class TestLemma57:
    def test_perturbation_stays_in_cone(self):
        cone = SimplicialCone(EXAMPLE_54)
        center = cone.interior_point()
        direction = (1, -2)
        t = cone.perturbation_parameter(direction, center)
        assert t != 1
        moved = perturb(t, direction, center)
        assert cone.contains(moved)
        assert moved != tuple(center)

    def test_perturbation_requires_interior_center(self):
        cone = SimplicialCone(EXAMPLE_54)
        boundary = EXAMPLE_54.column(0)
        with pytest.raises(LinalgError):
            cone.perturbation_parameter((1, 0), boundary)

    def test_perturb_with_negative_exponents_is_rational(self):
        moved = perturb(Fraction(3, 2), (-1, 2), [2, 3])
        assert moved == (Fraction(4, 3), Fraction(27, 4))

    def test_perturb_nonpositive_t(self):
        assert perturb(Fraction(0), (1,), [1]) is None
        assert perturb(Fraction(-1), (1,), [1]) is None

    def test_perturb_non_integer_direction_rejected(self):
        with pytest.raises(LinalgError):
            perturb(Fraction(3, 2), (Fraction(1, 2),), [1])

    def test_zero_direction_moves_nothing(self):
        # ⟨z,q⟩ ≠ 0 guarantees z ≠ 0 in real runs, but the primitive
        # should still behave: t^0 ∘ p = p.
        assert perturb(Fraction(3, 2), (0, 0), [2, 3]) == (Fraction(2), Fraction(3))
