"""Additional UCQ-layer tests: certificate algebra, reduction scaling,
and interplay between the certificate and the reduction."""

from repro.queries.evaluation import evaluate_boolean
from repro.queries.parser import parse_boolean_cq, parse_ucq
from repro.queries.ucq import UnionOfBooleanCQs, as_ucq
from repro.structures.structure import Structure
from repro.ucq.analysis import linear_certificate, search_reduction_counterexample
from repro.ucq.hilbert import DiophantineInstance, Monomial
from repro.ucq.reduction import build_reduction


class TestLinearCertificateAlgebra:
    def test_single_view_identity(self):
        q = parse_ucq("P(x)")
        certificate = linear_certificate([q], q)
        assert certificate is not None
        assert certificate.coefficients == (1,)

    def test_scaled_view(self):
        # v = q ∨ q answers 2·q(D): certificate coefficient 1/2.
        q = parse_ucq("P(x)")
        doubled = UnionOfBooleanCQs(list(q.disjuncts) * 2)
        certificate = linear_certificate([doubled], q)
        assert certificate is not None
        from fractions import Fraction

        assert certificate.coefficients == (Fraction(1, 2),)
        assert certificate.evaluate([10]) == 5

    def test_three_term_telescoping(self):
        # q = (a∨b∨c) − (a∨b) of the views {a∨b∨c, a∨b}.
        abc = parse_ucq("A(x) or B(x) or C(x)")
        ab = parse_ucq("A(x) or B(x)")
        c = parse_ucq("C(x)")
        certificate = linear_certificate([abc, ab], c)
        assert certificate is not None
        assert certificate.coefficients == (1, -1)

    def test_isomorphic_disjuncts_identified(self):
        # P(x) and P(y) are the same query up to renaming: the
        # certificate machinery must treat them as one class.
        left = parse_ucq("P(x)")
        right = parse_ucq("P(y)")
        certificate = linear_certificate([left], right)
        assert certificate is not None
        assert certificate.coefficients == (1,)

    def test_certificate_answers_on_structures(self):
        abc = parse_ucq("A(x) or B(x) or C(x)")
        ab = parse_ucq("A(x) or B(x)")
        c = parse_ucq("C(x)")
        certificate = linear_certificate([abc, ab], c)
        database = Structure([("A", ("1",)), ("C", ("2",)), ("C", ("3",))])
        assert certificate.answer_on(database) == evaluate_boolean(c, database)

    def test_as_ucq_roundtrip(self):
        q = parse_boolean_cq("P(x)")
        u = as_ucq(q)
        assert u.is_single_cq()
        assert as_ucq(u) is u


class TestReductionScaling:
    def test_disjunct_count_tracks_coefficients(self):
        instance = DiophantineInstance([
            Monomial(7, {"x": 1}),
            Monomial(-5, {"y": 2}),
        ])
        reduction = build_reduction(instance)
        assert len(reduction.view_polynomial.disjuncts) == 12

    def test_high_degree_monomials(self):
        instance = DiophantineInstance([
            Monomial(1, {"x": 4}),
            Monomial(-1, {"y": 4}),
        ])
        reduction = build_reduction(instance)
        # Each disjunct of Ψ_P has 4 X-atoms plus the flag.
        positive = reduction.view_polynomial.disjuncts[0]
        assert len(positive.atoms) == 5

    def test_multi_variable_monomial(self):
        instance = DiophantineInstance([
            Monomial(1, {"x": 1, "y": 2}),
            Monomial(-1, {"z": 1}),
        ])
        reduction = build_reduction(instance)
        witness = search_reduction_counterexample(reduction, 3)
        # x·y² = z has solutions, e.g. x=1, y=1, z=1.
        assert witness is not None
        assert witness.ok

    def test_purely_positive_instance(self):
        # x + 1 = 0 has no natural solution; Ψ_N is empty.
        instance = DiophantineInstance([
            Monomial(1, {"x": 1}), Monomial(1, {}),
        ])
        reduction = build_reduction(instance)
        assert search_reduction_counterexample(reduction, 5) is None

    def test_zero_constant_instance_always_solvable(self):
        # Σ = {x - x}: 0 = 0 for every x... encoded as two monomials.
        instance = DiophantineInstance([
            Monomial(1, {"x": 1}), Monomial(-1, {"x": 1}),
        ])
        reduction = build_reduction(instance)
        witness = search_reduction_counterexample(reduction, 1)
        assert witness is not None
