"""Property tests for the good-basis construction on random instances.

For random component bases built the way the decider builds them (from
V ∪ {q}), the construction must always deliver Definition 38's two
promises: a nonsingular evaluation matrix and decency against the
irrelevant views — and the Observation 45 radix separation must hold.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.hom.count import count_homs
from repro.queries.cq import cq_from_structure
from repro.structures.generators import cycle_structure, path_structure
from repro.structures.operations import sum_with_multiplicities
from repro.core.basis import ComponentBasis
from repro.core.goodbasis import construct_good_basis

POOL = [
    path_structure(["R"]),
    path_structure(["R", "R"]),
    path_structure(["S"]),
    cycle_structure(3),
]


def _instance(seed: int):
    rng = random.Random(seed)
    view_pieces = [(rng.randint(1, 2), rng.choice(POOL))
                   for _ in range(rng.randint(1, 2))]
    view = cq_from_structure(sum_with_multiplicities(view_pieces))
    query_pieces = view_pieces + [(1, rng.choice(POOL))]
    query = cq_from_structure(sum_with_multiplicities(query_pieces))
    return view, query


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_good_basis_contract(seed):
    view, query = _instance(seed)
    # query contains the view's components, so q ⊆set view holds and
    # the basis is exactly Definition 27's.
    basis = ComponentBasis.from_queries([view, query])
    good = construct_good_basis(basis.components, query,
                                rng=random.Random(seed))
    # Definition 38 (nonsingular)
    assert good.matrix.is_nonsingular()
    # Observation 45 (radix merge separates)
    assert len(set(good.merged_counts)) == len(good.merged_counts)
    # the matrix really is the hom-count matrix
    for i, w in enumerate(good.components):
        for j, s in enumerate(good.structures):
            assert good.matrix.entry(i, j) == count_homs(w, s)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_good_basis_decent_against_foreign_views(seed):
    view, query = _instance(seed)
    basis = ComponentBasis.from_queries([view, query])
    foreign = cq_from_structure(path_structure(["T"]))  # q ⊄set foreign
    good = construct_good_basis(
        basis.components, query, irrelevant_views=[foreign],
        rng=random.Random(seed),
    )
    for s in good.structures:
        assert count_homs(foreign.frozen_body(), s) == 0
