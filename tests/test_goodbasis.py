"""Unit tests for the Lemma 40 good-basis construction."""

import random

import pytest

from repro.errors import DecisionError
from repro.hom.count import count_homs
from repro.queries.cq import cq_from_structure
from repro.queries.parser import parse_boolean_cq
from repro.structures.generators import cycle_structure, path_structure
from repro.structures.schema import Schema
from repro.core.basis import ComponentBasis
from repro.core.goodbasis import construct_good_basis, find_distinguishers


EDGE = path_structure(["R"])
PATH2 = path_structure(["R", "R"])
C3 = cycle_structure(3)
AMBIENT = Schema({"R": 2, "S": 2})


class TestStep1Distinguishers:
    def test_distinguishes_every_pair(self):
        components = [EDGE, PATH2, C3]
        chosen = find_distinguishers(components, AMBIENT,
                                     rng=random.Random(1))
        for i in range(len(components)):
            for j in range(i + 1, len(components)):
                assert any(
                    count_homs(components[i], s) != count_homs(components[j], s)
                    for s in chosen
                ), (i, j)

    def test_single_component_gets_nonempty_set(self):
        chosen = find_distinguishers([EDGE], AMBIENT, rng=random.Random(1))
        assert len(chosen) >= 1


class TestFullConstruction:
    def _build(self, structures, query_structure, irrelevant=()):
        queries = [cq_from_structure(s) for s in structures]
        query = cq_from_structure(query_structure)
        basis = ComponentBasis.from_queries(queries + [query])
        return basis, construct_good_basis(
            basis.components, query,
            irrelevant_views=list(irrelevant),
            rng=random.Random(7),
        )

    def test_matrix_nonsingular(self):
        basis, good = self._build([EDGE, PATH2], C3)
        assert good.matrix.is_nonsingular()
        assert good.dimension == basis.dimension

    def test_merged_counts_pairwise_distinct(self):
        # Observation 45.
        _, good = self._build([EDGE, PATH2], C3)
        assert len(set(good.merged_counts)) == len(good.merged_counts)

    def test_radix_exceeds_step1_entries(self):
        _, good = self._build([EDGE, PATH2], C3)
        for w in good.components:
            for s in good.distinguishers:
                assert count_homs(w, s) < good.radix

    def test_matrix_matches_symbolic_counts(self):
        basis, good = self._build([EDGE, PATH2], C3)
        for i, w in enumerate(good.components):
            for j, s in enumerate(good.structures):
                assert good.matrix.entry(i, j) == count_homs(w, s)

    def test_decency_enforced(self):
        # irrelevant view over S never embeds into R-only structures x q.
        irrelevant = parse_boolean_cq("S(x,y)")
        basis, good = self._build([EDGE], PATH2, irrelevant=[irrelevant])
        for s in good.structures:
            assert count_homs(irrelevant.frozen_body(), s) == 0

    def test_empty_components_rejected(self):
        query = cq_from_structure(EDGE)
        with pytest.raises(DecisionError):
            construct_good_basis([], query)

    def test_component_without_hom_into_query_rejected(self):
        """Step 4 precondition: every component must map into q
        (Definition 27 guarantees it; outside callers might not)."""
        query = cq_from_structure(cycle_structure(5))
        with pytest.raises(DecisionError):
            construct_good_basis([cycle_structure(3)], query)

    def test_vandermonde_shape(self):
        """Column j of M_{S^(3)} x q is (merged^j count) * w(q):
        check rows are geometric progressions scaled by w(q)."""
        _, good = self._build([EDGE, PATH2], C3)
        k = good.dimension
        for i in range(k):
            a = good.merged_counts[i]
            first = good.matrix.entry(i, 0)
            for j in range(k):
                assert good.matrix.entry(i, j) == first * a ** j
