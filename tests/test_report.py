"""Tests for the markdown report generator."""

import random

from repro.queries.parser import parse_boolean_cq
from repro.core.report import render_report


class TestDeterminedReport:
    def test_contains_rewriting_and_roundtrip_table(self):
        q = parse_boolean_cq("R(x,y), R(u,v)")
        v = parse_boolean_cq("R(x,y)")
        text = render_report([v], q, rng=random.Random(1))
        assert "Verdict: DETERMINED" in text
        assert "Monomial rewriting" in text
        assert "| database | from views | direct | match |" in text
        assert "**NO**" not in text  # every round trip matched

    def test_vectors_listed(self):
        q = parse_boolean_cq("R(x,y)")
        text = render_report([q], q, rng=random.Random(2))
        assert "`q⃗` = [1]" in text
        assert "component basis size `k`: 1" in text

    def test_sample_databases_zero(self):
        q = parse_boolean_cq("R(x,y)")
        text = render_report([q], q, sample_databases=0)
        assert "Round trip" not in text


class TestRefutedReport:
    def test_contains_witness_table(self):
        q = parse_boolean_cq("R(x,y)")
        v = parse_boolean_cq("R(x,y), R(y,z)")
        text = render_report([v], q, rng=random.Random(3))
        assert "Verdict: NOT DETERMINED" in text
        assert "differs (A) ✓" in text
        assert "All conditions hold: **True**" in text
        assert "**FAIL**" not in text

    def test_relevant_and_irrelevant_views_both_tabled(self):
        q = parse_boolean_cq("R(x,y)")
        relevant = parse_boolean_cq("R(x,y), R(u,v)")  # q ⊆set v, but
        # the instance is undetermined only if span misses; use an
        # independent relevant view:
        from repro.queries.cq import cq_from_structure
        from repro.structures.generators import cycle_structure

        q = cq_from_structure(cycle_structure(3))
        relevant = cq_from_structure(cycle_structure(6))
        irrelevant = parse_boolean_cq("S(x,y)")
        text = render_report([relevant, irrelevant], q, rng=random.Random(4))
        assert "equal (B) ✓" in text
        assert "both zero (B0) ✓" in text


def test_cli_report_subcommand(capsys):
    from repro.cli import main

    code = main(["report", "--view", "R(x,y)", "--query", "R(x,y), R(u,v)"])
    out = capsys.readouterr().out
    assert code == 0
    assert "# Bag-determinacy report" in out
    assert "DETERMINED" in out
