"""Unit tests for the Section 2.2 structure algebra."""

import pytest

from repro.errors import StructureError
from repro.structures.generators import cycle_structure, path_structure
from repro.structures.operations import (
    disjoint_union,
    power,
    product,
    product_structures,
    scalar_multiple,
    sum_structures,
    sum_with_multiplicities,
    unit_structure,
)
from repro.structures.schema import Schema
from repro.structures.structure import Fact, Structure


EDGE = path_structure(["R"])


class TestDisjointUnion:
    def test_sizes_add(self):
        result = disjoint_union(EDGE, EDGE)
        assert result.count_facts("R") == 2
        assert len(result.domain()) == 4

    def test_copies_are_disjoint_even_with_shared_constants(self):
        result = disjoint_union(EDGE, EDGE)
        # No vertex touches both copies: every element has degree <= 2
        # and the R-edges form two disjoint arcs.
        edges = result.tuples("R")
        endpoints = [t for pair in edges for t in pair]
        assert len(set(endpoints)) == 4

    def test_nullary_rejected(self):
        nullary = Structure([Fact("H", ())])
        with pytest.raises(StructureError):
            disjoint_union(nullary, EDGE)

    def test_sum_structures_empty_is_empty(self):
        result = sum_structures([])
        assert result.count_facts() == 0
        assert not result.domain()

    def test_scalar_multiple(self):
        assert scalar_multiple(3, EDGE).count_facts("R") == 3
        assert scalar_multiple(0, EDGE).count_facts() == 0

    def test_scalar_multiple_negative_rejected(self):
        with pytest.raises(StructureError):
            scalar_multiple(-1, EDGE)

    def test_sum_with_multiplicities(self):
        result = sum_with_multiplicities([(2, EDGE), (1, cycle_structure(3))])
        assert result.count_facts("R") == 2 + 3


class TestProduct:
    def test_domain_is_cartesian(self):
        result = product(EDGE, EDGE)
        assert len(result.domain()) == 4

    def test_edge_times_edge_is_single_edge(self):
        # R((a1,b1),(a2,b2)) iff R(a1,a2) and R(b1,b2): exactly one fact.
        result = product(EDGE, EDGE)
        assert result.count_facts("R") == 1

    def test_product_counts_multiply_on_cycles(self):
        # C3 x C3 has 9 edges.
        c3 = cycle_structure(3)
        assert product(c3, c3).count_facts("R") == 9

    def test_nullary_product_requires_both(self):
        h = Structure([Fact("H", ())])
        empty = Structure([], schema=Schema({"H": 0}))
        assert product(h, h).has_fact("H")
        assert not product(h, empty).has_fact("H")

    def test_mixed_schemas_merge(self):
        s_edge = path_structure(["S"])
        result = product(EDGE, s_edge)
        # R needs R-facts on both sides; S likewise: neither survives.
        assert result.count_facts() == 0
        assert len(result.domain()) == 4


class TestPowerAndUnit:
    def test_power_zero_is_unit(self):
        u = power(EDGE, 0)
        assert len(u.domain()) == 1
        assert u.count_facts("R") == 1  # the loop

    def test_unit_structure_has_all_loops(self):
        u = unit_structure(Schema({"R": 2, "U": 1, "H": 0}))
        assert u.count_facts("R") == 1
        assert u.count_facts("U") == 1
        assert u.count_facts("H") == 1

    def test_unit_is_multiplicative_identity_up_to_iso(self):
        from repro.structures.isomorphism import are_isomorphic

        u = unit_structure(Schema({"R": 2}))
        # product with the unit preserves the structure up to renaming
        result = product(cycle_structure(3), u)
        assert are_isomorphic(result, cycle_structure(3))

    def test_power_negative_rejected(self):
        with pytest.raises(StructureError):
            power(EDGE, -1)

    def test_power_two(self):
        c3 = cycle_structure(3)
        squared = power(c3, 2)
        assert len(squared.domain()) == 9
        assert squared.count_facts("R") == 9

    def test_empty_product_needs_schema(self):
        with pytest.raises(StructureError):
            product_structures([])
        u = product_structures([], schema=Schema({"R": 2}))
        assert u.count_facts("R") == 1
