"""Unit tests for lazy structure expressions."""

import pytest

from repro.errors import StructureError
from repro.structures.expression import (
    LeafExpression,
    PowerExpression,
    ProductExpression,
    SumExpression,
    as_expression,
    materialize_or_none,
    scaled_sum,
)
from repro.structures.generators import cycle_structure, path_structure
from repro.structures.isomorphism import are_isomorphic
from repro.structures.operations import (
    disjoint_union,
    power,
    product,
    scalar_multiple,
)
from repro.structures.schema import Schema
from repro.structures.structure import Fact, Structure

EDGE = path_structure(["R"])
C3 = cycle_structure(3)


class TestConstruction:
    def test_leaf(self):
        leaf = LeafExpression(EDGE)
        assert leaf.domain_size() == 2
        assert leaf.materialize() == EDGE

    def test_as_expression_coerces(self):
        assert isinstance(as_expression(EDGE), LeafExpression)
        leaf = LeafExpression(EDGE)
        assert as_expression(leaf) is leaf

    def test_operator_sugar(self):
        expr = 2 * as_expression(EDGE) + as_expression(C3)
        assert expr.domain_size() == 2 * 2 + 3

    def test_negative_coefficient_rejected(self):
        with pytest.raises(StructureError):
            SumExpression([(-1, LeafExpression(EDGE))])

    def test_negative_exponent_rejected(self):
        with pytest.raises(StructureError):
            PowerExpression(LeafExpression(EDGE), -2)

    def test_sum_rejects_nullary(self):
        h = Structure([Fact("H", ())])
        with pytest.raises(StructureError):
            SumExpression([(1, LeafExpression(h))])

    def test_zero_coefficient_terms_dropped(self):
        expr = SumExpression([(0, LeafExpression(EDGE)), (2, LeafExpression(C3))])
        assert len(expr.terms) == 1


class TestDomainSize:
    def test_sum(self):
        expr = scaled_sum([(3, EDGE), (2, C3)])
        assert expr.domain_size() == 3 * 2 + 2 * 3

    def test_product(self):
        expr = ProductExpression([as_expression(EDGE), as_expression(C3)])
        assert expr.domain_size() == 6

    def test_power(self):
        expr = PowerExpression(as_expression(C3), 3)
        assert expr.domain_size() == 27

    def test_power_zero_is_unit(self):
        expr = PowerExpression(as_expression(C3), 0)
        assert expr.domain_size() == 1


class TestMaterialization:
    def test_sum_matches_eager(self):
        expr = scaled_sum([(2, EDGE)])
        assert are_isomorphic(expr.materialize(), scalar_multiple(2, EDGE))

    def test_product_matches_eager(self):
        expr = ProductExpression([as_expression(C3), as_expression(C3)])
        assert are_isomorphic(expr.materialize(), product(C3, C3))

    def test_power_matches_eager(self):
        expr = PowerExpression(as_expression(C3), 2)
        assert are_isomorphic(expr.materialize(), power(C3, 2))

    def test_nested(self):
        expr = PowerExpression(scaled_sum([(1, EDGE), (1, C3)]), 2)
        eager = power(disjoint_union(EDGE, C3), 2)
        assert are_isomorphic(expr.materialize(), eager)

    def test_materialize_limit(self):
        expr = PowerExpression(as_expression(C3), 20)
        with pytest.raises(StructureError):
            expr.materialize(max_domain=1000)
        assert materialize_or_none(expr, max_domain=1000) is None

    def test_empty_product_materializes_unit(self):
        expr = ProductExpression([], schema=Schema({"R": 2}))
        unit = expr.materialize()
        assert len(unit.domain()) == 1
        assert unit.count_facts("R") == 1


class TestEqualityAndSchema:
    def test_structural_equality(self):
        left = scaled_sum([(2, EDGE)])
        right = scaled_sum([(2, EDGE)])
        assert left == right
        assert hash(left) == hash(right)

    def test_schema_merging(self):
        s_edge = path_structure(["S"])
        expr = scaled_sum([(1, EDGE), (1, s_edge)])
        assert set(expr.schema().names()) == {"R", "S"}
