"""Property-based tests of Lemma 4 — the paper's counting calculus.

Lemma 4 (Lovász):
  (1) |hom(A, B+C)| = |hom(A, B)| + |hom(A, C)|   for connected A
  (2) |hom(A, tB)|   = t·|hom(A, B)|              for connected A
  (3) |hom(A, B×C)| = |hom(A, B)|·|hom(A, C)|
  (4) |hom(A, B^t)| = |hom(A, B)|^t
  (5) |hom(A+B, C)| = |hom(A, C)|·|hom(B, C)|

These identities carry the entire Theorem 3 machinery, so we hammer
them with random structures.  All counts below go through the *direct*
backtracking counter so the test is independent of the factorized
evaluator (which is itself built on these identities).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.structures.generators import random_connected_structure, random_structure
from repro.structures.operations import (
    disjoint_union,
    power,
    product,
    scalar_multiple,
)
from repro.structures.schema import Schema
from repro.hom.search import count_homomorphisms_direct as hom

SCHEMA = Schema({"R": 2, "S": 2})


def _connected(seed: int, size: int):
    return random_connected_structure(SCHEMA, size, rng=random.Random(seed))


def _any(seed: int, size: int):
    return random_structure(SCHEMA, size, 0.4, random.Random(seed))


@settings(max_examples=40, deadline=None)
@given(a=st.integers(0, 9999), b=st.integers(0, 9999), c=st.integers(0, 9999))
def test_lemma4_1_sum_additivity_for_connected_sources(a, b, c):
    source = _connected(a, 1 + a % 3)
    left, right = _any(b, 2), _any(c, 2)
    assert hom(source, disjoint_union(left, right)) == (
        hom(source, left) + hom(source, right)
    )


@settings(max_examples=40, deadline=None)
@given(a=st.integers(0, 9999), b=st.integers(0, 9999), t=st.integers(0, 3))
def test_lemma4_2_scalar_multiples(a, b, t):
    source = _connected(a, 1 + a % 3)
    target = _any(b, 2)
    assert hom(source, scalar_multiple(t, target)) == t * hom(source, target)


@settings(max_examples=40, deadline=None)
@given(a=st.integers(0, 9999), b=st.integers(0, 9999), c=st.integers(0, 9999))
def test_lemma4_3_product_multiplicativity(a, b, c):
    source = _any(a, 2)  # (3) holds for arbitrary sources
    left, right = _any(b, 2), _any(c, 2)
    assert hom(source, product(left, right)) == hom(source, left) * hom(source, right)


@settings(max_examples=25, deadline=None)
@given(a=st.integers(0, 9999), b=st.integers(0, 9999), t=st.integers(0, 2))
def test_lemma4_4_powers(a, b, t):
    source = _any(a, 2)
    target = _any(b, 2)
    assert hom(source, power(target, t, schema=SCHEMA)) == hom(source, target) ** t


@settings(max_examples=40, deadline=None)
@given(a=st.integers(0, 9999), b=st.integers(0, 9999), c=st.integers(0, 9999))
def test_lemma4_5_source_factorization(a, b, c):
    left, right = _any(a, 2), _any(b, 2)
    target = _any(c, 3)
    assert hom(disjoint_union(left, right), target) == (
        hom(left, target) * hom(right, target)
    )


def test_lemma4_1_fails_for_disconnected_sources():
    """Sanity: the connectedness hypothesis in (1) is necessary."""
    from repro.structures.generators import path_structure

    edge = path_structure(["R"])
    two_edges = disjoint_union(edge, edge)  # disconnected source
    target = edge
    lhs = hom(two_edges, disjoint_union(target, target))
    rhs = hom(two_edges, target) + hom(two_edges, target)
    assert lhs == 4  # (1+1)^2 by (5)
    assert rhs == 2
    assert lhs != rhs
