"""Unit tests for the Theorem 3 decision procedure."""

import random

import pytest

from repro.errors import DecisionError, UnsupportedQueryError
from repro.queries.cq import ConjunctiveQuery, cq_from_structure
from repro.queries.evaluation import evaluate_boolean
from repro.queries.parser import parse_boolean_cq, parse_cq
from repro.structures.generators import cycle_structure, path_structure, random_structure
from repro.structures.schema import Schema
from repro.core.decision import connected_case, decide_bag_determinacy


class TestBasicVerdicts:
    def test_query_among_views_determined(self):
        q = parse_boolean_cq("R(x,y), S(y,z)")
        result = decide_bag_determinacy([q], q)
        assert result.determined
        assert result.coefficients is not None

    def test_no_views_nonempty_query_not_determined(self):
        q = parse_boolean_cq("R(x,y)")
        result = decide_bag_determinacy([], q)
        assert not result.determined

    def test_empty_query_always_determined(self):
        empty = ConjunctiveQuery([])
        result = decide_bag_determinacy([], empty)
        assert result.determined
        assert result.rewriting().evaluate([]) == 1

    def test_irrelevant_views_filtered(self):
        # q ⊄set v (v can be 0 while q > 0) -> v lands outside V.
        q = parse_boolean_cq("R(x,y)")
        v = parse_boolean_cq("S(x,y)")
        result = decide_bag_determinacy([v], q)
        assert result.relevant_views == ()
        assert not result.determined

    def test_power_view_determines(self):
        # v = q ∧ q-copy: v(D) = q(D)^2, so q(D) = sqrt(v(D)).
        q = parse_boolean_cq("U(x)")
        v = parse_boolean_cq("U(x), U(y)")
        result = decide_bag_determinacy([v], q)
        assert result.determined
        rewriting = result.rewriting()
        assert rewriting.evaluate([9]) == 3

    def test_unsupported_inputs(self):
        with pytest.raises(UnsupportedQueryError):
            decide_bag_determinacy([], parse_cq("x | R(x,y)"))
        with pytest.raises(UnsupportedQueryError):
            decide_bag_determinacy([parse_boolean_cq("H()")],
                                   parse_boolean_cq("R(x,y)"))


class TestPaperExample32:
    def test_determined_with_coefficients_3_minus_1(self, example32_instance):
        views, q = example32_instance
        result = decide_bag_determinacy(views, q)
        assert result.determined
        # The paper: q⃗ = 3·v⃗1 − v⃗2.
        assert list(result.coefficients) == [3, -1]

    def test_rewriting_round_trip(self, example32_instance):
        views, q = example32_instance
        rewriting = decide_bag_determinacy(views, q).rewriting()
        schema = Schema({"R": 2})
        rng = random.Random(11)
        for _ in range(5):
            database = random_structure(schema, 4, 0.5, rng)
            assert rewriting.answer_on(database) == evaluate_boolean(q, database)


class TestExample42Analogue:
    def test_relevant_but_independent_view_does_not_determine(self):
        """q = C3, V0 = {C6}: the hexagon maps homomorphically onto the
        triangle, so q ⊆set v and V = V0, but q⃗ = e1 ∉ span{e2}
        (Example 42's shape: relevant yet linearly independent)."""
        q = cq_from_structure(cycle_structure(3))
        v = cq_from_structure(cycle_structure(6))
        result = decide_bag_determinacy([v], q)
        assert result.relevant_views == (v,)
        assert result.basis.dimension == 2
        assert not result.determined

    def test_witness_requested_on_determined_raises(self):
        q = parse_boolean_cq("R(x,y)")
        result = decide_bag_determinacy([q], q)
        with pytest.raises(DecisionError):
            result.witness()

    def test_rewriting_requested_on_undetermined_raises(self):
        q = parse_boolean_cq("R(x,y)")
        v = parse_boolean_cq("R(x,y), R(y,z)")
        result = decide_bag_determinacy([v], q)
        with pytest.raises(DecisionError):
            result.rewriting()


class TestCorollary33:
    def test_connected_query_in_views(self):
        q = cq_from_structure(cycle_structure(3))
        views = [cq_from_structure(path_structure(["R"])), q]
        assert connected_case(views, q)

    def test_connected_query_not_in_views(self):
        q = cq_from_structure(cycle_structure(3))
        views = [cq_from_structure(cycle_structure(4))]
        assert not connected_case(views, q)

    def test_agrees_with_full_decider(self):
        structures = [
            cycle_structure(3),
            cycle_structure(4),
            path_structure(["R"]),
            path_structure(["R", "R"]),
        ]
        queries = [cq_from_structure(s) for s in structures]
        for q in queries:
            for i in range(len(queries)):
                views = queries[:i]
                expected = decide_bag_determinacy(views, q).determined
                assert connected_case(views, q) == expected

    def test_disconnected_rejected(self):
        disconnected = parse_boolean_cq("R(x,y), R(u,v)")
        with pytest.raises(DecisionError):
            connected_case([disconnected], disconnected)


class TestResultObject:
    def test_explain_mentions_verdict(self):
        q = parse_boolean_cq("R(x,y)")
        determined = decide_bag_determinacy([q], q)
        assert "DETERMINED" in determined.explain()
        refused = decide_bag_determinacy([], q)
        assert "NOT determined" in refused.explain()

    def test_vectors_exposed(self, example32_instance):
        views, q = example32_instance
        result = decide_bag_determinacy(views, q)
        assert result.basis.dimension == 3
        assert sorted(result.query_vector) == [1, 1, 2]
        assert len(result.view_vectors) == 2
