"""Unit tests for the Appendix A reduction (Lemmas 59–63)."""

import pytest

from repro.queries.evaluation import evaluate_boolean
from repro.structures.structure import Structure
from repro.ucq.analysis import (
    counterexample_from_solution,
    profile_pair_agrees,
    search_reduction_counterexample,
    semidecide_reduction_determinacy,
)
from repro.ucq.hilbert import (
    Monomial,
    linear_instance,
    pythagoras_instance,
    unsolvable_instance,
)
from repro.ucq.profiles import (
    Profile,
    count_cq_on_profile,
    view_profile_answers,
)
from repro.ucq.reduction import build_reduction, phi_for_monomial, reduction_schema


class TestSchemaAndPhi:
    def test_schema_shape(self):
        schema = reduction_schema(pythagoras_instance())
        assert schema.arity("H") == 0
        assert schema.arity("C") == 0
        assert schema.arity("X_x") == 1
        assert schema.arity("X_y") == 1
        assert schema.arity("X_z") == 1

    def test_phi_atom_counts_match_degrees(self):
        schema = reduction_schema(pythagoras_instance())
        phi = phi_for_monomial(Monomial(1, {"x": 2}), schema)
        assert len(phi.atoms) == 2
        assert all(a.relation == "X_x" for a in phi.atoms)
        # distinct variables => counts multiply independently
        variables = {a.variables[0] for a in phi.atoms}
        assert len(variables) == 2

    def test_phi_constant_monomial_is_empty_query(self):
        schema = reduction_schema(unsolvable_instance())
        phi = phi_for_monomial(Monomial(3, {}), schema)
        assert len(phi.atoms) == 0


class TestLemma59to61:
    def test_lemma59_phi_counts_monomial(self):
        """Φ_m(D) = Π_i (D_{X_i})^{m(x_i)} — against real hom counts."""
        reduction = build_reduction(pythagoras_instance())
        profile = Profile(1, 1, {"x": 2, "y": 3, "z": 1})
        database = profile.to_structure(reduction)
        for monomial in reduction.instance.monomials:
            phi = phi_for_monomial(monomial, reduction.schema)
            expected = monomial.monomial_value(profile.assignment())
            assert evaluate_boolean(phi, database) == expected
            assert count_cq_on_profile(phi, profile) == expected

    def test_lemma60_61_flagged_sums(self):
        """V_I(D) = D_H·Σ_P m_D − D_C·Σ_N m_D  (with sign folded in)."""
        reduction = build_reduction(pythagoras_instance())
        assignment = {"x": 1, "y": 2, "z": 2}
        instance = reduction.instance
        positive_sum = sum(
            m.evaluate(assignment) for m in instance.positive_monomials()
        )
        negative_sum = -sum(
            m.evaluate(assignment) for m in instance.negative_monomials()
        )
        for h, c in ((1, 0), (0, 1), (1, 1), (0, 0)):
            profile = Profile(h, c, assignment)
            database = profile.to_structure(reduction)
            expected = h * positive_sum + c * negative_sum
            assert evaluate_boolean(reduction.view_polynomial, database) == expected

    def test_profile_answers_match_structures(self):
        reduction = build_reduction(linear_instance())
        profile = Profile(1, 0, {"x": 4, "y": 2})
        database = profile.to_structure(reduction)
        from_profiles = view_profile_answers(reduction, profile)
        from_structures = tuple(
            evaluate_boolean(view, database) for view in reduction.views()
        )
        assert from_profiles == from_structures


class TestLemma62:
    def test_view_agreeing_distinct_profiles_swap_flags(self):
        """Enumerate small profiles; any distinct pair agreeing on all
        views must have swapped H/C and equal unknowns."""
        reduction = build_reduction(linear_instance())
        profiles = [
            Profile(h, c, {"x": x, "y": y})
            for h in (0, 1) for c in (0, 1)
            for x in range(3) for y in range(3)
        ]
        for left in profiles:
            for right in profiles:
                if left == right:
                    continue
                if profile_pair_agrees(reduction, left, right):
                    assert left.assignment() == right.assignment()
                    assert (left.h, left.c) == (right.c, right.h)
                    assert left.h != left.c


class TestLemma63:
    def test_solution_yields_verified_counterexample(self):
        reduction = build_reduction(pythagoras_instance())
        pair = counterexample_from_solution(reduction, {"x": 3, "y": 4, "z": 5})
        assert pair.ok
        assert pair.query_answers == (1, 0)
        # all views agree on real structures
        for left, right in pair.view_answers:
            assert left == right

    def test_non_solution_rejected(self):
        reduction = build_reduction(pythagoras_instance())
        from repro.errors import DecisionError

        with pytest.raises(DecisionError):
            counterexample_from_solution(reduction, {"x": 1, "y": 1, "z": 1})

    def test_search_finds_counterexample_iff_solvable(self):
        solvable = build_reduction(linear_instance())
        assert search_reduction_counterexample(solvable, 3) is not None
        unsolvable = build_reduction(unsolvable_instance())
        assert search_reduction_counterexample(unsolvable, 4) is None

    def test_semidecision_verdicts(self):
        verdict, witness = semidecide_reduction_determinacy(
            build_reduction(linear_instance()), 3
        )
        assert verdict == "not-determined"
        assert witness.ok
        verdict, witness = semidecide_reduction_determinacy(
            build_reduction(unsolvable_instance()), 4
        )
        assert verdict == "unknown"
        assert witness is None


class TestProfiles:
    def test_flag_bounds(self):
        with pytest.raises(Exception):
            Profile(2, 0, {})

    def test_negative_unknown_rejected(self):
        with pytest.raises(Exception):
            Profile(0, 0, {"x": -1})

    def test_swapped_flags(self):
        profile = Profile(1, 0, {"x": 2})
        swapped = profile.swapped_flags()
        assert (swapped.h, swapped.c) == (0, 1)
        assert swapped.assignment() == {"x": 2}

    def test_to_structure_counts(self):
        reduction = build_reduction(linear_instance())
        database = Profile(1, 0, {"x": 2, "y": 0}).to_structure(reduction)
        assert database.count_facts("H") == 1
        assert database.count_facts("C") == 0
        assert database.count_facts("X_x") == 2
        assert database.count_facts("X_y") == 0

    def test_count_on_non_reduction_atom_rejected(self):
        from repro.queries.parser import parse_boolean_cq
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            count_cq_on_profile(parse_boolean_cq("R(a,b)"), Profile(0, 0, {}))


class TestUCQLinearCertificate:
    def test_example3(self):
        """Paper Example 3: V = {P(x), P(x) ∨ R(x)} bag-determines
        q = R(x) via q = v2 − v1 (while set-determinacy fails)."""
        from repro.queries.parser import parse_ucq
        from repro.ucq.analysis import linear_certificate

        v1 = parse_ucq("P(x)")
        v2 = parse_ucq("P(x) or R(x)")
        q = parse_ucq("R(x)")
        certificate = linear_certificate([v1, v2], q)
        assert certificate is not None
        assert certificate.coefficients == (-1, 1)
        database = Structure([("P", ("a",)), ("P", ("b",)), ("R", ("b",))])
        assert certificate.answer_on(database) == evaluate_boolean(q, database)

    def test_no_certificate_for_independent_query(self):
        from repro.queries.parser import parse_ucq
        from repro.ucq.analysis import linear_certificate

        assert linear_certificate([parse_ucq("P(x)")], parse_ucq("R(x)")) is None

    def test_certificate_rejects_inconsistent_answers(self):
        from repro.queries.parser import parse_ucq
        from repro.ucq.analysis import linear_certificate
        from repro.errors import DecisionError

        certificate = linear_certificate(
            [parse_ucq("P(x)"), parse_ucq("P(x) or R(x)")], parse_ucq("R(x)")
        )
        with pytest.raises(DecisionError):
            certificate.evaluate([5, 3])  # would be negative
