"""Unit tests for the query model (CQ, UCQ, path queries)."""

import pytest

from repro.errors import QueryError
from repro.queries.cq import Atom, ConjunctiveQuery, boolean_cq, cq_from_structure
from repro.queries.path import EPSILON, PathQuery, signed_word
from repro.queries.ucq import UnionOfBooleanCQs, as_ucq
from repro.structures.generators import cycle_structure
from repro.structures.isomorphism import are_isomorphic


class TestAtom:
    def test_basic(self):
        atom = Atom("R", ("x", "y"))
        assert atom.arity == 2
        assert str(atom) == "R(x, y)"

    def test_freeze(self):
        fact = Atom("R", ("x", "y")).to_fact()
        assert fact.terms == (("var", "x"), ("var", "y"))

    def test_invalid_variable(self):
        with pytest.raises(QueryError):
            Atom("R", ("",))


class TestConjunctiveQuery:
    def test_boolean(self):
        q = boolean_cq([("R", ("x", "y"))])
        assert q.is_boolean()
        assert q.arity == 0

    def test_free_variables(self):
        q = ConjunctiveQuery([("R", ("x", "y"))], free=("x",))
        assert q.arity == 1
        assert q.existential_variables() == frozenset({"y"})

    def test_duplicate_free_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([("R", ("x", "y"))], free=("x", "x"))

    def test_duplicate_atoms_collapse(self):
        q = boolean_cq([("R", ("x", "y")), ("R", ("x", "y"))])
        assert len(q.atoms) == 1

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(QueryError):
            boolean_cq([("R", ("x",)), ("R", ("x", "y"))])

    def test_frozen_body_preserves_shape(self):
        q = boolean_cq([("R", ("x", "y")), ("R", ("y", "z"))])
        body = q.frozen_body()
        assert body.count_facts("R") == 2
        assert len(body.domain()) == 3

    def test_frozen_body_keeps_isolated_variables(self):
        q = ConjunctiveQuery([("R", ("x", "y"))], extra_variables=["lonely"])
        body = q.frozen_body()
        assert ("var", "lonely") in body.domain()
        assert body.isolated_elements() == frozenset({("var", "lonely")})

    def test_free_variable_not_in_body_is_isolated(self):
        q = ConjunctiveQuery([("R", ("x", "y"))], free=("x", "w"))
        assert "w" in q.extra_variables

    def test_rename(self):
        q = boolean_cq([("R", ("x", "y"))])
        renamed = q.rename_variables({"x": "a"})
        assert Atom("R", ("a", "y")) in renamed.atoms

    def test_rename_non_injective_rejected(self):
        q = boolean_cq([("R", ("x", "y"))])
        with pytest.raises(QueryError):
            q.rename_variables({"x": "y"})

    def test_conjoin(self):
        left = boolean_cq([("R", ("x", "y"))])
        right = boolean_cq([("S", ("y", "z"))])
        combined = left.conjoin(right)
        assert len(combined.atoms) == 2

    def test_boolean_closure(self):
        q = ConjunctiveQuery([("R", ("x", "y"))], free=("x",))
        assert q.boolean_closure().is_boolean()

    def test_nullary_atom_detection(self):
        assert boolean_cq([Atom("H", ())]).has_nullary_atom()
        assert not boolean_cq([("R", ("x", "y"))]).has_nullary_atom()

    def test_cq_from_structure_roundtrip(self):
        c3 = cycle_structure(3)
        q = cq_from_structure(c3)
        assert are_isomorphic(q.frozen_body(), c3)

    def test_hashable_and_equal(self):
        a = boolean_cq([("R", ("x", "y"))])
        b = boolean_cq([("R", ("x", "y"))])
        assert a == b
        assert len({a, b}) == 1


class TestUnionOfBooleanCQs:
    def test_basic(self):
        p = boolean_cq([("P", ("x",))])
        r = boolean_cq([("R", ("x",))])
        u = UnionOfBooleanCQs([p, r])
        assert len(u.disjuncts) == 2

    def test_nonboolean_disjunct_rejected(self):
        q = ConjunctiveQuery([("R", ("x", "y"))], free=("x",))
        with pytest.raises(QueryError):
            UnionOfBooleanCQs([q])

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            UnionOfBooleanCQs([])

    def test_repeated_multiplies(self):
        p = boolean_cq([("P", ("x",))])
        assert len(UnionOfBooleanCQs([p]).repeated(3).disjuncts) == 3

    def test_as_ucq(self):
        p = boolean_cq([("P", ("x",))])
        assert as_ucq(p).is_single_cq()


class TestPathQuery:
    def test_word_interface(self):
        q = PathQuery(("A", "B", "C"))
        assert len(q) == 3
        assert list(q) == ["A", "B", "C"]
        assert q[1] == "B"
        assert q[:2] == PathQuery(("A", "B"))

    def test_prefixes(self):
        q = PathQuery(("A", "B"))
        assert [p.letters for p in q.prefixes()] == [(), ("A",), ("A", "B")]

    def test_epsilon_falsy(self):
        assert not EPSILON
        assert PathQuery(("A",))

    def test_concatenation(self):
        assert (PathQuery(("A",)) + PathQuery(("B",))).letters == ("A", "B")

    def test_prefix_suffix_stripping(self):
        q = PathQuery(("A", "B", "C"))
        assert q.strip_prefix(PathQuery(("A",))).letters == ("B", "C")
        assert q.strip_suffix(PathQuery(("C",))).letters == ("A", "B")
        with pytest.raises(QueryError):
            q.strip_prefix(PathQuery(("B",)))
        with pytest.raises(QueryError):
            q.strip_suffix(PathQuery(("A",)))

    def test_to_cq(self):
        cq = PathQuery(("A", "B")).to_cq()
        assert cq.arity == 2
        assert len(cq.atoms) == 2

    def test_epsilon_to_cq_rejected(self):
        with pytest.raises(QueryError):
            EPSILON.to_cq()

    def test_frozen_path(self):
        body = PathQuery(("A", "B")).frozen_path()
        assert body.count_facts() == 2
        assert len(body.domain()) == 3

    def test_signed_word_inversion(self):
        q = PathQuery(("A", "B"))
        assert signed_word(q, 1) == (("A", 1), ("B", 1))
        # footnote 18: reversed and inverted
        assert signed_word(q, -1) == (("B", -1), ("A", -1))

    def test_signed_word_bad_sign(self):
        with pytest.raises(QueryError):
            signed_word(PathQuery(("A",)), 2)
