"""Unit tests for the Multiset type (paper Section 2.1 conventions)."""

import pytest

from repro.errors import StructureError
from repro.structures.multiset import Multiset


class TestConstruction:
    def test_from_mapping(self):
        m = Multiset({"a": 2, "b": 1})
        assert m["a"] == 2
        assert m["b"] == 1

    def test_from_iterable_counts_duplicates(self):
        m = Multiset(["a", "a", "b"])
        assert m["a"] == 2
        assert m["b"] == 1

    def test_zero_multiplicities_dropped(self):
        m = Multiset({"a": 0, "b": 3})
        assert "a" not in m
        assert m.support() == frozenset({"b"})

    def test_missing_element_has_multiplicity_zero(self):
        assert Multiset()["anything"] == 0

    def test_negative_multiplicity_rejected(self):
        with pytest.raises(StructureError):
            Multiset({"a": -1})

    def test_non_int_multiplicity_rejected(self):
        with pytest.raises(StructureError):
            Multiset({"a": 1.5})


class TestAlgebra:
    def test_union_adds_multiplicities(self):
        # Paper Sec 2.1: (X ∪ X')[a] = X[a] + X'[a].
        left = Multiset({"a": 2, "b": 1})
        right = Multiset({"a": 1, "c": 4})
        union = left + right
        assert union["a"] == 3
        assert union["b"] == 1
        assert union["c"] == 4

    def test_difference_truncates_at_zero(self):
        result = Multiset({"a": 1}) - Multiset({"a": 5, "b": 1})
        assert result == Multiset()

    def test_scale(self):
        assert Multiset({"a": 2}).scale(3) == Multiset({"a": 6})

    def test_scale_by_zero_is_empty(self):
        assert not Multiset({"a": 2}).scale(0)

    def test_scale_negative_rejected(self):
        with pytest.raises(StructureError):
            Multiset({"a": 1}).scale(-1)

    def test_union_max(self):
        result = Multiset({"a": 2, "b": 1}).union_max(Multiset({"a": 1, "b": 5}))
        assert result == Multiset({"a": 2, "b": 5})

    def test_intersection(self):
        result = Multiset({"a": 2, "b": 1}).intersection(Multiset({"a": 1, "c": 2}))
        assert result == Multiset({"a": 1})


class TestComparison:
    def test_equality_ignores_construction_order(self):
        assert Multiset(["a", "b", "a"]) == Multiset({"a": 2, "b": 1})

    def test_submultiset(self):
        assert Multiset({"a": 1}) <= Multiset({"a": 2, "b": 1})
        assert not Multiset({"a": 3}) <= Multiset({"a": 2})

    def test_strict_submultiset(self):
        assert Multiset({"a": 1}) < Multiset({"a": 2})
        assert not Multiset({"a": 2}) < Multiset({"a": 2})

    def test_hashable(self):
        assert hash(Multiset({"a": 1})) == hash(Multiset(["a"]))


class TestAccessors:
    def test_total_counts_with_multiplicity(self):
        assert Multiset({"a": 2, "b": 3}).total() == 5

    def test_len_counts_distinct(self):
        assert len(Multiset({"a": 2, "b": 3})) == 2

    def test_elements_expands_multiplicity(self):
        assert sorted(Multiset({"a": 2, "b": 1}).elements()) == ["a", "a", "b"]

    def test_as_set_semantics(self):
        assert Multiset({"a": 9, "b": 1}).as_set_semantics() == frozenset({"a", "b"})

    def test_bool(self):
        assert Multiset({"a": 1})
        assert not Multiset()
