"""Integration tests: the deciders cross-validated against each other,
the refuter, the witness construction and direct evaluation.

This is the repository's strongest correctness argument: randomized
instances flow through the full pipeline and every verdict is checked
by an *independent* mechanism:

* determined  -> the monomial rewriting answers q from view answers on
                 random databases, exactly;
* determined  -> no counterexample exists among small structure pairs;
* undetermined -> the Lemma 41 witness pair verifies symbolically.
"""

import random

import pytest

from repro.hom.count import count_homs
from repro.queries.cq import cq_from_structure
from repro.queries.evaluation import evaluate_boolean
from repro.queries.parser import parse_boolean_cq
from repro.structures.generators import (
    cycle_structure,
    path_structure,
    random_connected_structure,
    random_structure,
)
from repro.structures.operations import sum_with_multiplicities
from repro.structures.schema import Schema
from repro.core.decision import decide_bag_determinacy
from repro.core.refuter import search_lattice_counterexample

SCHEMA = Schema({"R": 2, "S": 2})


def _random_boolean_cq(rng: random.Random):
    """A random boolean CQ with 1–3 small connected components."""
    component_pool = [
        path_structure(["R"]),
        path_structure(["R", "R"]),
        path_structure(["S"]),
        path_structure(["R", "S"]),
        cycle_structure(3),
        random_connected_structure(SCHEMA, 2, rng=rng),
    ]
    pieces = [(rng.randint(0, 2), rng.choice(component_pool))
              for _ in range(rng.randint(1, 3))]
    if all(m == 0 for m, _ in pieces):
        pieces.append((1, component_pool[0]))
    return cq_from_structure(sum_with_multiplicities(pieces))


@pytest.mark.parametrize("seed", range(12))
def test_full_pipeline_on_random_instances(seed):
    rng = random.Random(seed)
    views = [_random_boolean_cq(rng) for _ in range(rng.randint(1, 3))]
    query = _random_boolean_cq(rng)
    result = decide_bag_determinacy(views, query)

    if result.determined:
        rewriting = result.rewriting()
        for probe_seed in range(4):
            database = random_structure(SCHEMA, 4, 0.4,
                                        random.Random(1000 * seed + probe_seed))
            assert rewriting.answer_on(database) == evaluate_boolean(query, database)
        # The refuter must not find a counterexample.
        assert search_lattice_counterexample(
            views, query, max_multiplicity=2
        ) is None
    else:
        pair = result.witness(rng=random.Random(seed))
        report = pair.verify()
        assert report.ok, report


@pytest.mark.parametrize("seed", range(6))
def test_witness_answers_match_observation30(seed):
    """For undetermined instances, the witness's claimed query answers
    (via Observation 30 on matrix counts) must equal real hom counts."""
    rng = random.Random(100 + seed)
    views = [_random_boolean_cq(rng)]
    query = _random_boolean_cq(rng)
    result = decide_bag_determinacy(views, query)
    if result.determined:
        pytest.skip("instance happened to be determined")
    pair = result.witness(rng=rng)
    predicted = pair.answers(result.query_vector)
    actual = (
        count_homs(query.frozen_body(), pair.left),
        count_homs(query.frozen_body(), pair.right),
    )
    assert predicted == actual
    assert actual[0] != actual[1]


def test_rewriting_certificate_verifies_linear_algebra():
    """The span coefficients must reproduce q⃗ exactly."""
    from repro.linalg.span import verify_combination

    rng = random.Random(77)
    for _ in range(10):
        views = [_random_boolean_cq(rng) for _ in range(2)]
        query = _random_boolean_cq(rng)
        result = decide_bag_determinacy(views, query)
        if result.determined:
            assert verify_combination(
                result.view_vectors, result.coefficients, result.query_vector
            )


def test_bag_strictly_stronger_than_set_for_boolean_cqs():
    """Corollary of the Theorem 3 proof: →bag is strictly stronger than
    →set for boolean CQs.

    For *boolean* queries, set-determinacy only transmits the 0-vs-
    positive signal.  Take q = 2-path and v = 2-path + extra edge
    component: under set semantics v(D) > 0 ⟺ q(D) > 0 (the extra edge
    is implied by the 2-path), so V set-determines q trivially.  Under
    bag semantics q(D) cannot be recovered from v(D) = q(D)·edges(D),
    and the decider + witness confirm it.
    """
    q = parse_boolean_cq("R(x,y), R(y,z)")
    v = parse_boolean_cq("R(x,y), R(y,z), R(u,w)")  # 2path + edge
    # set-equivalent boolean signals:
    from repro.hom.containment import is_contained_set

    assert is_contained_set(q, v) and is_contained_set(v, q)
    result = decide_bag_determinacy([v], q)
    assert not result.determined
    assert result.witness().verify().ok
