"""The async multi-tenant front end: parity, tenancy, backpressure.

The headline contracts (ISSUE 10 acceptance): the async stdio front
end answers a mixed JSONL stream byte-identical to ``repro batch run
--workers 1``; two tenants with different strategies/quotas get
independent sessions, independent budget trips, and byte-identical
results vs solo runs; overload is answered with structured records,
not unbounded buffering; drain answers everything in flight.
"""

from __future__ import annotations

import asyncio
import io
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.batch.runner import iter_results
from repro.batch.scenarios import generate_scenario
from repro.batch.tasks import canonical_json, make_hom_count_task
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    AsyncDaemonHandle,
    AsyncSolverService,
    DaemonClient,
    LockedStore,
    TenantQuota,
    TenantRegistry,
    serve_async_stdio,
)
from repro.service.async_daemon import strip_rid
from repro.service.loadgen import default_task_lines, percentile, run_load
from repro.structures.generators import clique_structure, cycle_structure


def _stream(kind: str, count: int, seed: int):
    return [canonical_json(record)
            for record in generate_scenario(kind, count, seed=seed)]


def _serve_async_lines(lines, **service_kwargs) -> list:
    async def main():
        service = AsyncSolverService(**service_kwargs)
        sink = io.StringIO()
        try:
            await serve_async_stdio(
                service, source=iter(line + "\n" for line in lines),
                sink=sink)
        finally:
            await service.aclose()
        return sink.getvalue().splitlines(), service

    result, service = asyncio.run(main())
    return result, service


class _LineClient:
    """A raw persistent line-protocol connection for protocol tests."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=30)
        self.wire = self.sock.makefile("rw", encoding="utf-8")

    def send(self, line: str) -> None:
        self.wire.write(line.rstrip("\n") + "\n")
        self.wire.flush()

    def recv(self) -> dict:
        answer = self.wire.readline()
        assert answer, "daemon closed the connection"
        return json.loads(answer)

    def exchange(self, line: str) -> dict:
        self.send(line)
        return self.recv()

    def close(self) -> None:
        # Closing the makefile wrapper is what actually sends FIN; the raw
        # socket object stays referenced by the wrapper until then.
        try:
            self.wire.close()
            self.sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Byte parity (the acceptance criterion)
# ----------------------------------------------------------------------
class TestAsyncParity:
    def test_stdio_mixed_stream_matches_batch_run(self):
        lines = _stream("mixed", 100, seed=11)
        batch = list(iter_results(lines, workers=1))
        served, service = _serve_async_lines(lines, workers=3)
        assert served == batch  # byte-for-byte, in request order
        assert service.stats_counters.requests == 100

    def test_tcp_ordered_connection_matches_batch_run(self):
        lines = _stream("mixed", 40, seed=7)
        batch = list(iter_results(lines, workers=1))
        # max_inflight=64: the whole pipelined stream fits the quota.
        with AsyncDaemonHandle(workers=3, max_inflight=64) as handle:
            client = _LineClient(handle.address)
            try:
                # Pipeline everything, then read: default mode answers
                # in request order even with 3 executor workers.
                for line in lines:
                    client.send(line)
                served = [canonical_json(client.recv()) for _ in lines]
            finally:
                client.close()
        assert served == batch

    def test_rid_is_stripped_before_evaluation(self):
        # rid must never reach task_seed: the response for a
        # rid-carrying line is the plain line's response plus the echo.
        line = _stream("hom", 1, seed=3)[0]
        plain = list(iter_results([line], workers=1))[0]
        record = json.loads(line)
        record["rid"] = "corr-7"
        with AsyncDaemonHandle(workers=1) as handle:
            client = _LineClient(handle.address)
            try:
                answer = client.exchange(json.dumps(record))
            finally:
                client.close()
        assert answer.pop("rid") == "corr-7"
        assert canonical_json(answer) == plain

    def test_strip_rid_passthrough(self):
        assert strip_rid("not json") == ("not json", None)
        assert strip_rid('{"kind": "x"}') == ('{"kind": "x"}', None)
        stripped, rid = strip_rid('{"kind": "x", "rid": 5}')
        assert json.loads(stripped) == {"kind": "x"}
        assert rid == 5


# ----------------------------------------------------------------------
# Multiplexing + priorities
# ----------------------------------------------------------------------
class TestMultiplex:
    def test_hello_multiplex_correlates_by_rid(self):
        lines = _stream("hom", 6, seed=21)
        batch = list(iter_results(lines, workers=1))
        with AsyncDaemonHandle(workers=3) as handle:
            client = _LineClient(handle.address)
            try:
                hello = client.exchange(
                    '{"op": "hello", "mode": "multiplex"}')
                assert hello["ok"] and hello["mode"] == "multiplex"
                for index, line in enumerate(lines):
                    record = json.loads(line)
                    record["rid"] = index
                    client.send(json.dumps(record))
                by_rid = {}
                for _ in lines:
                    answer = client.recv()
                    rid = answer.pop("rid")
                    by_rid[rid] = canonical_json(answer)
            finally:
                client.close()
        assert [by_rid[i] for i in range(len(lines))] == batch

    def test_priority_orders_queued_work(self):
        async def main():
            service = AsyncSolverService(workers=1)
            await service.start()
            tenant = service.tenants.anonymous()
            lines = _stream("hom", 3, seed=2)
            order = []

            def tag(name):
                return lambda _fut: order.append(name)

            # All three puts happen in one event-loop tick, so the
            # single dispatcher sees the fully-populated priority
            # queue: the later, more urgent submissions run first.
            low = service.submit(tenant, lines[0], priority=9)
            mid = service.submit(tenant, lines[1], priority=5)
            high = service.submit(tenant, lines[2], priority=1)
            low.add_done_callback(tag("low"))
            mid.add_done_callback(tag("mid"))
            high.add_done_callback(tag("high"))
            await asyncio.gather(low, mid, high)
            await service.aclose()
            return order

        assert asyncio.run(main()) == ["high", "mid", "low"]

    def test_batch_op_streams_results_then_summary(self):
        lines = _stream("hom", 5, seed=31)
        tasks = [json.loads(line) for line in lines]
        with AsyncDaemonHandle(workers=2) as handle:
            client = _LineClient(handle.address)
            try:
                client.send(canonical_json(
                    {"op": "batch", "tasks": tasks, "rid": "b"}))
                answers = [client.recv() for _ in range(len(tasks) + 1)]
            finally:
                client.close()
        summary = answers[-1]
        assert summary == {"count": 5, "ok": True, "op": "batch",
                           "rid": "b"}
        assert sorted(a["id"] for a in answers[:-1]) == \
            sorted(t["id"] for t in tasks)

    def test_batch_op_rejects_missing_tasks(self):
        with AsyncDaemonHandle(workers=1) as handle:
            client = _LineClient(handle.address)
            try:
                answer = client.exchange('{"op": "batch"}')
            finally:
                client.close()
        assert answer["ok"] is False and "tasks" in answer["error"]


# ----------------------------------------------------------------------
# Tenancy: isolation, quotas, budget trips
# ----------------------------------------------------------------------
class TestTenancy:
    def test_two_tenants_get_isolated_sessions_and_identical_bytes(self):
        lines = _stream("hom", 10, seed=41)
        solo = list(iter_results(lines, workers=1))
        with AsyncDaemonHandle(workers=2) as handle:
            alice = _LineClient(handle.address)
            bob = _LineClient(handle.address)
            try:
                hello_a = alice.exchange(canonical_json(
                    {"op": "hello", "tenant": "alice",
                     "strategy": "backtrack", "max_inflight": 2}))
                hello_b = bob.exchange(canonical_json(
                    {"op": "hello", "tenant": "bob", "strategy": "dp",
                     "max_inflight": 16}))
                assert hello_a["ok"] and hello_b["ok"]
                got_a = [canonical_json(alice.exchange(line))
                         for line in lines]
                got_b = [canonical_json(bob.exchange(line))
                         for line in lines]
                stats = handle.service.tenants.stats()
            finally:
                alice.close()
                bob.close()
        # Different strategies, same bytes: strategy affects timing
        # only, and each tenant's answers match the solo batch run.
        assert got_a == solo
        assert got_b == solo
        assert stats["alice"]["strategy"] == "backtrack"
        assert stats["bob"]["strategy"] == "dp"
        assert stats["alice"]["requests"] == len(lines)
        assert stats["bob"]["requests"] == len(lines)
        # Isolated sessions: each counted its own stream.
        assert stats["alice"]["tasks_evaluated"] == len(lines)
        assert stats["bob"]["tasks_evaluated"] == len(lines)

    def test_budget_trips_stay_per_tenant(self):
        heavy = canonical_json(make_hom_count_task(
            "slow-0", cycle_structure(6, relation="E"),
            clique_structure(8, relation="E")))
        with AsyncDaemonHandle(workers=2) as handle:
            tight = _LineClient(handle.address)
            roomy = _LineClient(handle.address)
            try:
                assert tight.exchange(canonical_json(
                    {"op": "hello", "tenant": "tight",
                     "deadline_ms": 0.001}))["ok"]
                assert roomy.exchange(canonical_json(
                    {"op": "hello", "tenant": "roomy"}))["ok"]
                tripped = tight.exchange(heavy)
                answered = roomy.exchange(heavy)
                stats = handle.service.tenants.stats()
            finally:
                tight.close()
                roomy.close()
        assert tripped["ok"] is False
        assert tripped["error_kind"] == "budget-exceeded"
        assert answered["ok"] is True
        assert stats["tight"]["budget_exceeded"] == 1
        assert stats["roomy"]["budget_exceeded"] == 0

    def test_hello_refuses_quota_reconfiguration(self):
        with AsyncDaemonHandle(workers=1) as handle:
            first = _LineClient(handle.address)
            second = _LineClient(handle.address)
            try:
                assert first.exchange(canonical_json(
                    {"op": "hello", "tenant": "t",
                     "max_inflight": 4}))["ok"]
                again = second.exchange(canonical_json(
                    {"op": "hello", "tenant": "t", "max_inflight": 9}))
                same = second.exchange(canonical_json(
                    {"op": "hello", "tenant": "t", "max_inflight": 4}))
            finally:
                first.close()
                second.close()
        assert again["ok"] is False
        assert "cannot reconfigure" in again["error"]
        assert same["ok"] is True and same["tenant"] == "t"

    def test_hello_rejects_unknown_keys_and_bad_values(self):
        with AsyncDaemonHandle(workers=1) as handle:
            client = _LineClient(handle.address)
            try:
                unknown = client.exchange(canonical_json(
                    {"op": "hello", "tenant": "x", "turbo": True}))
                bad_mode = client.exchange(canonical_json(
                    {"op": "hello", "mode": "chaos"}))
                anon_quota = client.exchange(canonical_json(
                    {"op": "hello", "max_inflight": 3}))
            finally:
                client.close()
        assert unknown["ok"] is False and "turbo" in unknown["error"]
        assert bad_mode["ok"] is False and "chaos" in bad_mode["error"]
        assert anon_quota["ok"] is False
        assert "tenant name" in anon_quota["error"]

    def test_anonymous_tenants_are_discarded_on_disconnect(self):
        line = _stream("hom", 1, seed=3)[0]
        with AsyncDaemonHandle(workers=1) as handle:
            client = _LineClient(handle.address)
            try:
                assert client.exchange(line)["ok"]
                during = set(handle.service.tenants.stats())
            finally:
                client.close()
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                after = set(handle.service.tenants.stats())
                if after == {"default"}:
                    break
                time.sleep(0.01)
        assert any(name.startswith("conn-") for name in during)
        assert after == {"default"}

    def test_quota_validation(self):
        with pytest.raises(ReproError, match="max_inflight"):
            TenantQuota(max_inflight=0).validate()
        with pytest.raises(ReproError, match="deadline_ms"):
            TenantQuota(deadline_ms=-1.0).validate()
        with pytest.raises(ReproError, match="strategy"):
            TenantQuota(strategy="quantum").validate()

    def test_registry_rejects_unknown_override_keys(self):
        registry = TenantRegistry(MetricsRegistry())
        with pytest.raises(ReproError, match="turbo"):
            registry.get_or_create("t", {"turbo": 1})
        registry.close()


# ----------------------------------------------------------------------
# Backpressure + drain
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_overload_answers_structured_records(self):
        lines = _stream("hom", 8, seed=51)
        with AsyncDaemonHandle(workers=1, max_queue=1,
                               max_inflight=1) as handle:
            client = _LineClient(handle.address)
            try:
                for line in lines:
                    client.send(line)
                answers = [client.recv() for _ in lines]
            finally:
                client.close()
        rejected = [a for a in answers
                    if a.get("error_kind") == "overloaded"]
        answered = [a for a in answers if a.get("ok")]
        assert rejected, "flooding past the quota must reject"
        assert answered, "admitted work must still answer"
        assert len(rejected) + len(answered) == len(lines)
        for record in rejected:
            assert record["ok"] is False
            assert record["reason"] in ("tenant-quota", "queue-full")
        assert handle.service.stats()["service"]["overloaded"] == \
            len(rejected)

    @staticmethod
    def _stall_executor(service):
        """Park every executor thread on a gate so admitted work
        stays queued — a deterministic drain-with-in-flight window."""
        gate = threading.Event()
        for _ in range(service.workers):
            service._executor.submit(gate.wait)
        return gate

    def test_drain_answers_inflight_and_rejects_new(self):
        lines = _stream("hom", 6, seed=61)
        with AsyncDaemonHandle(workers=2) as handle:
            gate = self._stall_executor(handle.service)
            client = _LineClient(handle.address)
            control = DaemonClient(host=handle.address[0],
                                   port=handle.address[1])
            try:
                for line in lines:
                    client.send(line)
                # The tasks are admitted but cannot evaluate yet: the
                # drain arrives with all six genuinely in flight.
                answer = control.drain()
                assert answer["ok"] and answer["draining"]
                late = control.control("ping")
                assert late["ok"]  # control ops still answer
                gate.set()
                served = [client.recv() for _ in lines]
            finally:
                gate.set()
                control.close()
                client.close()
        # Everything admitted before the drain was answered (order
        # preserved); nothing was dropped mid-flight.
        assert [record["id"] for record in served] == \
            [json.loads(line)["id"] for line in lines]
        assert all(record.get("ok") for record in served)

    def test_draining_rejects_new_tasks_with_reason(self):
        lines = _stream("hom", 2, seed=3)
        with AsyncDaemonHandle(workers=1) as handle:
            gate = self._stall_executor(handle.service)
            client = _LineClient(handle.address)
            try:
                client.send(lines[0])       # admitted, held by the gate
                time.sleep(0.05)            # let admission happen
                handle.service.request_drain()
                client.send(lines[1])       # refused at admission
                gate.set()
                held = client.recv()
                refused = client.recv()
            finally:
                gate.set()
                client.close()
        assert held["ok"] is True
        assert refused["error_kind"] == "overloaded"
        assert refused["reason"] == "draining"


# ----------------------------------------------------------------------
# HTTP / WebSocket facade
# ----------------------------------------------------------------------
class TestHttpGate:
    def test_http_endpoints(self):
        line = _stream("hom", 1, seed=3)[0]
        expected = list(iter_results([line], workers=1))[0]
        with AsyncDaemonHandle(workers=1, http_port=0) as handle:
            host, port = handle.http_address
            base = f"http://{host}:{port}"
            health = json.loads(urllib.request.urlopen(
                base + "/healthz", timeout=10).read())
            assert health == {"draining": False, "ok": True}

            text = urllib.request.urlopen(
                base + "/metrics", timeout=10).read().decode()
            assert "service_workers" in text
            assert "# TYPE" in text

            request = urllib.request.Request(
                base + "/task", data=line.encode("utf-8"), method="POST")
            answer = urllib.request.urlopen(request, timeout=10).read()
            assert answer.decode("utf-8") == expected

            with pytest.raises(urllib.error.HTTPError) as missing:
                urllib.request.urlopen(base + "/nothing", timeout=10)
            assert missing.value.code == 404

    def test_http_draining_maps_to_503(self):
        lines = _stream("hom", 2, seed=3)
        with AsyncDaemonHandle(workers=1, http_port=0) as handle:
            gate = TestBackpressure._stall_executor(handle.service)
            holder = _LineClient(handle.address)
            try:
                holder.send(lines[0])   # keeps the service in flight
                time.sleep(0.05)
                handle.service.request_drain()
                host, port = handle.http_address
                request = urllib.request.Request(
                    f"http://{host}:{port}/task",
                    data=lines[1].encode("utf-8"), method="POST")
                with pytest.raises(urllib.error.HTTPError) as refused:
                    urllib.request.urlopen(request, timeout=10)
                assert refused.value.code == 503
                body = json.loads(refused.value.read())
                refused.value.close()
                assert body["reason"] == "draining"
                gate.set()
                assert holder.recv()["ok"]
            finally:
                gate.set()
                holder.close()

    def test_websocket_round_trip_matches_batch(self):
        lines = _stream("hom", 4, seed=71)
        batch = list(iter_results(lines, workers=1))
        with AsyncDaemonHandle(workers=2, http_port=0) as handle:
            host, port = handle.http_address
            report = run_load(host, port, lines, clients=2,
                              requests_per_client=4, transport="ws")
            assert report.errors == 0
            assert report.requests == 8
            # And a correctness pass: one ws connection, each line
            # echoed byte-identical (ws connections are multiplexed,
            # so correlate by rid).
            from repro.service.loadgen import _WebSocketTransport

            channel = _WebSocketTransport(host, port, timeout=10)
            try:
                for line, expected in zip(lines, batch):
                    record = json.loads(line)
                    record["rid"] = record["id"]
                    answer = json.loads(
                        channel.exchange(json.dumps(record)))
                    assert answer.pop("rid") == record["id"]
                    assert canonical_json(answer) == expected
            finally:
                channel.close()


# ----------------------------------------------------------------------
# Persistent client
# ----------------------------------------------------------------------
class TestPersistentClient:
    def test_client_reuses_one_connection(self):
        with AsyncDaemonHandle(workers=1) as handle:
            client = DaemonClient(host=handle.address[0],
                                  port=handle.address[1])
            try:
                for _ in range(5):
                    assert client.ping()["ok"]
                assert client.stats()["ok"]
                assert client.connects == 1
            finally:
                client.close()

    def test_client_reconnects_after_daemon_restart(self):
        # Reserve a port, serve on it, kill the daemon, serve again:
        # the same client object must answer across the restart.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = DaemonClient(host="127.0.0.1", port=port, retries=4)
        try:
            with AsyncDaemonHandle(port=port, workers=1):
                assert client.ping()["ok"]
                assert client.connects == 1
            with AsyncDaemonHandle(port=port, workers=1):
                assert client.ping()["ok"]
            assert client.connects >= 2
        finally:
            client.close()

    def test_per_request_mode_still_works(self):
        with AsyncDaemonHandle(workers=1) as handle:
            client = DaemonClient(host=handle.address[0],
                                  port=handle.address[1],
                                  persistent=False)
            assert client.ping()["ok"]
            assert client.ping()["ok"]
            assert client.connects == 2

    def test_client_against_threaded_daemon(self):
        # The persistent client speaks to the threaded daemon too:
        # its handler loops over lines on one connection.
        from repro.service import SolverService, serve_socket

        service = SolverService(workers=1)
        ready = threading.Event()
        bound = []
        thread = threading.Thread(
            target=serve_socket, args=(service,),
            kwargs={"port": 0, "ready": ready, "bound": bound},
            daemon=True)
        thread.start()
        assert ready.wait(timeout=10)
        host, port = bound[0]
        client = DaemonClient(host=host, port=port)
        try:
            assert client.ping()["ok"]
            assert client.stats()["ok"]
            assert client.connects == 1
        finally:
            client.shutdown()
            client.close()
            thread.join(timeout=10)
            service.close()


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------
class TestLoadGen:
    def test_percentile(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.99) == 7.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0

    def test_run_load_reports_counts_and_latency(self):
        lines = default_task_lines(4, seed=99)
        with AsyncDaemonHandle(workers=2) as handle:
            host, port = handle.address
            report = run_load(host, port, lines, clients=4,
                              requests_per_client=6,
                              transport="persistent")
        assert report.requests == 24
        assert report.errors == 0
        assert report.throughput_rps > 0
        assert 0 < report.p50_ms <= report.p99_ms
        summary = report.summary()
        assert summary["clients"] == 4
        assert summary["transport"] == "persistent"

    def test_run_load_rejects_unknown_transport(self):
        with pytest.raises(ReproError, match="transport"):
            run_load("127.0.0.1", 1, ["{}"], transport="carrier-pigeon")

    def test_run_load_requires_lines(self):
        with pytest.raises(ReproError, match="task line"):
            run_load("127.0.0.1", 1, [])

    def test_overload_counts_as_errors(self):
        lines = default_task_lines(4, seed=99)
        with AsyncDaemonHandle(workers=1, max_queue=1,
                               max_inflight=1) as handle:
            host, port = handle.address
            report = run_load(host, port, lines, clients=8,
                              requests_per_client=4,
                              transport="persistent")
        # Eight clients share the default tenant quota of one:
        # someone must have been rejected, and rejections are errors.
        assert report.errors > 0


# ----------------------------------------------------------------------
# Store sharing
# ----------------------------------------------------------------------
class TestSharedStore:
    def test_tenants_share_one_persistent_store(self, tmp_path):
        lines = _stream("hom", 6, seed=81)
        solo = list(iter_results(lines, workers=1))
        store_path = str(tmp_path / "shared.sqlite3")
        with AsyncDaemonHandle(workers=2,
                               store_path=store_path) as handle:
            alice = _LineClient(handle.address)
            bob = _LineClient(handle.address)
            try:
                assert alice.exchange(
                    '{"op": "hello", "tenant": "alice"}')["ok"]
                assert bob.exchange(
                    '{"op": "hello", "tenant": "bob"}')["ok"]
                got_a = [canonical_json(alice.exchange(line))
                         for line in lines]
                got_b = [canonical_json(bob.exchange(line))
                         for line in lines]
            finally:
                alice.close()
                bob.close()
        assert got_a == solo
        assert got_b == solo

    def test_locked_store_delegates_under_lock(self):
        class Probe:
            def __init__(self):
                self.calls = []

            def lookup(self, component, leaf):
                self.calls.append(("lookup", component, leaf))
                return 42

            def record(self, component, leaf, count):
                self.calls.append(("record", count))

            def flush(self):
                self.calls.append(("flush",))

            def stats(self):
                return {"entries": 1}

            def close(self):
                self.calls.append(("close",))

        probe = Probe()
        store = LockedStore(probe)
        assert store.lookup("c", "l") == 42
        store.record("c", "l", 7)
        store.flush()
        assert store.stats() == {"entries": 1}
        store.close()
        assert ("close",) in probe.calls
