"""Unit tests for Fact and Structure."""

import pytest

from repro.errors import StructureError
from repro.structures.schema import Schema
from repro.structures.structure import EMPTY_STRUCTURE, Fact, Structure, singleton


class TestFact:
    def test_basic(self):
        fact = Fact("R", ("a", "b"))
        assert fact.relation == "R"
        assert fact.terms == ("a", "b")
        assert fact.arity == 2

    def test_nullary(self):
        assert Fact("H").arity == 0

    def test_rename(self):
        renamed = Fact("R", ("a", "b")).rename({"a": "x"})
        assert renamed.terms == ("x", "b")

    def test_equality_and_hash(self):
        assert Fact("R", ("a",)) == Fact("R", ("a",))
        assert hash(Fact("R", ("a",))) == hash(Fact("R", ("a",)))

    def test_str(self):
        assert str(Fact("R", ("a", "b"))) == "R(a, b)"


class TestStructureConstruction:
    def test_from_tuples(self):
        s = Structure([("R", ("a", "b"))])
        assert s.has_fact("R", ("a", "b"))

    def test_duplicate_facts_collapse(self):
        s = Structure([("R", ("a", "b")), ("R", ("a", "b"))])
        assert s.count_facts() == 1

    def test_schema_inferred(self):
        s = Structure([("R", ("a", "b")), ("U", ("a",))])
        assert s.schema.arity("R") == 2
        assert s.schema.arity("U") == 1

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(StructureError):
            Structure([("R", ("a",)), ("R", ("a", "b"))])

    def test_schema_validation(self):
        with pytest.raises(StructureError):
            Structure([("R", ("a",))], schema=Schema({"R": 2}))
        with pytest.raises(StructureError):
            Structure([("T", ("a",))], schema=Schema({"R": 2}))

    def test_domain_must_cover_active_domain(self):
        with pytest.raises(StructureError):
            Structure([("R", ("a", "b"))], domain=["a"])

    def test_isolated_elements(self):
        s = Structure([("R", ("a", "b"))], domain=["a", "b", "c"])
        assert s.isolated_elements() == frozenset({"c"})
        assert s.active_domain() == frozenset({"a", "b"})
        assert s.domain() == frozenset({"a", "b", "c"})


class TestStructureAccessors:
    def test_tuples(self):
        s = Structure([("R", ("a", "b")), ("R", ("b", "c"))])
        assert s.tuples("R") == frozenset({("a", "b"), ("b", "c")})
        assert s.tuples("missing") == frozenset()

    def test_count_facts(self):
        s = Structure([("R", ("a", "b")), ("S", ("a",))])
        assert s.count_facts() == 2
        assert s.count_facts("R") == 1
        assert s.count_facts("T") == 0

    def test_len_is_fact_count(self):
        assert len(Structure([("R", ("a", "b"))])) == 1

    def test_iteration(self):
        facts = set(Structure([("R", ("a", "b"))]))
        assert facts == {Fact("R", ("a", "b"))}

    def test_empty_structure(self):
        assert EMPTY_STRUCTURE.count_facts() == 0
        assert not EMPTY_STRUCTURE

    def test_singleton(self):
        s = singleton("v")
        assert s.domain() == frozenset({"v"})
        assert s.count_facts() == 0
        assert s  # truthy: non-empty domain


class TestStructureTransforms:
    def test_rename(self):
        s = Structure([("R", ("a", "b"))]).rename({"a": 1, "b": 2})
        assert s.has_fact("R", (1, 2))

    def test_rename_non_injective_rejected(self):
        with pytest.raises(StructureError):
            Structure([("R", ("a", "b"))]).rename({"a": "x", "b": "x"})

    def test_tagged_disjointness(self):
        s = Structure([("R", ("a", "b"))])
        left, right = s.tagged(0), s.tagged(1)
        assert not (left.domain() & right.domain())

    def test_union_shares_constants(self):
        left = Structure([("R", ("a", "b"))])
        right = Structure([("S", ("b", "c"))])
        merged = left.union(right)
        assert merged.count_facts() == 2
        assert len(merged.domain()) == 3

    def test_restrict_domain(self):
        s = Structure([("R", ("a", "b")), ("R", ("b", "c"))])
        restricted = s.restrict_domain({"a", "b"})
        assert restricted.count_facts() == 1
        assert restricted.domain() == frozenset({"a", "b"})

    def test_with_schema(self):
        bigger = Schema({"R": 2, "S": 2})
        s = Structure([("R", ("a", "b"))]).with_schema(bigger)
        assert "S" in s.schema


class TestStructureEquality:
    def test_equal_same_facts_and_domain(self):
        assert Structure([("R", ("a", "b"))]) == Structure([("R", ("a", "b"))])

    def test_domain_matters(self):
        plain = Structure([("R", ("a", "b"))])
        padded = Structure([("R", ("a", "b"))], domain=["a", "b", "c"])
        assert plain != padded

    def test_hashable(self):
        assert len({Structure([("R", ("a", "b"))]),
                    Structure([("R", ("a", "b"))])}) == 1
