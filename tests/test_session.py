"""Session-scoped solver context: isolation, sharing, compatibility.

The contract under test (DESIGN.md §10):

* two sessions never leak memo state or statistics into each other;
* one session shared across decide → witness → refute reuses every
  compiled target and memoized count (zero redundant work on repeats,
  strictly less total work than isolated per-stage sessions);
* the legacy ``default_engine()`` singleton is a faithful shim over
  the module-level default session.
"""

from __future__ import annotations

import pytest

from repro.core.decision import decide_bag_determinacy
from repro.core.refuter import search_lattice_counterexample
from repro.core.witness import construct_counterexample
from repro.core.workbench import ViewCatalog
from repro.errors import ReproError
from repro.hom.engine import HomEngine, default_engine
from repro.queries.parser import parse_boolean_cq
from repro.session import (
    SolverSession,
    default_session,
    resolve_session,
    set_default_session,
)
from repro.structures.generators import clique_structure, path_structure


def _undetermined_instance():
    """An instance where the views do NOT determine the query."""
    view = parse_boolean_cq("R(x,y), R(y,z)")
    query = parse_boolean_cq("R(x,y)")
    return [view], query


def _memo_totals(engine_stats) -> tuple:
    return (engine_stats["misses"], engine_stats["exists_misses"],
            engine_stats["compiled_targets"])


# ----------------------------------------------------------------------
# Isolation
# ----------------------------------------------------------------------
class TestIsolation:
    def test_two_sessions_do_not_share_memo_or_stats(self):
        views, query = _undetermined_instance()
        first = SolverSession()
        second = SolverSession()
        assert first.engine is not second.engine

        decide_bag_determinacy(views, query, session=first)
        busy = first.stats()["engine"]
        idle = second.stats()["engine"]
        assert busy["exists_misses"] > 0
        assert idle["exists_misses"] == 0
        assert idle["compiled_targets"] == 0

        # The second session must redo the probes — nothing leaked over.
        decide_bag_determinacy(views, query, session=second)
        redone = second.stats()["engine"]
        assert redone["exists_misses"] == busy["exists_misses"]
        assert first.stats()["engine"]["exists_misses"] == busy["exists_misses"]

    def test_session_counts_do_not_touch_default_session(self):
        session = SolverSession()
        before = default_session().stats()["engine"]["misses"]
        session.count(path_structure(["R", "R"]), clique_structure(4))
        assert default_session().stats()["engine"]["misses"] == before
        assert session.stats()["engine"]["misses"] > 0

    def test_task_accounting_is_per_session(self):
        first = SolverSession()
        second = SolverSession()
        first.record_task(ok=True)
        first.record_task(ok=False)
        assert first.tasks_evaluated == 2 and first.task_errors == 1
        assert second.tasks_evaluated == 0 and second.task_errors == 0


# ----------------------------------------------------------------------
# Sharing across the pipeline
# ----------------------------------------------------------------------
class TestSharing:
    def test_result_carries_its_session(self):
        views, query = _undetermined_instance()
        session = SolverSession()
        result = decide_bag_determinacy(views, query, session=session)
        assert result.session is session

    def test_repeat_decision_is_pure_memo_hits(self):
        """The warm-request-stream property: answering the same request
        twice compiles nothing new and misses nothing."""
        views, query = _undetermined_instance()
        session = SolverSession()
        decide_bag_determinacy(views, query, session=session)
        first = session.stats()["engine"]
        decide_bag_determinacy(views, query, session=session)
        second = session.stats()["engine"]
        assert _memo_totals(second) == _memo_totals(first)
        assert second["exists_hits"] > first["exists_hits"]

    def test_witness_reuses_deciding_session(self):
        """decide → witness over one session: the witness construction
        runs on the very engine that decided (no private back-channel),
        and a second construction adds zero new compilation."""
        views, query = _undetermined_instance()
        session = SolverSession()
        result = decide_bag_determinacy(views, query, session=session)
        assert not result.determined

        pair = construct_counterexample(result)
        assert pair.verify(session.engine).ok
        after_first = session.stats()["engine"]
        assert after_first["misses"] > 0  # counting happened *here*

        construct_counterexample(result)
        after_second = session.stats()["engine"]
        assert _memo_totals(after_second) == _memo_totals(after_first)
        assert after_second["hits"] >= after_first["hits"]

    def test_shared_pipeline_beats_isolated_sessions(self):
        """decide → witness → refute sharing one session performs
        strictly less counting work than per-stage sessions — the
        cross-stage reuse the session refactor exists to deliver."""
        views, query = _undetermined_instance()

        shared = SolverSession()
        result = decide_bag_determinacy(views, query, session=shared)
        construct_counterexample(result)
        assert search_lattice_counterexample(views, query,
                                             session=shared) is not None
        shared_stats = shared.stats()["engine"]
        shared_work = (shared_stats["misses"]
                       + shared_stats["exists_misses"])
        assert shared_stats["hits"] + shared_stats["exists_hits"] > 0

        isolated_work = 0
        decide_session = SolverSession()
        isolated_result = decide_bag_determinacy(views, query,
                                                 session=decide_session)
        witness_session = SolverSession()
        construct_counterexample(isolated_result, session=witness_session)
        refute_session = SolverSession()
        search_lattice_counterexample(views, query, session=refute_session)
        for stage in (decide_session, witness_session, refute_session):
            stage_stats = stage.stats()["engine"]
            isolated_work += (stage_stats["misses"]
                              + stage_stats["exists_misses"])
        assert shared_work < isolated_work

    def test_view_catalog_shares_session_with_evolved_catalogs(self):
        catalog = ViewCatalog([parse_boolean_cq("R(x,y)")])
        grown = catalog.with_view(parse_boolean_cq("S(x,y)"))
        assert grown.session is catalog.session
        query = parse_boolean_cq("R(x,y), R(u,v)")
        assert catalog.can_answer(query)
        before = catalog.session.stats()["engine"]["exists_misses"]
        grown.decide(query)
        # the grown catalog's probes against the shared view all hit
        after = grown.session.stats()["engine"]
        assert after["exists_hits"] > 0
        assert after["exists_misses"] >= before  # only the new view misses


# ----------------------------------------------------------------------
# resolve_session / adoption semantics
# ----------------------------------------------------------------------
class TestResolution:
    def test_explicit_session_wins(self):
        session = SolverSession()
        assert resolve_session(session) is session

    def test_bare_engine_is_adopted(self):
        engine = HomEngine()
        session = resolve_session(None, engine)
        assert session.engine is engine

    def test_matching_session_and_engine_accepted(self):
        session = SolverSession()
        assert resolve_session(session, session.engine) is session

    def test_conflicting_session_and_engine_rejected(self):
        with pytest.raises(ReproError, match="disagree"):
            resolve_session(SolverSession(), HomEngine())

    def test_none_resolves_to_default(self):
        assert resolve_session() is default_session()

    def test_adopted_engine_refuses_reconfiguration(self):
        engine = HomEngine()
        with pytest.raises(ReproError, match="adopt"):
            SolverSession(engine=engine, strategy="dp")

    def test_store_and_store_path_are_mutually_exclusive(self):
        with pytest.raises(ReproError, match="not both"):
            SolverSession(store={}, store_path="somewhere.sqlite")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ReproError, match="strategy"):
            SolverSession(strategy="quantum")


# ----------------------------------------------------------------------
# Persistence ownership
# ----------------------------------------------------------------------
class TestStoreOwnership:
    def test_store_path_round_trip(self, tmp_path):
        path = str(tmp_path / "session.sqlite")
        source = path_structure(["R", "R"])
        target = clique_structure(4)
        with SolverSession(store_path=path) as session:
            expected = session.count(source, target)

        with SolverSession(store_path=path) as warm:
            assert warm.count(source, target) == expected
            assert warm.stats()["engine"]["store_hits"] == 1
            assert "store" in warm.stats()

    def test_close_is_idempotent(self, tmp_path):
        session = SolverSession(store_path=str(tmp_path / "s.sqlite"))
        session.count(path_structure(["R"]), clique_structure(3))
        session.close()
        session.close()

    def test_borrowed_store_not_closed(self, tmp_path):
        from repro.batch.cache import SQLiteHomStore

        store = SQLiteHomStore(str(tmp_path / "shared.sqlite"))
        session = SolverSession(store=store)
        session.count(path_structure(["R"]), clique_structure(3))
        session.close()
        # The borrowed store must still be usable by its owner.
        assert store.counts_len() >= 1
        store.close()


# ----------------------------------------------------------------------
# The default_engine() shim
# ----------------------------------------------------------------------
class TestDefaultEngineShim:
    def test_shim_is_the_default_sessions_engine(self):
        assert default_engine() is default_session().engine

    def test_shim_is_stable_across_calls(self):
        assert default_engine() is default_engine()

    def test_set_default_session_redirects_shim(self):
        scoped = SolverSession()
        previous = set_default_session(scoped)
        try:
            assert default_engine() is scoped.engine
            assert default_session() is scoped
        finally:
            set_default_session(previous)
        assert default_engine() is not scoped.engine

    def test_sessionless_decide_uses_default_session(self):
        scoped = SolverSession()
        previous = set_default_session(scoped)
        try:
            views, query = _undetermined_instance()
            result = decide_bag_determinacy(views, query)
            assert result.session is scoped
            assert scoped.stats()["engine"]["exists_misses"] > 0
        finally:
            set_default_session(previous)

    def test_legacy_engine_argument_still_works(self):
        views, query = _undetermined_instance()
        engine = HomEngine()
        result = decide_bag_determinacy(views, query, engine=engine)
        assert result.session.engine is engine
        assert engine.exists_misses > 0
