"""Unit tests for connected-component decomposition."""

from repro.structures.components import (
    component_count,
    connected_components,
    is_connected,
)
from repro.structures.generators import cycle_structure, path_structure
from repro.structures.operations import disjoint_union
from repro.structures.structure import Fact, Structure, singleton


class TestComponents:
    def test_single_edge_is_connected(self):
        assert is_connected(path_structure(["R"]))

    def test_disjoint_union_splits(self):
        two = disjoint_union(path_structure(["R"]), cycle_structure(3))
        parts = connected_components(two)
        assert len(parts) == 2
        sizes = sorted(len(p.domain()) for p in parts)
        assert sizes == [2, 3]

    def test_empty_structure_has_no_components(self):
        assert component_count(Structure()) == 0
        assert not is_connected(Structure())

    def test_isolated_vertex_is_singleton_component(self):
        s = Structure([("R", ("a", "b"))], domain=["a", "b", "c"])
        parts = connected_components(s)
        assert len(parts) == 2
        singleton_parts = [p for p in parts if not p.facts()]
        assert len(singleton_parts) == 1
        assert singleton_parts[0].domain() == frozenset({"c"})

    def test_single_isolated_vertex_connected(self):
        assert is_connected(singleton("v"))

    def test_nullary_fact_is_own_component(self):
        s = Structure([Fact("H", ()), ("R", ("a", "b"))])
        parts = connected_components(s)
        assert len(parts) == 2
        nullary = [p for p in parts if p.has_fact("H")]
        assert len(nullary) == 1
        assert not nullary[0].domain()

    def test_shared_constant_joins_facts(self):
        s = Structure([("R", ("a", "b")), ("S", ("b", "c"))])
        assert is_connected(s)

    def test_higher_arity_connectivity(self):
        s = Structure([("T", ("a", "b", "c")), ("T", ("c", "d", "e"))])
        assert is_connected(s)

    def test_components_cover_all_facts(self):
        s = Structure([
            ("R", ("a", "b")), ("R", ("c", "d")), ("S", ("d", "e")),
        ])
        parts = connected_components(s)
        total = sum(p.count_facts() for p in parts)
        assert total == s.count_facts()
        domains = [p.domain() for p in parts]
        assert frozenset().union(*domains) == s.domain()

    def test_deterministic_order(self):
        s = disjoint_union(cycle_structure(4), path_structure(["R"]))
        assert connected_components(s) == connected_components(s)
