"""Tests for the batch subsystem: codec, scenarios, store, runner, CLI."""

from __future__ import annotations

import json

import pytest

from repro.batch.cache import SQLiteHomStore
from repro.batch.runner import evaluate_line, iter_results, run_batch
from repro.batch.scenarios import generate_scenario, write_scenario
from repro.batch.tasks import (
    BatchCodecError,
    canonical_json,
    decode_task,
    encode_task,
    make_containment_task,
    make_decision_task,
    make_path_task,
    make_ucq_task,
    task_seed,
)
from repro.cli import main
from repro.hom.engine import HomEngine
from repro.queries.parser import parse_boolean_cq, parse_path, parse_ucq
from repro.structures.generators import clique_structure, path_structure


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
class TestTaskCodec:
    def test_decision_round_trip(self):
        views = [parse_boolean_cq("R(x,y)"), parse_boolean_cq("S(x,y)")]
        query = parse_boolean_cq("R(x,y), S(u,v)")
        record = make_decision_task("t0", views, query, witness=True)
        task = decode_task(encode_task(record))
        assert task.id == "t0"
        assert task.kind == "decide-cq"
        assert task.witness is True
        assert list(task.views) == views
        assert task.query == query

    def test_containment_round_trip(self):
        record = make_containment_task(
            "c1", parse_boolean_cq("R(x,y), R(y,z)"), parse_boolean_cq("R(x,y)"))
        task = decode_task(encode_task(record))
        assert task.kind == "containment"
        assert task.container == parse_boolean_cq("R(x,y)")

    def test_path_and_ucq_round_trip(self):
        path_task = decode_task(encode_task(
            make_path_task("p1", [parse_path("A.B")], parse_path("A.B.C"))))
        assert path_task.query == parse_path("A.B.C")
        ucq_task = decode_task(encode_task(
            make_ucq_task("u1", [parse_ucq("P(x)")], parse_ucq("P(x) or R(x)"))))
        assert ucq_task.kind == "certify-ucq"
        assert len(ucq_task.views) == 1

    @pytest.mark.parametrize("line", [
        "not json",
        '["a", "list"]',
        '{"kind": "decide-cq"}',
        '{"id": "x", "kind": "nope"}',
        '{"id": "x", "kind": "decide-cq", "query": {"kind": "path", "letters": ["A"]}}',
        '{"id": "x", "kind": "decide-cq", "query": {"kind": "cq", "atoms": []}, "views": 3}',
    ])
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(BatchCodecError):
            decode_task(line)

    def test_task_seed_is_content_stable(self):
        record = make_decision_task("t0", [parse_boolean_cq("R(x,y)")],
                                    parse_boolean_cq("R(x,y)"))
        assert task_seed(record) == task_seed(json.loads(canonical_json(record)))
        other = make_decision_task("t1", [parse_boolean_cq("R(x,y)")],
                                   parse_boolean_cq("R(x,y)"))
        assert task_seed(record) != task_seed(other)


# ----------------------------------------------------------------------
# Scenario generator
# ----------------------------------------------------------------------
class TestScenarios:
    @pytest.mark.parametrize("kind", ["cq", "cq-witness", "containment",
                                      "path", "ucq", "dense", "hom", "mixed"])
    def test_deterministic_and_decodable(self, kind):
        first = generate_scenario(kind, 12, seed=5)
        second = generate_scenario(kind, 12, seed=5)
        assert [canonical_json(t) for t in first] == \
            [canonical_json(t) for t in second]
        assert len(first) == 12
        for record in first:
            decode_task(record)  # validates

    def test_seed_changes_scenario(self):
        assert [canonical_json(t) for t in generate_scenario("cq", 6, seed=1)] != \
            [canonical_json(t) for t in generate_scenario("cq", 6, seed=2)]

    def test_mixed_interleaves_all_kinds(self):
        records = generate_scenario("mixed", 10, seed=0)
        kinds = {record["kind"] for record in records}
        assert kinds == {"decide-cq", "containment", "decide-path", "certify-ucq"}
        # the dense family rides along inside decide-cq (its own id space)
        assert any(record["id"].startswith("dn-") for record in records)

    def test_dense_family_shape(self):
        """Dense tasks are decide-cq instances whose sources are the
        grid / chained-join shapes the DP counting backend targets."""
        records = generate_scenario("dense", 12, seed=7, width=3, length=4)
        assert all(record["kind"] == "decide-cq" for record in records)
        saw_wide = False
        for record in records:
            task = decode_task(record)
            body = task.query.frozen_body()
            assert body.relations_used() <= {"R", "S"}
            # controllable width: never wider than the knob allows
            from repro.hom.decompose import decompose

            decomposition = decompose(body)
            decomposition.validate(body)
            assert decomposition.width <= 4
            saw_wide = saw_wide or decomposition.width >= 2
        assert saw_wide  # some instances actually exercise width >= 2

    def test_unknown_kind_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            generate_scenario("nope", 3)

    def test_mixed_rejects_family_knobs(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="mixed"):
            generate_scenario("mixed", 8, n_views=16)

    def test_write_scenario(self, tmp_path):
        out = tmp_path / "scenario.jsonl"
        with open(out, "w") as sink:
            written = write_scenario(generate_scenario("path", 7, seed=0), sink)
        assert written == 7
        lines = out.read_text().splitlines()
        assert len(lines) == 7
        assert all(decode_task(line).kind == "decide-path" for line in lines)


# ----------------------------------------------------------------------
# Persistent store
# ----------------------------------------------------------------------
class TestSQLiteHomStore:
    def test_count_round_trip_and_iso_sharing(self, tmp_path):
        store = SQLiteHomStore(str(tmp_path / "cache.sqlite"), flush_every=1)
        component = path_structure(["R", "R"])
        target = clique_structure(4)
        assert store.lookup(component, target) is None
        store.record(component, target, 36)
        assert store.lookup(component, target) == 36
        # A renamed copy is found through the isomorphism fallback.
        renamed = component.rename({c: f"n{c}" for c in component.domain()})
        assert store.lookup(renamed, target) == 36
        assert store.counts_len() == 1
        store.close()

    def test_exists_round_trip(self, tmp_path):
        store = SQLiteHomStore(str(tmp_path / "cache.sqlite"), flush_every=1)
        source = path_structure(["R"])
        assert store.lookup_exists(source, clique_structure(3)) is None
        store.record_exists(source, clique_structure(3), True)
        store.record_exists(clique_structure(3), source, False)
        assert store.lookup_exists(source, clique_structure(3)) is True
        assert store.lookup_exists(clique_structure(3), source) is False
        assert store.exists_len() == 2

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        with SQLiteHomStore(path, flush_every=1) as store:
            store.record(path_structure(["R"]), clique_structure(3), 6)
        with SQLiteHomStore(path) as store:
            assert store.lookup(path_structure(["R"]), clique_structure(3)) == 6

    def test_big_counts_survive(self, tmp_path):
        store = SQLiteHomStore(str(tmp_path / "cache.sqlite"), flush_every=1)
        huge = 10 ** 40 + 7
        store.record(path_structure(["R"]), clique_structure(3), huge)
        assert store.lookup(path_structure(["R"]), clique_structure(3)) == huge

    def test_preload_seeds_engine(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        component = path_structure(["R", "R"])
        target = clique_structure(4)
        with SQLiteHomStore(path, flush_every=1) as store:
            engine = HomEngine(store=store)
            expected = engine.count(component, target)
        with SQLiteHomStore(path) as store:
            warmed = HomEngine()
            assert store.preload(warmed) > 0
            before = warmed.misses
            assert warmed.count(component, target) == expected
            assert warmed.misses == before  # served from the seeded memo

    def test_engine_store_hits_across_processes_simulated(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        component = path_structure(["R", "R", "R"])
        target = clique_structure(5)
        with SQLiteHomStore(path, flush_every=1) as store:
            first = HomEngine(store=store)
            truth = first.count(component, target)
            assert first.store_misses > 0
        with SQLiteHomStore(path) as store:
            second = HomEngine(store=store)
            assert second.count(component, target) == truth
            assert second.store_hits > 0

    def test_stats_shape(self, tmp_path):
        store = SQLiteHomStore(str(tmp_path / "cache.sqlite"))
        stats = store.stats()
        assert set(stats) == {"counts", "exists", "lookups", "lookup_hits",
                              "inserts", "corruptions", "retries"}

    def test_unserializable_source_still_persists(self, tmp_path):
        """Canonical keys freed the source side from the JSON wire
        format: only the *target* must serialize."""
        store = SQLiteHomStore(str(tmp_path / "cache.sqlite"), flush_every=1)
        weird = path_structure(["R"]).rename(
            {c: frozenset({c}) for c in path_structure(["R"]).domain()})
        target = clique_structure(3)
        store.record(weird, target, 6)
        assert store.lookup(weird, target) == 6
        # and an ordinary rename of the same class hits the same row
        assert store.lookup(path_structure(["R"]), target) == 6


class TestStoreSchemaVersioning:
    def test_fresh_store_is_stamped(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "cache.sqlite")
        with SQLiteHomStore(path) as store:
            store.record(path_structure(["R"]), clique_structure(3), 6)
        version = sqlite3.connect(path).execute(
            "PRAGMA user_version").fetchone()[0]
        from repro.batch.cache import SCHEMA_VERSION

        assert version == SCHEMA_VERSION

    def test_legacy_store_refused_with_clear_error(self, tmp_path):
        import sqlite3

        from repro.batch.cache import StoreFormatError

        path = str(tmp_path / "legacy.sqlite")
        connection = sqlite3.connect(path)
        with connection:
            # The PR 2-era layout: WL-digest buckets, user_version 0.
            connection.execute(
                "CREATE TABLE hom_counts (inv TEXT, target TEXT, "
                "source TEXT, value TEXT, PRIMARY KEY (inv, target, source))")
            connection.execute(
                "CREATE TABLE targets (hash TEXT PRIMARY KEY, json TEXT)")
        connection.close()
        with pytest.raises(StoreFormatError, match="pre-canonical-key"):
            SQLiteHomStore(path)

    def test_future_schema_version_refused(self, tmp_path):
        import sqlite3

        from repro.batch.cache import StoreFormatError

        path = str(tmp_path / "future.sqlite")
        connection = sqlite3.connect(path)
        connection.execute("PRAGMA user_version=99")
        connection.commit()
        connection.close()
        with pytest.raises(StoreFormatError, match="schema version 99"):
            SQLiteHomStore(path)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def _scenario_lines(kind, count, seed):
    return [encode_task(t) for t in generate_scenario(kind, count, seed=seed)]


def _line_id_of(line):
    return json.loads(line)["id"]


class TestRunner:
    def test_results_in_task_order(self):
        lines = _scenario_lines("mixed", 10, seed=2)
        results = list(iter_results(lines, workers=1))
        assert [json.loads(r)["id"] for r in results] == \
            [json.loads(line)["id"] for line in lines]

    def test_workers_do_not_change_bytes(self):
        lines = _scenario_lines("mixed", 16, seed=3)
        solo = list(iter_results(lines, workers=1))
        duo = list(iter_results(lines, workers=2, chunk_size=3))
        assert solo == duo

    def test_witness_tasks_are_deterministic(self):
        lines = _scenario_lines("cq-witness", 4, seed=1)
        first = list(iter_results(lines, workers=1))
        second = list(iter_results(lines, workers=2, chunk_size=1))
        assert first == second
        # At least one instance should be refuted with a verified pair.
        verified = [json.loads(r).get("witness", {}).get("verified")
                    for r in first]
        assert True in verified

    def test_error_records_keep_batch_alive(self):
        bad = '{"id": "broken", "kind": "decide-cq", "query": {"kind": "cq", "atoms": [["R", ["x"]]], "free": ["x"]}}'
        lines = [bad] + _scenario_lines("cq", 2, seed=0)
        results = [json.loads(r) for r in iter_results(lines, workers=1)]
        assert results[0]["ok"] is False
        assert "UnsupportedQueryError" in results[0]["error"]
        assert all(r["ok"] for r in results[1:])

    def test_shared_cache_between_runs(self, tmp_path):
        cache = str(tmp_path / "cache.sqlite")
        lines = _scenario_lines("cq", 8, seed=4)
        cold = list(iter_results(lines, workers=1, cache_path=cache))
        with SQLiteHomStore(cache) as store:
            assert len(store) > 0
        warm = list(iter_results(lines, workers=1, cache_path=cache))
        assert cold == warm

    def test_run_batch_resume(self, tmp_path):
        tasks = tmp_path / "tasks.jsonl"
        with open(tasks, "w") as sink:
            write_scenario(generate_scenario("mixed", 9, seed=6), sink)
        full = tmp_path / "full.jsonl"
        summary = run_batch(str(tasks), str(full), workers=1)
        metrics = summary.pop("metrics")
        assert summary == {"tasks": 9, "skipped": 0, "written": 9, "errors": 0,
                           "quarantined": 0, "retries": 0, "worker_restarts": 0}
        # The merged per-run registry movement rides in the summary.
        assert metrics["session.tasks.evaluated"] == 9

        partial = tmp_path / "partial.jsonl"
        partial.write_text(
            "".join(line + "\n"
                    for line in full.read_text().splitlines()[:4]))
        summary = run_batch(str(tasks), str(partial), workers=1, resume=True)
        assert summary["skipped"] == 4
        assert summary["written"] == 5
        assert partial.read_text() == full.read_text()

    def test_resume_repairs_torn_final_line(self, tmp_path):
        """A run killed mid-write leaves a partial last line; resume
        must drop it and re-answer that task instead of fusing bytes."""
        tasks = tmp_path / "tasks.jsonl"
        with open(tasks, "w") as sink:
            write_scenario(generate_scenario("path", 6, seed=8), sink)
        full = tmp_path / "full.jsonl"
        run_batch(str(tasks), str(full), workers=1)
        complete_ids = [_line_id_of(line)
                        for line in full.read_text().splitlines()]

        torn = tmp_path / "torn.jsonl"
        lines = full.read_text().splitlines()
        torn.write_text("".join(line + "\n" for line in lines[:3])
                        + lines[3][: len(lines[3]) // 2])  # no newline
        summary = run_batch(str(tasks), str(torn), workers=1, resume=True)
        assert summary["skipped"] == 3
        assert summary["written"] == 3
        resumed = torn.read_text().splitlines()
        assert sorted(_line_id_of(line) for line in resumed) == \
            sorted(complete_ids)
        for line in resumed:
            json.loads(line)  # every line is whole JSON again

    def test_evaluate_line_reports_unknown_id(self):
        engine = HomEngine()
        record = json.loads(evaluate_line("garbage", engine))
        assert record["ok"] is False
        assert record["id"] is None


# ----------------------------------------------------------------------
# CLI end-to-end
# ----------------------------------------------------------------------
class TestBatchCLI:
    def test_gen_run_cache(self, tmp_path, capsys):
        scenario = tmp_path / "scenario.jsonl"
        out1 = tmp_path / "out1.jsonl"
        out4 = tmp_path / "out4.jsonl"
        cache = tmp_path / "cache.sqlite"

        assert main(["batch", "gen", "--kind", "mixed", "--count", "24",
                     "--seed", "11", "--output", str(scenario)]) == 0
        assert len(scenario.read_text().splitlines()) == 24

        assert main(["batch", "run", "--input", str(scenario),
                     "--output", str(out1), "--workers", "1",
                     "--cache", str(cache)]) == 0
        assert main(["batch", "run", "--input", str(scenario),
                     "--output", str(out4), "--workers", "4",
                     "--chunk-size", "4", "--cache", str(cache)]) == 0
        assert out1.read_bytes() == out4.read_bytes()

        assert main(["batch", "cache", "--cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "existence verdicts" in out

    def test_cache_subcommand_rejects_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "typo.sqlite"
        assert main(["batch", "cache", "--cache", str(missing)]) == 2
        assert "no such cache file" in capsys.readouterr().err
        assert not missing.exists()  # inspection must not create a DB

    def test_gen_to_stdout(self, capsys):
        assert main(["batch", "gen", "--kind", "path", "--count", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all(decode_task(line).kind == "decide-path" for line in lines)
