"""Property-based invariance tests for the Theorem 3 decider.

These check *mathematical consequences of the definition* that the
implementation must respect, on randomized instances:

* monotonicity — adding views can only help determinacy;
* self-answering — q ∈ V0 always determines;
* invariance under variable renaming of any query;
* invariance under duplicating a view;
* irrelevant views (q ⊄set v) never change the verdict;
* the rewriting, when it exists, is a *verified* span certificate.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.linalg.span import verify_combination
from repro.queries.cq import cq_from_structure
from repro.structures.generators import (
    cycle_structure,
    path_structure,
    random_connected_structure,
)
from repro.structures.operations import sum_with_multiplicities
from repro.structures.schema import Schema
from repro.core.decision import decide_bag_determinacy

SCHEMA = Schema({"R": 2, "S": 2})
POOL = [
    path_structure(["R"]),
    path_structure(["R", "R"]),
    path_structure(["S"]),
    path_structure(["R", "S"]),
    cycle_structure(3),
]


def _random_query(rng: random.Random):
    pieces = [
        (rng.randint(0, 2), rng.choice(POOL))
        for _ in range(rng.randint(1, 3))
    ]
    if all(multiplicity == 0 for multiplicity, _ in pieces):
        pieces.append((1, POOL[0]))
    return cq_from_structure(sum_with_multiplicities(pieces))


def _instance(seed: int, n_views: int = 2):
    rng = random.Random(seed)
    return [_random_query(rng) for _ in range(n_views)], _random_query(rng)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_monotone_in_views(seed):
    views, query = _instance(seed)
    base = decide_bag_determinacy(views, query)
    extra = _random_query(random.Random(seed + 999_999))
    extended = decide_bag_determinacy(views + [extra], query)
    if base.determined:
        assert extended.determined


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_self_view_determines(seed):
    views, query = _instance(seed)
    result = decide_bag_determinacy(views + [query], query)
    assert result.determined


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_invariant_under_renaming(seed):
    views, query = _instance(seed)
    mapping = {v: f"fresh_{v}" for v in query.variables()}
    renamed_query = query.rename_variables(mapping)
    original = decide_bag_determinacy(views, query)
    renamed = decide_bag_determinacy(views, renamed_query)
    assert original.determined == renamed.determined


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_invariant_under_view_duplication(seed):
    views, query = _instance(seed)
    original = decide_bag_determinacy(views, query)
    duplicated = decide_bag_determinacy(views + views, query)
    assert original.determined == duplicated.determined


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_irrelevant_views_never_change_verdict(seed):
    views, query = _instance(seed)
    # a view over a relation the query never uses: q ⊄set v unless the
    # view maps into q — use a T-edge view, disjoint relation name.
    foreign = cq_from_structure(path_structure(["T"]))
    original = decide_bag_determinacy(views, query)
    extended = decide_bag_determinacy(views + [foreign], query)
    assert original.determined == extended.determined


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_span_certificate_verifies(seed):
    views, query = _instance(seed, n_views=3)
    result = decide_bag_determinacy(views, query)
    if result.determined:
        assert verify_combination(
            result.view_vectors, result.coefficients, result.query_vector
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_connected_random_views_corollary33(seed):
    """Random *connected* instances must satisfy Corollary 33: verdict
    iff the query is isomorphic to some view."""
    from repro.structures.isomorphism import are_isomorphic

    rng = random.Random(seed)
    views = [
        cq_from_structure(random_connected_structure(SCHEMA, rng.randint(1, 3),
                                                     rng=rng))
        for _ in range(2)
    ]
    query = cq_from_structure(
        random_connected_structure(SCHEMA, rng.randint(1, 3), rng=rng)
    )
    result = decide_bag_determinacy(views, query)
    expected = any(
        are_isomorphic(query.frozen_body(), v.frozen_body()) for v in views
    )
    assert result.determined == expected
