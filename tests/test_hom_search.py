"""Unit tests for backtracking homomorphism search."""

from repro.structures.generators import (
    clique_structure,
    cycle_structure,
    path_structure,
    star_structure,
)
from repro.structures.structure import Fact, Structure, singleton
from repro.hom.search import (
    count_homomorphisms_direct,
    exists_homomorphism,
    find_homomorphism,
    iter_homomorphisms,
)


class TestExistence:
    def test_edge_into_edge(self):
        edge = path_structure(["R"])
        assert exists_homomorphism(edge, edge)

    def test_path_into_shorter_path_fails(self):
        assert not exists_homomorphism(
            path_structure(["R", "R"]), path_structure(["R"])
        )

    def test_anything_into_loop(self):
        loop = cycle_structure(1)
        assert exists_homomorphism(path_structure(["R", "R", "R"]), loop)
        assert exists_homomorphism(clique_structure(3), loop)

    def test_odd_cycle_into_even_cycle_fails(self):
        assert not exists_homomorphism(cycle_structure(3), cycle_structure(4))

    def test_even_cycle_into_smaller_even(self):
        assert exists_homomorphism(cycle_structure(4), cycle_structure(2))

    def test_empty_source_always_maps(self):
        assert exists_homomorphism(Structure(), path_structure(["R"]))
        assert exists_homomorphism(Structure(), Structure())

    def test_nullary_fact_requires_presence(self):
        h = Structure([Fact("H", ())])
        assert exists_homomorphism(h, h)
        assert not exists_homomorphism(h, Structure())

    def test_relation_missing_in_target(self):
        assert not exists_homomorphism(path_structure(["S"]), path_structure(["R"]))

    def test_find_returns_valid_mapping(self):
        source = path_structure(["R", "R"])
        target = cycle_structure(3)
        mapping = find_homomorphism(source, target)
        assert mapping is not None
        for fact in source.facts():
            image = tuple(mapping[t] for t in fact.terms)
            assert image in target.tuples(fact.relation)

    def test_find_none_when_impossible(self):
        assert find_homomorphism(cycle_structure(3), path_structure(["R"])) is None


class TestEnumeration:
    def test_edge_into_path2(self):
        homs = list(iter_homomorphisms(path_structure(["R"]), path_structure(["R", "R"])))
        assert len(homs) == 2

    def test_edge_into_clique(self):
        homs = list(iter_homomorphisms(path_structure(["R"]), clique_structure(3)))
        assert len(homs) == 6

    def test_all_mappings_distinct(self):
        homs = list(iter_homomorphisms(path_structure(["R"]), clique_structure(3)))
        as_tuples = {tuple(sorted(h.items(), key=repr)) for h in homs}
        assert len(as_tuples) == len(homs)

    def test_isolated_vertices_enumerated(self):
        source = singleton("v")
        target = path_structure(["R"])
        homs = list(iter_homomorphisms(source, target))
        assert len(homs) == 2


class TestDirectCounting:
    def test_cycle_into_itself(self):
        # A directed 3-cycle has exactly 3 homs into itself (rotations).
        assert count_homomorphisms_direct(cycle_structure(3), cycle_structure(3)) == 3

    def test_edge_into_star(self):
        assert count_homomorphisms_direct(path_structure(["R"]), star_structure(4)) == 4

    def test_count_matches_enumeration(self):
        source = path_structure(["R", "R"])
        target = clique_structure(3)
        enumerated = len(list(iter_homomorphisms(source, target)))
        assert count_homomorphisms_direct(source, target) == enumerated

    def test_isolated_vertices_multiply(self):
        source = Structure([("R", ("a", "b"))], domain=["a", "b", "c"])
        target = clique_structure(3)
        base = count_homomorphisms_direct(path_structure(["R"]), target)
        assert count_homomorphisms_direct(source, target) == base * 3

    def test_empty_source_counts_one(self):
        assert count_homomorphisms_direct(Structure(), cycle_structure(3)) == 1

    def test_zero_when_impossible(self):
        assert count_homomorphisms_direct(cycle_structure(3), cycle_structure(4)) == 0
