"""Unit tests for q-walks and Lemma 15 reductions."""

import pytest

from repro.errors import QueryError
from repro.queries.parser import parse_path
from repro.queries.path import signed_word
from repro.core.qwalk import (
    format_signed_word,
    is_q_walk,
    make_signed_word,
    reduce_minus_plus_once,
    reduce_plus_minus_once,
    reduce_to_query,
    walk_height_profile,
)

ABCD = parse_path("A.B.C.D")


def example13_walk():
    """(ABC)(BC)^{-1}(BCD) = A B C C⁻¹ B⁻¹ B C D (Example 13)."""
    return make_signed_word([
        (parse_path("A.B.C"), 1),
        (parse_path("B.C"), -1),
        (parse_path("B.C.D"), 1),
    ])


class TestDefinition12:
    def test_plain_query_word_is_a_walk(self):
        assert is_q_walk(signed_word(ABCD, 1), ABCD)

    def test_example13_walk(self):
        walk = example13_walk()
        assert walk == (
            ("A", 1), ("B", 1), ("C", 1),
            ("C", -1), ("B", -1),
            ("B", 1), ("C", 1), ("D", 1),
        )
        assert is_q_walk(walk, ABCD)

    def test_height_must_stay_in_range(self):
        # Dips below 0.
        assert not is_q_walk((("A", -1),), ABCD)
        # Ends early.
        assert not is_q_walk((("A", 1),), ABCD)

    def test_letters_must_match_position(self):
        # At height 0 only 'A' may go up.
        assert not is_q_walk((("B", 1),), ABCD)
        # After A at height 1 only B may go up, only A down.
        assert not is_q_walk((("A", 1), ("C", 1)), ABCD)

    def test_height_cannot_exceed_length(self):
        q = parse_path("A")
        walk = (("A", 1), ("A", -1), ("A", 1))
        assert is_q_walk(walk, q)
        too_high = (("A", 1), ("A", 1))
        assert not is_q_walk(too_high, q)

    def test_height_profile(self):
        assert walk_height_profile(example13_walk()) == [0, 1, 2, 3, 2, 1, 2, 3, 4]


class TestReductions:
    def test_plus_minus_cancellation(self):
        walk = example13_walk()
        reduced = reduce_plus_minus_once(walk)
        # C C⁻¹ cancels first.
        assert reduced == (
            ("A", 1), ("B", 1), ("B", -1), ("B", 1), ("C", 1), ("D", 1)
        )

    def test_minus_plus_cancellation(self):
        walk = example13_walk()
        reduced = reduce_minus_plus_once(walk)
        # B⁻¹ B cancels first.
        assert reduced == (
            ("A", 1), ("B", 1), ("C", 1), ("C", -1), ("C", 1), ("D", 1)
        )

    def test_no_redex_returns_none(self):
        plain = signed_word(ABCD, 1)
        assert reduce_plus_minus_once(plain) is None
        assert reduce_minus_plus_once(plain) is None

    def test_lemma15_both_modes_reach_q(self):
        for mode in ("+/-", "-/+"):
            trace = reduce_to_query(example13_walk(), ABCD, mode=mode)
            assert trace[0] == example13_walk()
            assert trace[-1] == signed_word(ABCD, 1)
            # every intermediate is still a q-walk
            for word in trace:
                assert is_q_walk(word, ABCD)

    def test_reduce_non_walk_rejected(self):
        with pytest.raises(QueryError):
            reduce_to_query((("Z", 1),), ABCD)

    def test_bad_mode_rejected(self):
        with pytest.raises(QueryError):
            reduce_to_query(signed_word(ABCD, 1), ABCD, mode="??")


def test_format_signed_word():
    assert format_signed_word(()) == "ε"
    assert format_signed_word((("A", 1), ("B", -1))) == "A.B⁻¹"
