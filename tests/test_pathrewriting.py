"""Unit tests for the path rewriting engine (Sections 3.2–3.3)."""

import random

import pytest

from repro.errors import DecisionError
from repro.linalg.linrel import LinearRelation
from repro.queries.evaluation import evaluate_path_query
from repro.queries.parser import parse_path
from repro.structures.generators import random_structure
from repro.structures.schema import Schema
from repro.core.pathdet import decide_path_determinacy
from repro.core.pathrewriting import (
    PathRewritingEngine,
    incidence_matrix,
    relation_of_walk,
    rewrite_and_answer,
    view_matrices,
    word_matrix,
)
from repro.core.qwalk import make_signed_word


SCHEMA_ABCD = Schema({letter: 2 for letter in "ABCD"})


def _random_db(seed, size=4, density=0.4, schema=SCHEMA_ABCD):
    return random_structure(schema, size, density, random.Random(seed))


class TestMatrices:
    def test_incidence_matrix_fact18(self):
        db = _random_db(1)
        order = sorted(db.domain())
        matrix = incidence_matrix(db, "A", order)
        for i, a in enumerate(order):
            for j, b in enumerate(order):
                expected = 1 if (a, b) in db.tuples("A") else 0
                assert matrix.entry(i, j) == expected

    def test_word_matrix_counts_walks(self):
        """Fact 18: w(D)[a_i, a_j] = M_w(i, j)."""
        db = _random_db(2)
        order = sorted(db.domain())
        word = parse_path("A.B")
        matrix = word_matrix(db, word, order)
        answers = evaluate_path_query(word, db)
        for i, a in enumerate(order):
            for j, b in enumerate(order):
                assert matrix.entry(i, j) == answers[(a, b)]

    def test_word_matrix_is_product(self):
        db = _random_db(3)
        order = sorted(db.domain())
        ab = word_matrix(db, parse_path("A.B"), order)
        a = word_matrix(db, parse_path("A"), order)
        b = word_matrix(db, parse_path("B"), order)
        assert ab == a.matmul(b)


class TestRelationOfWalk:
    def test_plain_word_is_graph_of_word_matrix(self):
        """Observation 20: H_w = graph(h_{M_w}) for w ∈ Σ*."""
        db = _random_db(4)
        order = sorted(db.domain())
        letters = {
            name: incidence_matrix(db, name, order) for name in "AB"
        }
        walk = make_signed_word([(parse_path("A.B"), 1)])
        relation = relation_of_walk(walk, letters, len(order))
        expected = LinearRelation.graph_of(word_matrix(db, parse_path("A.B"), order))
        assert relation == expected

    def test_corollary24_walk_equals_query(self):
        """For a q-walk w computed on a concrete D, H_w = H_q."""
        db = _random_db(5)
        order = sorted(db.domain())
        letters = {
            name: incidence_matrix(db, name, order) for name in "ABCD"
        }
        query = parse_path("A.B.C.D")
        walk = make_signed_word([
            (parse_path("A.B.C"), 1),
            (parse_path("B.C"), -1),
            (parse_path("B.C.D"), 1),
        ])
        walk_relation = relation_of_walk(walk, letters, len(order))
        query_relation = LinearRelation.graph_of(word_matrix(db, query, order))
        assert walk_relation == query_relation

    def test_missing_letter_matrix_raises(self):
        with pytest.raises(DecisionError):
            relation_of_walk((("Z", 1),), {}, 2)


class TestEngine:
    def test_reconstructs_query_matrix(self, example13_paths):
        views, query = example13_paths
        engine = PathRewritingEngine(decide_path_determinacy(views, query))
        for seed in range(6):
            db = _random_db(seed)
            order = sorted(db.domain())
            answers = view_matrices(db, views, order)
            reconstructed = engine.query_matrix(answers)
            assert reconstructed == word_matrix(db, query, order)

    def test_answer_multiset(self, example13_paths):
        views, query = example13_paths
        for seed in (11, 12, 13):
            db = _random_db(seed, size=5)
            assert rewrite_and_answer(views, query, db) == evaluate_path_query(
                query, db
            )

    def test_engine_refuses_undetermined(self):
        result = decide_path_determinacy([parse_path("B")], parse_path("A"))
        with pytest.raises(DecisionError):
            PathRewritingEngine(result)

    def test_missing_view_answer_raises(self, example13_paths):
        views, query = example13_paths
        engine = PathRewritingEngine(decide_path_determinacy(views, query))
        db = _random_db(20)
        order = sorted(db.domain())
        answers = view_matrices(db, views[:-1], order)
        with pytest.raises(DecisionError):
            engine.query_matrix(answers)

    def test_mixed_dimension_matrices_rejected(self, example13_paths):
        views, query = example13_paths
        engine = PathRewritingEngine(decide_path_determinacy(views, query))
        left = _random_db(21, size=3)
        right = _random_db(22, size=4)
        answers = view_matrices(left, views[:1], sorted(left.domain()))
        answers.update(view_matrices(right, views[1:], sorted(right.domain())))
        with pytest.raises(DecisionError):
            engine.query_matrix(answers)

    def test_noninvertible_view_matrices_still_work(self):
        """The whole point of the relation trick: view matrices need not
        be invertible.  Build a database where M_B is singular."""
        from repro.structures.structure import Structure

        views = [parse_path("A.B"), parse_path("B")]
        query = parse_path("A.B")
        db = Structure(
            [("A", (0, 1)), ("B", (1, 2)), ("B", (1, 3))],
            schema=Schema({"A": 2, "B": 2, "C": 2, "D": 2}),
            domain=range(4),
        )
        order = sorted(db.domain())
        m_b = incidence_matrix(db, "B", order)
        assert not m_b.is_nonsingular()
        assert rewrite_and_answer(views, query, db) == evaluate_path_query(query, db)
