"""Tests for evaluation matrices and answer vectors (Definition 37/51)."""

from repro.hom.count import count_homs
from repro.hom.matrix import answer_vector, evaluation_matrix
from repro.structures.expression import PowerExpression, as_expression, scaled_sum
from repro.structures.generators import cycle_structure, path_structure
from repro.structures.operations import sum_with_multiplicities


EDGE = path_structure(["R"])
PATH2 = path_structure(["R", "R"])
C3 = cycle_structure(3)


class TestEvaluationMatrix:
    def test_entries_are_hom_counts(self):
        matrix = evaluation_matrix([EDGE, C3], [PATH2, C3])
        assert matrix.entry(0, 0) == count_homs(EDGE, PATH2)
        assert matrix.entry(0, 1) == count_homs(EDGE, C3)
        assert matrix.entry(1, 0) == count_homs(C3, PATH2)
        assert matrix.entry(1, 1) == count_homs(C3, C3)

    def test_rectangular_shapes(self):
        matrix = evaluation_matrix([EDGE], [PATH2, C3, EDGE])
        assert (matrix.nrows, matrix.ncols) == (1, 3)

    def test_expression_targets(self):
        expr = PowerExpression(as_expression(C3), 2)
        matrix = evaluation_matrix([EDGE], [expr])
        assert matrix.entry(0, 0) == 9

    def test_shared_cache(self):
        cache = {}
        evaluation_matrix([EDGE, C3], [C3], cache)
        size_after_first = len(cache)
        evaluation_matrix([EDGE, C3], [C3], cache)
        assert len(cache) == size_after_first  # second pass fully cached

    def test_empty_matrix(self):
        matrix = evaluation_matrix([], [])
        assert matrix.nrows == 0


class TestAnswerVector:
    def test_matches_linearity(self):
        """answer_vector(Σ a_j s_j) = M · a (Lemma 4 additivity), the
        identity behind Definition 51's P."""
        basis = [EDGE, C3]
        targets = [PATH2, C3]
        matrix = evaluation_matrix(basis, targets)
        for a, b in ((1, 0), (2, 1), (0, 3)):
            database = sum_with_multiplicities([(a, PATH2), (b, C3)])
            vec = answer_vector(basis, database)
            expected = matrix.matvec([a, b])
            assert [int(v) for v in expected] == vec

    def test_expression_target(self):
        expr = scaled_sum([(2, C3)])
        assert answer_vector([EDGE], expr) == [6]
