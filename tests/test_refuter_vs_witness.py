"""Cross-validation: for undetermined instances where the lattice
refuter *can* find concrete small counterexamples, its pairs and the
Lemma 41 witness must tell the same story."""

import random

import pytest

from repro.queries.cq import cq_from_structure
from repro.queries.evaluation import evaluate_boolean
from repro.structures.generators import cycle_structure, path_structure
from repro.core.decision import decide_bag_determinacy
from repro.core.refuter import search_lattice_counterexample


CASES = [
    # (views as structures, query structure, label)
    ([cycle_structure(6)], cycle_structure(3), "triangle-vs-hexagon"),
    ([cycle_structure(4)], cycle_structure(3), "triangle-vs-square"),
    ([path_structure(["R", "R"])], path_structure(["R"]), "edge-vs-2path"),
]


@pytest.mark.parametrize("view_structures,query_structure,label", CASES)
def test_refuter_and_witness_agree(view_structures, query_structure, label):
    views = [cq_from_structure(s) for s in view_structures]
    query = cq_from_structure(query_structure)
    result = decide_bag_determinacy(views, query)
    assert not result.determined, label

    # Lemma 41 witness: always available, verified symbolically.
    pair = result.witness(rng=random.Random(1))
    assert pair.verify().ok, label

    # Lattice refuter: when it finds a pair, the pair must genuinely
    # refute (concrete structures, direct evaluation).
    refutation = search_lattice_counterexample(
        views, query, max_multiplicity=3, extra_random_blocks=2,
        rng=random.Random(2),
    )
    if refutation is not None:
        for view, (left, right) in zip(views, refutation.view_answers):
            assert left == right
            assert evaluate_boolean(view, refutation.left) == left
            assert evaluate_boolean(view, refutation.right) == right
        assert refutation.query_answers[0] != refutation.query_answers[1]


def test_witness_answers_scale_consistently():
    """The witness pair's view answers are equal *exactly*, not merely
    approximately — spot-check the integers are identical objects of
    arbitrary precision."""
    views = [cq_from_structure(cycle_structure(6))]
    query = cq_from_structure(cycle_structure(3))
    result = decide_bag_determinacy(views, query)
    report = result.witness(rng=random.Random(3)).verify()
    for left, right in report.view_answers:
        assert isinstance(left, int) and isinstance(right, int)
        assert left == right
        assert left > 0  # relevant views answer positively on witnesses
