"""The resident request service: protocol, parity, isolation, shutdown.

The headline contract (ISSUE 4 acceptance): a warm ``repro serve``
session answers a 200-task mixed JSONL stream **byte-identical** to
``repro batch run --workers 1``, with cross-request memo hits > 0.
"""

from __future__ import annotations

import io
import json
import socket
import threading
import time

import pytest

from repro.batch.runner import iter_results
from repro.batch.scenarios import generate_scenario
from repro.batch.tasks import (
    BatchCodecError,
    canonical_json,
    decode_task,
    make_hom_count_task,
)
from repro.errors import ReproError
from repro.obs import StructuredLogger
from repro.service import DaemonClient, SolverService, serve_socket, serve_stdio
from repro.session import SolverSession
from repro.structures.generators import clique_structure, path_structure


def _stream(kind: str, count: int, seed: int):
    return [canonical_json(record)
            for record in generate_scenario(kind, count, seed=seed)]


def _serve_lines(service: SolverService, lines) -> list:
    sink = io.StringIO()
    serve_stdio(service, source=iter(line + "\n" for line in lines),
                sink=sink)
    return sink.getvalue().splitlines()


# ----------------------------------------------------------------------
# Batch parity (the acceptance criterion)
# ----------------------------------------------------------------------
class TestBatchParity:
    def test_200_task_mixed_stream_matches_batch_run(self):
        lines = _stream("mixed", 200, seed=11)
        batch = list(iter_results(lines, workers=1))
        with SolverService(workers=2) as service:
            served = _serve_lines(service, lines)
            report = service.stats()
        assert served == batch  # byte-for-byte

        engine = report["session"]["engine"]
        # Cross-request reuse is the point of residency: the warm memo
        # answered some probes without recomputation.
        assert engine["hits"] + engine["exists_hits"] > 0
        assert report["service"]["requests"] == 200
        assert report["service"]["errors"] == 0
        assert report["session"]["tasks_evaluated"] == 200

    def test_hom_scenario_matches_batch_run(self):
        lines = _stream("hom", 16, seed=5)
        batch = list(iter_results(lines, workers=1))
        with SolverService() as service:
            assert _serve_lines(service, lines) == batch

    def test_iter_results_accepts_resident_session(self):
        """The service's inline-evaluation path: iter_results under a
        caller-owned session keeps the memo warm across streams."""
        lines = _stream("hom", 8, seed=9)
        session = SolverSession()
        first = list(iter_results(lines, workers=1, session=session))
        warm_before = session.stats()["engine"]["hits"]
        second = list(iter_results(lines, workers=1, session=session))
        assert first == second
        assert session.stats()["engine"]["hits"] > warm_before
        assert session.tasks_evaluated == 16

    def test_iter_results_rejects_session_with_workers(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="workers"):
            list(iter_results([], workers=2, session=SolverSession()))

    def test_iter_results_rejects_session_plus_cache_path(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="not both"):
            list(iter_results([], workers=1, session=SolverSession(),
                              cache_path="x.sqlite"))


# ----------------------------------------------------------------------
# The hom-count request kind
# ----------------------------------------------------------------------
class TestHomCountKind:
    def test_round_trip_and_answer(self):
        source = path_structure(["R", "R"])
        target = clique_structure(4)
        record = make_hom_count_task("h1", source, target)
        task = decode_task(canonical_json(record))
        assert task.kind == "hom-count"
        assert task.source == source
        assert task.target == target

        session = SolverSession()
        with SolverService(session=session) as service:
            [line] = _serve_lines(service, [canonical_json(record)])
        payload = json.loads(line)
        assert payload["ok"] is True
        assert int(payload["count"]) == session.count(source, target)

    def test_bad_payload_rejected(self):
        with pytest.raises(BatchCodecError, match="source"):
            decode_task('{"id": "x", "kind": "hom-count", '
                        '"source": 3, "target": 4}')

    def test_missing_target_rejected(self):
        source = path_structure(["R"])
        record = make_hom_count_task("x", source, source)
        del record["target"]
        with pytest.raises(BatchCodecError, match="target"):
            decode_task(record)


# ----------------------------------------------------------------------
# Control protocol
# ----------------------------------------------------------------------
class TestControlOps:
    def test_ping(self):
        with SolverService() as service:
            assert json.loads(service.handle_line('{"op": "ping"}')) == \
                {"ok": True, "op": "ping"}

    def test_stats_reports_service_and_session(self):
        lines = _stream("hom", 4, seed=2)
        with SolverService() as service:
            _serve_lines(service, lines)
            payload = json.loads(service.handle_line('{"op": "stats"}'))
        assert payload["ok"] is True
        stats = payload["stats"]
        assert stats["service"]["requests"] == 4
        assert stats["service"]["kinds"] == {"hom-count": 4}
        assert "hits" in stats["session"]["engine"]
        assert stats["service"]["mean_latency_ms"] >= 0.0

    def test_unknown_op_is_an_error_response(self):
        with SolverService() as service:
            payload = json.loads(service.handle_line('{"op": "dance"}'))
        assert payload["ok"] is False
        assert "dance" in payload["error"]

    def test_shutdown_stops_the_stream(self):
        lines = _stream("hom", 2, seed=3)
        source = [lines[0], '{"op": "shutdown"}', lines[1]]
        with SolverService() as service:
            responses = _serve_lines(service, source)
            assert service.shutting_down
        assert len(responses) == 2  # task result + shutdown ack, no more
        assert json.loads(responses[0])["kind"] == "hom-count"
        assert json.loads(responses[1]) == {"ok": True, "op": "shutdown"}

    def test_control_lines_are_not_tasks(self):
        with SolverService() as service:
            assert service.control_response("not json at all") is None
            assert service.control_response('{"kind": "hom-count"}') is None
            assert service.control_response('{"op": "ping"}') is not None


# ----------------------------------------------------------------------
# Error isolation
# ----------------------------------------------------------------------
class TestErrorIsolation:
    def test_poison_lines_do_not_kill_the_stream(self):
        lines = _stream("hom", 2, seed=7)
        source = ["garbage{{{",
                  '{"id": "u1", "kind": "unknown-kind"}',
                  lines[0],
                  '{"id": "", "kind": "hom-count"}',
                  lines[1]]
        with SolverService() as service:
            responses = _serve_lines(service, source)
            report = service.stats()
        assert len(responses) == 5
        verdicts = [json.loads(r)["ok"] for r in responses]
        assert verdicts == [False, False, True, False, True]
        assert report["service"]["errors"] == 3
        assert report["service"]["requests"] == 5

    def test_unexpected_exception_becomes_internal_error(self, monkeypatch):
        import repro.service.daemon as daemon

        def boom(line, context):
            raise ValueError("wired to fail")

        monkeypatch.setattr(daemon, "evaluate_envelope", boom)
        with SolverService() as service:
            payload = json.loads(service.evaluate('{"x": 1}'))
            report = service.stats()
        assert payload["ok"] is False
        assert payload["error"].startswith("InternalError")
        assert report["service"]["errors"] == 1
        # service and session accounting stay in step on error streams
        assert report["session"]["tasks_evaluated"] == 1
        assert report["session"]["task_errors"] == 1

    def test_adopted_session_refuses_reconfiguration(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="adopt"):
            SolverService(session=SolverSession(), store_path="x.sqlite")
        with pytest.raises(ReproError, match="adopt"):
            SolverService(session=SolverSession(), strategy="dp")

    def test_interactive_client_gets_response_before_next_request(self):
        """Request/response over a live pipe: the answer to request N
        must be flushed before the client sends request N+1 (the writer
        thread emits each response as it resolves — no batching until
        EOF)."""
        import time

        lines = _stream("hom", 2, seed=21)
        sink = io.StringIO()
        got_first = threading.Event()

        def interactive_source():
            yield lines[0] + "\n"
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if sink.getvalue().count("\n") >= 1:
                    got_first.set()
                    break
                time.sleep(0.005)
            yield lines[1] + "\n"

        with SolverService(workers=2) as service:
            serve_stdio(service, source=interactive_source(), sink=sink)
        assert got_first.is_set()
        assert len(sink.getvalue().splitlines()) == 2

    def test_ordering_preserved_with_concurrent_workers(self):
        lines = _stream("mixed", 40, seed=13)
        expected = list(iter_results(lines, workers=1))
        with SolverService(workers=4) as service:
            assert _serve_lines(service, lines) == expected


class TestPersistentStore:
    def test_store_survives_across_service_lifetimes(self, tmp_path):
        """Pool worker threads share the session's SQLite handle (the
        engine lock serializes access); a second daemon over the same
        store answers the whole stream from the preloaded warm memo."""
        path = str(tmp_path / "serve.sqlite")
        lines = _stream("hom", 12, seed=3)
        with SolverService(workers=4, store_path=path) as first:
            cold = _serve_lines(first, lines)
            assert first.stats()["service"]["errors"] == 0
        with SolverService(workers=4, store_path=path,
                           preload=2048) as second:
            warm = _serve_lines(second, lines)
            report = second.stats()
        assert warm == cold
        engine = report["session"]["engine"]
        assert engine["misses"] == 0  # everything came pre-warmed
        assert engine["hits"] > 0
        assert report["session"]["store"]["counts"] >= 1


# ----------------------------------------------------------------------
# Socket front-end
# ----------------------------------------------------------------------
class TestSocketMode:
    def test_tcp_round_trip_and_shutdown(self):
        service = SolverService(workers=2)
        ready = threading.Event()
        bound: list = []
        thread = threading.Thread(
            target=serve_socket, args=(service,),
            kwargs={"port": 0, "ready": ready, "bound": bound}, daemon=True)
        thread.start()
        assert ready.wait(10)
        host, port = bound[0]

        task = canonical_json(make_hom_count_task(
            "tcp-1", path_structure(["R"]), clique_structure(3)))
        with socket.create_connection((host, port), timeout=10) as conn:
            wire = conn.makefile("rw", encoding="utf-8")
            wire.write(task + "\n")
            wire.flush()
            answer = json.loads(wire.readline())
            assert answer["ok"] is True and answer["count"] == "6"
            wire.write('{"op": "stats"}\n')
            wire.flush()
            stats = json.loads(wire.readline())
            assert stats["stats"]["service"]["requests"] == 1
            wire.write('{"op": "shutdown"}\n')
            wire.flush()
            assert json.loads(wire.readline())["op"] == "shutdown"
        thread.join(timeout=10)
        assert not thread.is_alive()
        service.close()


# ----------------------------------------------------------------------
# Metrics control op + structured request logs
# ----------------------------------------------------------------------
class TestMetricsOp:
    def test_metrics_snapshot_schema(self):
        with SolverService(workers=1) as service:
            for line in _stream("hom", 3, seed=2):
                service.evaluate(line)
            response = json.loads(
                service.control_response('{"op": "metrics"}'))
        assert response["ok"] is True and response["op"] == "metrics"
        metrics = response["metrics"]
        # The documented namespaced schema, across every layer.
        assert metrics["service.requests"] == 3
        assert metrics["service.errors"] == 0
        assert metrics["service.requests.kind.hom-count"] == 3
        assert metrics["session.tasks.evaluated"] == 3
        assert metrics["engine.memo.misses"] >= 1
        assert metrics["engine.targets.compiled"] >= 1
        assert metrics["intern.structures"] >= 1
        assert metrics["service.workers"] == 1
        assert metrics["service.uptime_s"] >= 0
        # The per-request latency histogram, with log2 bucket labels.
        latency = metrics["service.request.latency_us"]
        assert latency["count"] == 3
        assert latency["sum"] > 0
        assert sum(latency["buckets"].values()) == 3
        assert all(le == str(int(le)) for le in latency["buckets"])

    def test_metrics_prometheus_exposition(self):
        with SolverService(workers=1) as service:
            service.evaluate(_stream("hom", 1, seed=2)[0])
            response = json.loads(service.control_response(
                '{"op": "metrics", "format": "prometheus"}'))
        assert response["format"] == "prometheus"
        text = response["exposition"]
        assert "# TYPE service_requests counter" in text
        assert "service_requests 1" in text
        assert "engine_memo_hits" in text
        assert 'service_request_latency_us_bucket{le="+Inf"} 1' in text

    def test_flat_stats_is_the_metrics_view(self):
        with SolverService(workers=1) as service:
            service.evaluate(_stream("hom", 1, seed=2)[0])
            flat = service.stats(flat=True)
            nested = service.stats()
        assert flat["service.requests"] == \
            nested["service"]["requests"] == 1
        assert flat["engine.memo.hits"] == \
            nested["session"]["engine"]["hits"]

    def test_drain_op_flips_shutdown(self):
        with SolverService(workers=1) as service:
            response = json.loads(
                service.control_response('{"op": "drain"}'))
            assert response == {"draining": True, "ok": True, "op": "drain"}
            assert service.shutting_down


class TestRequestLog:
    def test_log_lines_carry_request_ids_and_phases(self):
        sink = io.StringIO()
        logger = StructuredLogger(stream=sink, component="repro.serve")
        with SolverService(workers=1, logger=logger) as service:
            out = [service.evaluate(line)
                   for line in _stream("hom", 2, seed=3)]
        # Protocol output never gains log lines (byte-parity).
        assert all(json.loads(line)["ok"] for line in out)
        records = [json.loads(line)
                   for line in sink.getvalue().splitlines()]
        assert len(records) == 2
        ids = {record["request_id"] for record in records}
        assert len(ids) == 2
        for record in records:
            assert record["request_id"].startswith("req-")
            assert record["event"] == "request"
            assert record["kind"] == "hom-count"
            assert record["ok"] is True
            assert record["elapsed_ms"] >= 0
            assert "parse" in record["phases"]

    def test_no_logger_means_no_log_lines(self, capsys):
        with SolverService(workers=1) as service:
            service.evaluate(_stream("hom", 1, seed=3)[0])
        assert capsys.readouterr().err == ""


# ----------------------------------------------------------------------
# DaemonClient over a live TCP daemon
# ----------------------------------------------------------------------
class TestDaemonClient:
    def test_tcp_round_trips_and_drain(self):
        service = SolverService(workers=2)
        ready = threading.Event()
        bound: list = []
        thread = threading.Thread(
            target=serve_socket, args=(service,),
            kwargs={"port": 0, "ready": ready, "bound": bound}, daemon=True)
        thread.start()
        assert ready.wait(10)
        host, port = bound[0]
        client = DaemonClient(host=host, port=port, timeout=10)

        assert client.ping() == {"ok": True, "op": "ping"}

        task = canonical_json(make_hom_count_task(
            "client-1", path_structure(["R"]), clique_structure(3)))
        answer = client.request_line(task)
        assert answer["ok"] is True and answer["count"] == "6"

        stats = client.stats()
        assert stats["stats"]["service"]["requests"] == 1

        metrics = client.metrics()["metrics"]
        assert metrics["service.requests"] == 1
        assert metrics["session.tasks.evaluated"] == 1
        assert metrics["service.request.latency_us"]["count"] == 1

        exposition = client.metrics(format="prometheus")["exposition"]
        assert "service_requests 1" in exposition

        drained = client.drain()
        assert drained == {"draining": True, "ok": True, "op": "drain"}
        thread.join(timeout=10)
        assert not thread.is_alive()
        service.close()

        with pytest.raises(ReproError):
            client.ping()

    def test_unreachable_daemon_is_a_clean_error(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        client = DaemonClient(port=free_port, timeout=0.5)
        with pytest.raises(ReproError, match="cannot reach daemon"):
            client.ping()


# ----------------------------------------------------------------------
# CLI front-end
# ----------------------------------------------------------------------
class TestServeCli:
    def test_stdio_serve_command(self, monkeypatch, capsys):
        from repro.cli import main

        lines = _stream("hom", 3, seed=1) + ['{"op": "shutdown"}']
        monkeypatch.setattr("sys.stdin",
                            io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", "--workers", "2"]) == 0
        captured = capsys.readouterr()
        out_lines = captured.out.splitlines()
        assert len(out_lines) == 4
        assert all(json.loads(line) for line in out_lines)
        assert "repro serve:" in captured.err
        assert "3 requests" in captured.err


# ----------------------------------------------------------------------
# stdio writer-queue backpressure (bounded response queue)
# ----------------------------------------------------------------------
class TestStdioBackpressure:
    def test_slow_consumer_stalls_the_reader(self):
        """When the sink stops draining, the bounded response queue
        fills and the *reader* stalls — memory stays bounded instead
        of buffering the whole stream's responses."""
        total = 40
        lines = _stream("hom", total, seed=13)
        consumed = []
        gate = threading.Event()

        class StallingSink:
            def write(self, text: str) -> None:
                if not gate.wait(timeout=30):  # pragma: no cover
                    raise TimeoutError("test gate never opened")
                consumed.append(text)

            def flush(self) -> None:
                pass

        produced = []

        def source():
            for line in lines:
                produced.append(line)
                yield line + "\n"

        service = SolverService(workers=2)
        done = []
        thread = threading.Thread(
            target=lambda: done.append(serve_stdio(
                service, source=source(), sink=StallingSink(),
                max_pending=4)),
            daemon=True)
        thread.start()
        # The writer is stuck on the first response; the reader may
        # admit at most max_pending queued responses (plus the one in
        # the writer's hands and one in its own) before stalling.
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and len(produced) < 6:
            time.sleep(0.01)
        time.sleep(0.2)  # give a runaway reader time to overshoot
        stalled_at = len(produced)
        assert stalled_at < total, (
            "reader consumed the whole stream while the consumer was "
            "stalled — no backpressure")
        gate.set()
        thread.join(timeout=30)
        assert not thread.is_alive()
        service.close()
        assert done == [total]
        assert len(consumed) == total

    def test_max_pending_must_be_positive(self):
        with SolverService() as service:
            with pytest.raises(ReproError, match="max_pending"):
                serve_stdio(service, source=iter([]), sink=io.StringIO(),
                            max_pending=0)
