"""Edge cases and error paths across the library.

Collects the awkward inputs every module must survive: empty
everything, self-referential instances, degenerate dimensions, and the
library's own error taxonomy.
"""

from repro.errors import (
    DecisionError,
    LinalgError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
    StructureError,
    UnsupportedQueryError,
)


class TestErrorTaxonomy:
    def test_all_errors_are_repro_errors(self):
        for error_type in (SchemaError, QueryError, ParseError,
                           StructureError, LinalgError, DecisionError,
                           UnsupportedQueryError):
            assert issubclass(error_type, ReproError)

    def test_parse_error_is_query_error(self):
        assert issubclass(ParseError, QueryError)

    def test_serialization_error_is_repro_error(self):
        from repro.structures.serialization import SerializationError

        assert issubclass(SerializationError, ReproError)


class TestEmptyEverything:
    def test_empty_structure_hom_counts(self):
        from repro.hom.count import count_homs
        from repro.structures.structure import EMPTY_STRUCTURE, Structure

        assert count_homs(EMPTY_STRUCTURE, EMPTY_STRUCTURE) == 1
        assert count_homs(EMPTY_STRUCTURE, Structure([("R", ("a", "b"))])) == 1

    def test_empty_query_on_empty_structure(self):
        from repro.queries.cq import ConjunctiveQuery
        from repro.queries.evaluation import evaluate_boolean
        from repro.structures.structure import EMPTY_STRUCTURE

        assert evaluate_boolean(ConjunctiveQuery([]), EMPTY_STRUCTURE) == 1

    def test_decision_with_empty_query_and_views(self):
        from repro.queries.cq import ConjunctiveQuery
        from repro.core.decision import decide_bag_determinacy

        empty = ConjunctiveQuery([])
        result = decide_bag_determinacy([], empty)
        assert result.determined
        assert result.basis.dimension == 0

    def test_zero_dimensional_linear_algebra(self):
        from repro.linalg.matrix import QMatrix
        from repro.linalg.span import span_coefficients

        empty = QMatrix([])
        assert empty.nrows == 0 and empty.ncols == 0
        assert span_coefficients([], []) == ()

    def test_empty_relation_linear_relation(self):
        from repro.linalg.linrel import LinearRelation

        zero_dim = LinearRelation.identity(0)
        assert zero_dim.compose(zero_dim) == zero_dim


class TestSelfReference:
    def test_query_is_its_own_view_with_noise(self):
        from repro.queries.parser import parse_boolean_cq
        from repro.core.decision import decide_bag_determinacy

        q = parse_boolean_cq("R(x,y), S(y,z)")
        noise = parse_boolean_cq("T(a,b)")
        result = decide_bag_determinacy([noise, q, noise], q)
        assert result.determined

    def test_witness_deterministic_given_seed(self):
        import random
        from repro.queries.parser import parse_boolean_cq
        from repro.core.decision import decide_bag_determinacy
        from repro.core.witness import construct_counterexample

        q = parse_boolean_cq("R(x,y)")
        v = parse_boolean_cq("R(x,y), R(y,z)")
        result = decide_bag_determinacy([v], q)
        first = construct_counterexample(result, rng=random.Random(5))
        second = construct_counterexample(result, rng=random.Random(5))
        assert first.left_multiplicities == second.left_multiplicities
        assert first.parameter == second.parameter


class TestDegenerateDimensions:
    def test_one_by_one_cone(self):
        from fractions import Fraction
        from repro.linalg.cone import SimplicialCone
        from repro.linalg.matrix import QMatrix

        cone = SimplicialCone(QMatrix([[3]]))
        assert cone.contains([Fraction(6)])
        assert not cone.contains([Fraction(-1)])
        point = cone.interior_point()
        t = cone.perturbation_parameter((1,), point)
        assert t != 1

    def test_single_letter_path_query(self):
        from repro.queries.parser import parse_path
        from repro.core.pathdet import decide_path_determinacy

        q = parse_path("A")
        result = decide_path_determinacy([q], q)
        assert result.determined
        assert len(result.walk()) == 1

    def test_loop_only_instance(self):
        from repro.queries.parser import parse_boolean_cq
        from repro.core.decision import decide_bag_determinacy

        loop = parse_boolean_cq("R(x,x)")
        result = decide_bag_determinacy([loop], loop)
        assert result.determined

    def test_single_variable_unary_query_witness(self):
        from repro.queries.parser import parse_boolean_cq
        from repro.core.decision import decide_bag_determinacy

        q = parse_boolean_cq("U(x)")
        result = decide_bag_determinacy([], q)
        pair = result.witness()
        assert pair.verify().ok


class TestBigNumbers:
    def test_rewriting_with_large_counts(self):
        from fractions import Fraction
        from repro.queries.parser import parse_boolean_cq
        from repro.core.rewriting import MonomialRewriting

        q = parse_boolean_cq("R(x,y)")
        v = parse_boolean_cq("R(x,y), R(u,w)")
        rewriting = MonomialRewriting(q, (v,), (Fraction(1, 2),))
        big = 10 ** 50
        assert rewriting.evaluate([big ** 2]) == big

    def test_huge_multiset_scaling(self):
        from repro.structures.multiset import Multiset

        m = Multiset({"a": 1}).scale(10 ** 30)
        assert m["a"] == 10 ** 30

    def test_matrix_with_huge_exact_entries(self):
        from repro.linalg.matrix import QMatrix

        big = 10 ** 40
        m = QMatrix([[big, 1], [1, big]])
        assert m.is_nonsingular()
        assert m.inverse().matmul(m) == QMatrix.identity(2)
