"""Tests for the command-line front end."""

import json

import pytest

import repro.cli as cli
from repro.cli import _rewrite_legacy, build_parser, main


class TestDecideCQ:
    def test_determined(self, capsys):
        code = main([
            "decide-cq", "--view", "R(x,y)", "--query", "R(x,y), R(u,v)",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "DETERMINED" in out
        assert "rewriting" in out

    def test_not_determined_with_witness(self, capsys):
        code = main([
            "decide-cq", "--view", "R(x,y), R(y,z)", "--query", "R(x,y)",
            "--witness",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOT DETERMINED" in out
        assert "witness verified: True" in out

    def test_parse_error_reported(self, capsys):
        code = main(["decide-cq", "--query", "R(x,,y)"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err


class TestDecidePath:
    def test_determined(self, capsys):
        code = main([
            "decide-path",
            "--view", "A.B.C", "--view", "B.C", "--view", "B.C.D",
            "--query", "A.B.C.D",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "DETERMINED" in out
        assert "Theorem 1" in out

    def test_not_determined(self, capsys):
        code = main(["decide-path", "--view", "B", "--query", "A"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOT DETERMINED" in out


class TestCertifyUCQ:
    def test_example3(self, capsys):
        code = main([
            "certify-ucq",
            "--view", "P(x)", "--view", "P(x) or R(x)",
            "--query", "R(x)",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "DETERMINED via linear identity" in out

    def test_no_certificate(self, capsys):
        code = main(["certify-ucq", "--view", "P(x)", "--query", "R(x)"])
        out = capsys.readouterr().out
        assert code == 1
        assert "NO LINEAR CERTIFICATE" in out


class TestHilbert:
    def test_solvable(self, capsys):
        # negative coefficients need --monomial=... (argparse would
        # otherwise read "-1:y" as a flag)
        code = main([
            "hilbert", "--monomial", "1:x", "--monomial=-1:y",
            "--bound", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOT DETERMINED" in out

    def test_unsolvable(self, capsys):
        code = main([
            "hilbert", "--monomial", "1:x^2", "--monomial", "1:",
            "--bound", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "no counterexample" in out

    def test_monomial_syntax(self):
        from repro.cli import _parse_monomial

        m = _parse_monomial("-2:x^2*y")
        assert m.coefficient == -2
        assert m.degree("x") == 2
        assert m.degree("y") == 1
        constant = _parse_monomial("3:")
        assert constant.coefficient == 3
        assert constant.variables() == ()


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# ----------------------------------------------------------------------
# Grouped command tree + deprecated flat aliases
# ----------------------------------------------------------------------
class TestGroupedCommands:
    def test_decide_cq(self, capsys):
        code = main(["decide", "cq", "--view", "R(x,y)",
                     "--query", "R(x,y), R(u,v)"])
        assert code == 0
        assert "DETERMINED" in capsys.readouterr().out

    def test_decide_path(self, capsys):
        code = main(["decide", "path", "--view", "B", "--query", "A"])
        assert code == 0
        assert "NOT DETERMINED" in capsys.readouterr().out

    def test_decide_ucq(self, capsys):
        code = main(["decide", "ucq", "--view", "P(x)",
                     "--view", "P(x) or R(x)", "--query", "R(x)"])
        assert code == 0
        assert "DETERMINED via linear identity" in capsys.readouterr().out


class TestLegacyAliases:
    def test_rewrite_table(self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "_DEPRECATION_WARNED", False)
        assert _rewrite_legacy(["decide-cq", "--query", "q"]) == \
            ["decide", "cq", "--query", "q"]
        assert _rewrite_legacy(["decide-path", "--query", "A"]) == \
            ["decide", "path", "--query", "A"]
        assert _rewrite_legacy(["certify-ucq"]) == ["decide", "ucq"]
        assert _rewrite_legacy(["serve", "--workers", "2"]) == \
            ["serve", "start", "--workers", "2"]
        assert _rewrite_legacy(["serve"]) == ["serve", "start"]
        assert _rewrite_legacy(["bench", "--json"]) == \
            ["bench", "run", "--json"]
        assert _rewrite_legacy(["batch", "cache", "--cache", "x"]) == \
            ["cache", "info", "--cache", "x"]
        capsys.readouterr()  # drop the accumulated notices

    def test_grouped_spellings_pass_through(self):
        for argv in (["serve", "ping", "--port", "1"],
                     ["serve", "start"],
                     ["bench", "run", "--json"],
                     ["bench", "check", "--current", "x"],
                     ["batch", "run"],
                     ["batch", "gen"],
                     ["decide", "cq", "--query", "q"],
                     ["serve", "-h"],
                     ["bench", "--help"]):
            assert _rewrite_legacy(list(argv)) == argv

    def test_deprecation_notice_exactly_once_per_process(
            self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "_DEPRECATION_WARNED", False)
        assert main(["decide-path", "--view", "B", "--query", "A"]) == 0
        assert main(["decide-path", "--view", "B", "--query", "A"]) == 0
        err = capsys.readouterr().err
        assert err.count("deprecated") == 1
        assert "'decide-path'" in err
        assert "repro decide path" in err

    def test_grouped_spelling_prints_no_notice(self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "_DEPRECATION_WARNED", False)
        assert main(["decide", "path", "--view", "B", "--query", "A"]) == 0
        assert "deprecated" not in capsys.readouterr().err

    def test_legacy_spelling_still_works_end_to_end(self, capsys):
        code = main(["certify-ucq", "--view", "P(x)",
                     "--view", "P(x) or R(x)", "--query", "R(x)"])
        assert code == 0
        assert "DETERMINED via linear identity" in capsys.readouterr().out


# ----------------------------------------------------------------------
# cache info / flush
# ----------------------------------------------------------------------
class TestCacheCommands:
    @staticmethod
    def _seed_store(path):
        from repro.batch.cache import SQLiteHomStore
        from repro.structures.generators import clique_structure, path_structure

        with SQLiteHomStore(str(path)) as store:
            store.record(path_structure(["R"]), clique_structure(2), 4)
            store.record_exists(path_structure(["R"]), clique_structure(2),
                                True)

    def test_info_then_flush_then_empty(self, tmp_path, capsys):
        cache_file = tmp_path / "homs.sqlite"
        self._seed_store(cache_file)

        assert main(["cache", "info", "--cache", str(cache_file)]) == 0
        out = capsys.readouterr().out
        assert "1 persisted hom counts" in out
        assert "1 existence verdicts" in out

        assert main(["cache", "flush", "--cache", str(cache_file)]) == 0
        assert "flushed 2 persisted answers" in capsys.readouterr().out

        assert main(["cache", "info", "--cache", str(cache_file)]) == 0
        assert "0 persisted hom counts" in capsys.readouterr().out

    def test_missing_file_is_an_error_not_an_empty_store(
            self, tmp_path, capsys):
        missing = str(tmp_path / "nope.sqlite")
        for verb in ("info", "flush"):
            assert main(["cache", verb, "--cache", missing]) == 2
            assert "no such cache file" in capsys.readouterr().err


# ----------------------------------------------------------------------
# bench check (the regression gate as a CLI verb)
# ----------------------------------------------------------------------
class TestBenchCheck:
    @staticmethod
    def _report(path, seconds):
        path.write_text(json.dumps(
            {"suite": "repro-engine-bench", "repeat": 1,
             "workloads": {"w": {"thing_s": seconds}}}))

    def test_pass_and_fail_exit_codes(self, tmp_path, capsys):
        base, good, bad = (tmp_path / name for name in
                           ("base.json", "good.json", "bad.json"))
        self._report(base, 0.1)
        self._report(good, 0.11)
        self._report(bad, 9.9)
        assert main(["bench", "check", "--baseline", str(base),
                     "--current", str(good)]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(["bench", "check", "--baseline", str(base),
                     "--current", str(bad)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_unreadable_report_is_a_clean_error(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        self._report(base, 0.1)
        assert main(["bench", "check", "--baseline", str(base),
                     "--current", str(tmp_path / "absent.json")]) == 2
        assert "error:" in capsys.readouterr().err
