"""Tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main


class TestDecideCQ:
    def test_determined(self, capsys):
        code = main([
            "decide-cq", "--view", "R(x,y)", "--query", "R(x,y), R(u,v)",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "DETERMINED" in out
        assert "rewriting" in out

    def test_not_determined_with_witness(self, capsys):
        code = main([
            "decide-cq", "--view", "R(x,y), R(y,z)", "--query", "R(x,y)",
            "--witness",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOT DETERMINED" in out
        assert "witness verified: True" in out

    def test_parse_error_reported(self, capsys):
        code = main(["decide-cq", "--query", "R(x,,y)"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err


class TestDecidePath:
    def test_determined(self, capsys):
        code = main([
            "decide-path",
            "--view", "A.B.C", "--view", "B.C", "--view", "B.C.D",
            "--query", "A.B.C.D",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "DETERMINED" in out
        assert "Theorem 1" in out

    def test_not_determined(self, capsys):
        code = main(["decide-path", "--view", "B", "--query", "A"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOT DETERMINED" in out


class TestCertifyUCQ:
    def test_example3(self, capsys):
        code = main([
            "certify-ucq",
            "--view", "P(x)", "--view", "P(x) or R(x)",
            "--query", "R(x)",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "DETERMINED via linear identity" in out

    def test_no_certificate(self, capsys):
        code = main(["certify-ucq", "--view", "P(x)", "--query", "R(x)"])
        out = capsys.readouterr().out
        assert code == 1
        assert "NO LINEAR CERTIFICATE" in out


class TestHilbert:
    def test_solvable(self, capsys):
        # negative coefficients need --monomial=... (argparse would
        # otherwise read "-1:y" as a flag)
        code = main([
            "hilbert", "--monomial", "1:x", "--monomial=-1:y",
            "--bound", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOT DETERMINED" in out

    def test_unsolvable(self, capsys):
        code = main([
            "hilbert", "--monomial", "1:x^2", "--monomial", "1:",
            "--bound", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "no counterexample" in out

    def test_monomial_syntax(self):
        from repro.cli import _parse_monomial

        m = _parse_monomial("-2:x^2*y")
        assert m.coefficient == -2
        assert m.degree("x") == 2
        assert m.degree("y") == 1
        constant = _parse_monomial("3:")
        assert constant.coefficient == 3
        assert constant.variables() == ()


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
