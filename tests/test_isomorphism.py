"""Unit + property tests for isomorphism checking."""

import random

from hypothesis import given, settings, strategies as st

from repro.structures.generators import (
    clique_structure,
    cycle_structure,
    path_structure,
    random_structure,
    star_structure,
)
from repro.structures.isomorphism import (
    are_isomorphic,
    dedupe_up_to_isomorphism,
    find_isomorphism,
    invariant_key,
    refine_colors,
)
from repro.structures.schema import Schema
from repro.structures.structure import Fact, Structure


class TestBasicIsomorphism:
    def test_identical_structures(self):
        s = cycle_structure(4)
        assert are_isomorphic(s, s)

    def test_renamed_structures(self):
        s = cycle_structure(4)
        renamed = s.rename({i: f"n{i}" for i in range(4)})
        assert are_isomorphic(s, renamed)

    def test_different_cycle_lengths(self):
        assert not are_isomorphic(cycle_structure(3), cycle_structure(4))

    def test_path_vs_cycle(self):
        assert not are_isomorphic(path_structure(["R", "R"]), cycle_structure(3))

    def test_direction_matters(self):
        out_star = star_structure(2)
        in_star = Structure([("R", (0, "c")), ("R", (1, "c"))])
        assert not are_isomorphic(out_star, in_star)

    def test_isolated_vertices_matter(self):
        plain = path_structure(["R"])
        padded = Structure([("R", (0, 1))], domain=[0, 1, 2])
        assert not are_isomorphic(plain, padded)

    def test_nullary_facts(self):
        h = Structure([Fact("H", ())])
        c = Structure([Fact("C", ())])
        assert are_isomorphic(h, h)
        assert not are_isomorphic(h, c)

    def test_mapping_is_real_isomorphism(self):
        left = cycle_structure(5)
        right = left.rename({i: (i + 2) % 5 for i in range(5)})
        mapping = find_isomorphism(left, right)
        assert mapping is not None
        for fact in left.facts():
            image = tuple(mapping[t] for t in fact.terms)
            assert image in right.tuples(fact.relation)

    def test_none_when_not_isomorphic(self):
        assert find_isomorphism(cycle_structure(3), cycle_structure(4)) is None


class TestInvariantKey:
    def test_isomorphic_structures_share_key(self):
        s = clique_structure(3)
        renamed = s.rename({i: f"x{i}" for i in range(3)})
        assert invariant_key(s) == invariant_key(renamed)

    def test_key_separates_easy_cases(self):
        assert invariant_key(cycle_structure(3)) != invariant_key(cycle_structure(4))

    def test_refinement_separates_degrees(self):
        s = star_structure(3)
        colors = refine_colors(s)
        center_color = colors["c"]
        leaf_colors = {colors[i] for i in range(3)}
        assert center_color not in leaf_colors
        assert len(leaf_colors) == 1


class TestDedupe:
    def test_dedupes_isomorphic_copies(self):
        copies = [cycle_structure(3).rename({i: (tag, i) for i in range(3)})
                  for tag in range(4)]
        assert len(dedupe_up_to_isomorphism(copies)) == 1

    def test_keeps_distinct_classes(self):
        mixed = [cycle_structure(3), cycle_structure(4), path_structure(["R"])]
        assert len(dedupe_up_to_isomorphism(mixed)) == 3

    def test_preserves_first_occurrence_order(self):
        first = cycle_structure(3)
        second = cycle_structure(4)
        result = dedupe_up_to_isomorphism([first, second, first])
        assert result == [first, second]


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(1, 5))
def test_random_structure_isomorphic_to_own_renaming(seed, size):
    """Property: renaming constants never changes the isomorphism class."""
    rng = random.Random(seed)
    schema = Schema({"R": 2, "U": 1})
    s = random_structure(schema, size, density=0.4, rng=rng)
    shift = {c: ("moved", c) for c in s.domain()}
    assert are_isomorphic(s, s.rename(shift))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_adding_a_fact_breaks_isomorphism(seed):
    """Property: a strictly larger fact set is never isomorphic."""
    rng = random.Random(seed)
    schema = Schema({"R": 2})
    s = random_structure(schema, 3, density=0.3, rng=rng)
    missing = [
        (a, b)
        for a in s.domain()
        for b in s.domain()
        if (a, b) not in s.tuples("R")
    ]
    if not missing:
        return
    extra = Structure(
        list(s.facts()) + [Fact("R", rng.choice(missing))],
        domain=s.domain(),
    )
    assert not are_isomorphic(s, extra)
