"""Unit tests for schemas and relation symbols."""

import pytest

from repro.errors import SchemaError
from repro.structures.schema import RelationSymbol, Schema, binary_schema


class TestRelationSymbol:
    def test_basic(self):
        symbol = RelationSymbol("R", 2)
        assert symbol.name == "R"
        assert symbol.arity == 2

    def test_nullary_allowed(self):
        assert RelationSymbol("H", 0).arity == 0

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSymbol("R", -1)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSymbol("", 1)

    def test_equality_and_hash(self):
        assert RelationSymbol("R", 2) == RelationSymbol("R", 2)
        assert RelationSymbol("R", 2) != RelationSymbol("R", 3)
        assert hash(RelationSymbol("R", 2)) == hash(RelationSymbol("R", 2))


class TestSchema:
    def test_from_mapping(self):
        schema = Schema({"R": 2, "H": 0})
        assert schema.arity("R") == 2
        assert schema.arity("H") == 0

    def test_unknown_relation_raises(self):
        with pytest.raises(SchemaError):
            Schema({"R": 2}).arity("S")

    def test_conflicting_arities_rejected(self):
        with pytest.raises(SchemaError):
            Schema([RelationSymbol("R", 1), RelationSymbol("R", 2)])

    def test_names_sorted(self):
        assert Schema({"Z": 1, "A": 1}).names() == ("A", "Z")

    def test_contains(self):
        schema = Schema({"R": 2})
        assert "R" in schema
        assert "S" not in schema

    def test_max_arity(self):
        assert Schema({"R": 2, "T": 3}).max_arity() == 3
        assert Schema({}).max_arity() == 0

    def test_is_binary(self):
        assert Schema({"A": 2, "B": 2}).is_binary()
        assert not Schema({"A": 2, "U": 1}).is_binary()
        assert not Schema({}).is_binary()

    def test_has_nullary(self):
        assert Schema({"H": 0}).has_nullary()
        assert not Schema({"R": 2}).has_nullary()

    def test_union_merges(self):
        merged = Schema({"R": 2}).union(Schema({"S": 1}))
        assert set(merged.names()) == {"R", "S"}

    def test_union_conflicting_arity_rejected(self):
        with pytest.raises(SchemaError):
            Schema({"R": 2}).union(Schema({"R": 1}))

    def test_restrict(self):
        restricted = Schema({"R": 2, "S": 1}).restrict(["R"])
        assert restricted.names() == ("R",)

    def test_restrict_unknown_rejected(self):
        with pytest.raises(SchemaError):
            Schema({"R": 2}).restrict(["T"])

    def test_equality_and_hash(self):
        assert Schema({"R": 2}) == Schema({"R": 2})
        assert hash(Schema({"R": 2})) == hash(Schema({"R": 2}))


def test_binary_schema_helper():
    schema = binary_schema("AB")
    assert schema.is_binary()
    assert schema.names() == ("A", "B")
