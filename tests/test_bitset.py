"""Property tests for the bit-parallel counting kernels (DESIGN.md §12).

Four layers of guarantees:

* **mask vocabulary** — ``mask_of`` / ``iter_bits`` / ``bit_indices``
  round-trip arbitrary value sets and iterate in ascending value
  order regardless of how the mask was built (the determinism the
  kernels lean on: candidate order never depends on hash seeds);
* **packed keys** — the ``Σ value_i << (i·key_bits)`` layout is
  injective and field-recoverable at the field-width boundaries
  (domain sizes 1, 2, 63, 64, 65), and the FORGET splice formula is
  exactly "repack without that field";
* **counts** — the bitset backtracker, the set-domain backtracker,
  the packed DP and the set-keyed DP are bit-identical to the naive
  ground truth ``count_homomorphisms_direct`` on a random corpus
  covering disconnected sources, mixed arities (0..3), nullary facts
  and isolated elements, plus ``first_only`` short-circuit agreement;
* **plumbing** — the domain-size cap routes both engines onto the
  set-domain fallbacks (counters incremented, results unchanged), and
  the per-plan caches (base bitmask domains, resolved introduce
  programs, strategy verdicts) hit on repeats and stay LRU-bounded.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.hom.dpcount import (
    _DP_PACKED,
    _count_plan_dp_sets,
    count_plan_dp,
    dp_packed_stats,
)
from repro.hom.engine import (
    SourcePlan,
    TargetIndex,
    _BITSET_COUNTERS,
    _count,
    _count_bitset,
    _count_sets,
    bitset_stats,
    count_plan,
    source_plan,
)
from repro.hom.search import count_homomorphisms_direct
from repro.structures.generators import (
    grid_structure,
    path_structure,
    random_structure,
)
from repro.structures.interned import bit_indices, iter_bits, mask_of
from repro.structures.schema import Schema
from repro.structures.structure import Fact, Structure

# Same corpus shape as test_dpcount: nullary relation, arities up to 3.
SCHEMA = Schema({"R": 2, "S": 2, "P": 1, "T": 3, "N": 0})


def _random_pair(seed: int):
    rng = random.Random(seed)
    source = random_structure(SCHEMA, rng.randint(0, 5),
                              density=rng.choice((0.1, 0.3, 0.6)), rng=rng)
    target = random_structure(SCHEMA, rng.randint(0, 5),
                              density=rng.choice((0.1, 0.3, 0.6)), rng=rng)
    return source, target


def _all_kernels(source: Structure, target: Structure):
    """(direct truth, [kernel results]) for one (source, target) pair."""
    plan = source_plan(source)
    index = TargetIndex(target)
    truth = count_homomorphisms_direct(source, target)
    return truth, [
        _count_bitset(plan, index, False),
        _count_sets(plan, index, False),
        count_plan_dp(plan, index),
        _count_plan_dp_sets(plan, index),
    ]


# ----------------------------------------------------------------------
# Mask vocabulary
# ----------------------------------------------------------------------
@given(values=st.lists(st.integers(0, 200), max_size=40))
def test_mask_round_trips_value_sets(values):
    mask = mask_of(values)
    assert bit_indices(mask) == sorted(set(values))
    assert mask.bit_count() == len(set(values))


@given(values=st.sets(st.integers(0, 100), max_size=20),
       seed=st.integers(0, 1000))
def test_iteration_order_independent_of_build_order(values, seed):
    shuffled = list(values)
    random.Random(seed).shuffle(shuffled)
    assert mask_of(shuffled) == mask_of(sorted(values))
    produced = list(iter_bits(mask_of(shuffled)))
    assert produced == sorted(values)  # ascending, not insertion order


def test_empty_mask():
    assert mask_of(()) == 0
    assert bit_indices(0) == []
    assert list(iter_bits(0)) == []


# ----------------------------------------------------------------------
# Packed keys at field-width boundaries
# ----------------------------------------------------------------------
def _pack(values, kb):
    key = 0
    for position, value in enumerate(values):
        key |= value << (position * kb)
    return key


@given(n=st.sampled_from([1, 2, 63, 64, 65]), seed=st.integers(0, 500))
def test_packed_key_round_trip_at_boundaries(n, seed):
    index = TargetIndex(Structure([("R", (0, 0))], domain=range(n)))
    kb = index.key_bits
    assert index.domain_size == n
    assert kb == max(1, n.bit_length())
    rng = random.Random(seed)
    values = [rng.randrange(n) for _ in range(rng.randint(1, 6))]
    # Always exercise the field extremes somewhere in the tuple.
    values[0] = n - 1
    values[-1] = 0
    key = _pack(values, kb)
    vmask = (1 << kb) - 1
    unpacked = [(key >> (position * kb)) & vmask
                for position in range(len(values))]
    assert unpacked == values
    assert key >> (len(values) * kb) == 0  # no field overflow


@given(n=st.sampled_from([2, 63, 64, 65]), seed=st.integers(0, 500))
def test_forget_splice_is_repack_without_field(n, seed):
    kb = max(1, n.bit_length())
    rng = random.Random(seed)
    values = [rng.randrange(n) for _ in range(rng.randint(2, 6))]
    key = _pack(values, kb)
    position = rng.randrange(len(values))
    shift = position * kb
    below = (1 << shift) - 1
    above = shift + kb
    shrunk = (key & below) | ((key >> above) << shift)
    assert shrunk == _pack(values[:position] + values[position + 1:], kb)


# ----------------------------------------------------------------------
# Kernel agreement on the random corpus
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_all_four_kernels_match_direct_truth(seed):
    source, target = _random_pair(seed)
    truth, results = _all_kernels(source, target)
    assert results == [truth] * 4


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_first_only_agreement(seed):
    source, target = _random_pair(seed)
    plan = source_plan(source)
    index = TargetIndex(target)
    expected = 1 if count_homomorphisms_direct(source, target) else 0
    assert _count_bitset(plan, index, True) == expected
    assert _count_sets(plan, index, True) == expected


def test_disconnected_source_multiplies_components():
    # Two disjoint paths: the count is the product of the per-component
    # counts, and every kernel agrees on it.
    source = Structure([("R", ("a", "b")), ("R", ("b", "c")),
                        ("R", ("x", "y"))])
    target = Structure([("R", (i, j)) for i in range(4) for j in range(4)
                        if i != j], domain=range(4))
    truth, results = _all_kernels(source, target)
    assert truth == 4 * 3 * 3 * 4 * 3
    assert results == [truth] * 4


def test_mixed_constants_nullary_and_isolated():
    source = Structure(
        [("R", ("a", 1)), ("R", (1, ("t", 2))), ("S", (("t", 2), "a")),
         ("P", ("a",)), Fact("N", ())],
        domain=["a", 1, ("t", 2), "lonely"],
    )
    target = Structure(
        [("R", (u, v)) for u in range(3) for v in range(3)]
        + [("S", (u, v)) for u in range(3) for v in range(3)]
        + [("P", (u,)) for u in range(3)] + [Fact("N", ())],
        domain=range(3),
    )
    truth, results = _all_kernels(source, target)
    assert truth == 27 * 3  # free cube times the isolated |dom| factor
    assert results == [truth] * 4


def test_isolated_target_elements_widen_domains():
    # Target isolated elements are valid images only for source
    # variables without fact constraints; the bitset domains must not
    # include them for constrained variables.
    source = Structure([("R", ("a", "b"))], domain=["a", "b", "free"])
    target = Structure([("R", (0, 1))], domain=range(4))
    truth, results = _all_kernels(source, target)
    assert truth == 1 * 4  # one edge image, 4 images for "free"
    assert results == [truth] * 4


def test_grid_into_dense_target_agreement():
    source = grid_structure(2, 3, horizontal="R", vertical="R")
    chain = path_structure(["R"] * 4)
    target = Structure([("R", (i, j)) for i in range(5) for j in range(5)
                        if i != j], domain=range(5))
    for shape in (source, chain):
        truth, results = _all_kernels(shape, target)
        assert results == [truth] * 4


# ----------------------------------------------------------------------
# Fallback cap and counters
# ----------------------------------------------------------------------
def test_domain_cap_routes_to_set_kernels(monkeypatch):
    import repro.hom.engine as engine_module

    source = path_structure(["R"] * 3)
    target = Structure([("R", (i, (i + 1) % 5)) for i in range(5)],
                       domain=range(5))
    plan = source_plan(source)
    index = TargetIndex(target)
    truth = count_homomorphisms_direct(source, target)
    monkeypatch.setattr(engine_module, "_BITSET_MAX_DOMAIN", 2)
    before_bt = _BITSET_COUNTERS["fallbacks"]
    before_dp = _DP_PACKED["dp_fallbacks"]
    assert _count(plan, index, False) == truth
    assert count_plan_dp(plan, index) == truth
    assert _BITSET_COUNTERS["fallbacks"] >= before_bt + 2
    assert _DP_PACKED["dp_fallbacks"] == before_dp + 1


def test_stats_expose_bitset_and_packed_counters():
    source = path_structure(["R"] * 4)
    target = Structure([("R", (i, j)) for i in range(4) for j in range(4)
                        if i != j], domain=range(4))
    plan = source_plan(source)
    index = TargetIndex(target)
    before = _BITSET_COUNTERS["propagations"]
    _count_bitset(plan, index, False)
    assert _BITSET_COUNTERS["propagations"] > before
    count_plan_dp(plan, index)
    report = bitset_stats()
    assert set(report) == {"propagations", "fallbacks",
                           "dp_peak_entries", "dp_fallbacks"}
    assert report["dp_peak_entries"] == dp_packed_stats()["dp_peak_entries"]
    assert report["dp_peak_entries"] >= 1


# ----------------------------------------------------------------------
# Per-plan caches
# ----------------------------------------------------------------------
def _targets(count):
    return [Structure([("R", (i, j)) for i in range(n) for j in range(n)
                       if i != j], domain=range(n))
            for n in range(2, 2 + count)]


def test_base_domains_cached_per_target_structure():
    plan = source_plan(path_structure(["R"] * 3))
    index = TargetIndex(_targets(1)[0])
    first = plan.base_domain_masks(index)
    assert plan.base_domain_masks(index) is first  # cache hit
    # A distinct TargetIndex over the same structure object also hits.
    assert plan.base_domain_masks(TargetIndex(index.structure)) is first


def test_plan_caches_stay_lru_bounded():
    plan = source_plan(grid_structure(2, 3, horizontal="R", vertical="R"))
    truths = []
    for target in _targets(SourcePlan._BASE_DOMAIN_CACHE + 4):
        index = TargetIndex(target)
        truths.append(count_plan(plan, index, strategy="dp"))
        count_plan(plan, index, strategy="backtrack")
        count_plan(plan, index)  # auto: populates the strategy cache
    for cache in (plan._base_domains, plan._dp_resolved,
                  plan._strategy_cache):
        assert len(cache) <= SourcePlan._BASE_DOMAIN_CACHE
    # Warm repeats (cache hits) still produce the same counts.
    for target, truth in list(zip(_targets(12), truths))[-3:]:
        assert count_plan(plan, TargetIndex(target), strategy="dp") == truth
