"""Schema tests for the machine-readable bench suite and its CLI face.

The CI regression gate (``scripts/check_bench_regression.py``) consumes
``repro.cli bench --json`` output, so the shape of that report is a
compatibility contract — these tests pin it.
"""

from __future__ import annotations

import json

from repro.benchsuite import format_report, run_benchmarks, write_report
from repro.cli import main

EXPECTED_WORKLOADS = {
    "hom_large_target": {"direct_backtracking_s", "cold_engine_s", "speedup"},
    "hom_memoized": {"direct_backtracking_s", "memoized_engine_s", "speedup"},
    "hom_isomorphic_components": {"exact_key_dict_s", "canonical_engine_s",
                                  "speedup"},
    "hom_interning": {"pairwise_iso_dedup_s", "canonical_dedup_s",
                      "speedup_dedup", "large_target_direct_s",
                      "large_target_interned_s", "speedup_large_target"},
    "decision": {"decide_16_views_s"},
    "hom_treewidth": {"backtracking_engine_s", "dp_engine_s", "speedup",
                      "auto_picks_dp"},
    "hom_bitset": {"backtrack_set_s", "backtrack_bitset_s",
                   "speedup_backtrack", "dp_set_s", "dp_bitset_s",
                   "speedup_dp"},
    "service_throughput": {"cold_dispatch_per_task_s",
                           "warm_service_per_task_s", "speedup", "tasks"},
    "service_concurrency": {"threaded_per_request_s", "async_persistent_s",
                            "speedup", "threaded_throughput_rps",
                            "async_throughput_rps", "threaded_p50_ms",
                            "threaded_p99_ms", "async_p50_ms",
                            "async_p99_ms", "clients", "requests"},
    "linalg_det": {"gaussian_fraction_s", "bareiss_s", "speedup"},
    "store_tiered": {"singlefile_record_s", "tiered_record_s",
                     "speedup_record", "singlefile_lookup_s",
                     "tiered_lookup_s", "speedup_lookup", "rows"},
}


def _check_report_schema(report):
    assert report["suite"] == "repro-engine-bench"
    assert isinstance(report["repeat"], int) and report["repeat"] >= 1
    workloads = report["workloads"]
    assert set(workloads) == set(EXPECTED_WORKLOADS)
    for name, keys in EXPECTED_WORKLOADS.items():
        numbers = workloads[name]
        assert set(numbers) == keys, f"workload {name} drifted"
        for key, value in numbers.items():
            assert isinstance(value, float) and value >= 0.0, (name, key)
            if key.endswith("_s"):
                assert value < 60.0, f"{name}.{key} implausibly slow"
    stats = report["engine_stats"]
    for field in ("hits", "misses", "cached_counts", "compiled_targets"):
        assert isinstance(stats[field], int)


def test_run_benchmarks_schema():
    _check_report_schema(run_benchmarks(repeat=1))


def test_repeat_is_clamped_to_one():
    report = run_benchmarks(repeat=0)
    assert report["repeat"] == 1


def test_write_report_round_trips(tmp_path):
    path = tmp_path / "bench.json"
    report = write_report(path=str(path), repeat=1)
    on_disk = json.loads(path.read_text())
    _check_report_schema(on_disk)
    assert set(on_disk["workloads"]) == set(report["workloads"])


def test_format_report_mentions_every_workload():
    report = run_benchmarks(repeat=1)
    text = format_report(report)
    for name in EXPECTED_WORKLOADS:
        assert name in text
    assert "best of 1" in text


def test_cli_bench_json_output(tmp_path, capsys):
    path = tmp_path / "bench.json"
    assert main(["bench", "--json", "--output", str(path), "--repeat", "1"]) == 0
    out = capsys.readouterr().out
    assert str(path) in out
    _check_report_schema(json.loads(path.read_text()))


def test_cli_bench_output_flag_implies_json(tmp_path):
    path = tmp_path / "bench.json"
    assert main(["bench", "--output", str(path), "--repeat", "1"]) == 0
    assert path.exists()


# ----------------------------------------------------------------------
# The CI regression gate consuming these reports
# ----------------------------------------------------------------------
def _load_gate():
    import importlib.util
    from pathlib import Path

    script = Path(__file__).resolve().parent.parent / "scripts" / \
        "check_bench_regression.py"
    spec = importlib.util.spec_from_file_location("check_bench_regression",
                                                  script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _report(**timings):
    return {"suite": "repro-engine-bench", "repeat": 1,
            "workloads": {"w": dict(timings)}}


class TestRegressionGate:
    def test_identical_reports_pass(self):
        gate = _load_gate()
        report = _report(thing_s=0.5, speedup=2.0)
        _, failures = gate.compare(report, report)
        assert failures == []

    def test_regression_detected(self):
        gate = _load_gate()
        _, failures = gate.compare(_report(thing_s=0.1),
                                   _report(thing_s=0.5))
        assert failures == ["w.thing_s"]

    def test_tolerance_factor_and_slack(self):
        gate = _load_gate()
        # 1.9x is inside the default 2x gate; tiny absolute times sit
        # inside the additive slack even at huge relative blowups.
        _, failures = gate.compare(
            _report(thing_s=0.1, tiny_s=0.00001),
            _report(thing_s=0.19, tiny_s=0.004))
        assert failures == []

    def test_speedup_keys_are_ignored(self):
        gate = _load_gate()
        _, failures = gate.compare(_report(thing_s=0.1, speedup=100.0),
                                   _report(thing_s=0.1, speedup=1.0))
        assert failures == []

    def test_ablation_timings_are_ignored(self):
        gate = _load_gate()
        # Reference-implementation timings exist only to compute
        # speedups; a noisy runner slowing them down is not a product
        # regression and must not trip the gate.
        _, failures = gate.compare(
            _report(thing_s=0.1, direct_backtracking_s=0.02,
                    exact_key_dict_s=0.01, gaussian_fraction_s=0.01),
            _report(thing_s=0.1, direct_backtracking_s=0.9,
                    exact_key_dict_s=0.9, gaussian_fraction_s=0.9))
        assert failures == []

    def test_disjoint_reports_fail_loudly(self):
        gate = _load_gate()
        _, failures = gate.compare(_report(a_s=0.1),
                                   {"workloads": {"other": {"b_s": 0.1}}})
        assert failures

    def test_missing_workload_is_a_failure(self):
        gate = _load_gate()
        baseline = {"suite": "repro-engine-bench", "repeat": 1,
                    "workloads": {"kept": {"a_s": 0.1},
                                  "dropped": {"b_s": 0.1}}}
        current = {"suite": "repro-engine-bench", "repeat": 1,
                   "workloads": {"kept": {"a_s": 0.1}}}
        lines, failures = gate.compare(baseline, current)
        assert "dropped (missing workload)" in failures
        assert any("MISSING" in line for line in lines)

    def test_missing_gated_timing_is_a_failure(self):
        gate = _load_gate()
        _, failures = gate.compare(_report(a_s=0.1, b_s=0.2),
                                   _report(a_s=0.1))
        assert failures == ["w.b_s (missing timing)"]

    def test_main_exit_codes(self, tmp_path, capsys):
        gate = _load_gate()
        good = tmp_path / "good.json"
        bad = tmp_path / "bad.json"
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_report(thing_s=0.1)))
        good.write_text(json.dumps(_report(thing_s=0.11)))
        bad.write_text(json.dumps(_report(thing_s=9.9)))
        assert gate.main(["--baseline", str(base), "--current", str(good)]) == 0
        assert "PASS" in capsys.readouterr().out
        assert gate.main(["--baseline", str(base), "--current", str(bad)]) == 1
        assert "REGRESSED" in capsys.readouterr().out
