"""Property tests for the compiled counting engine (DESIGN.md §6.5).

The engine must be *bit-identical* to the naive recursive backtracking
counter ``count_homomorphisms_direct`` — that function is deliberately
kept simple so it can serve as ground truth here:

* `HomEngine` counts ≡ direct counts, on random structure pairs;
* cached and uncached counts agree (same engine asked twice, fresh
  engine vs shared engine, legacy dict cache);
* isomorphic renames of a source component hit the same memo entry and
  return the same count;
* Bareiss `det` ≡ textbook Fraction-Gauss `det`, and cached-elimination
  `rank`/`solve`/`nullspace` stay consistent, on random rational
  matrices.
"""

import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.hom.count import count_homs
from repro.hom.engine import HomEngine, TargetIndex, count_with_index
from repro.hom.search import count_homomorphisms_direct, exists_homomorphism
from repro.linalg.matrix import QMatrix, gaussian_det
from repro.structures.generators import (
    clique_structure,
    cycle_structure,
    path_structure,
    random_structure,
)
from repro.structures.schema import Schema
from repro.structures.structure import Fact, Structure

SCHEMA = Schema({"R": 2, "S": 2, "P": 1})


def _random_pair(seed: int):
    rng = random.Random(seed)
    source = random_structure(SCHEMA, rng.randint(1, 4),
                              density=rng.choice((0.2, 0.4, 0.7)), rng=rng)
    target = random_structure(SCHEMA, rng.randint(1, 5),
                              density=rng.choice((0.2, 0.4, 0.7)), rng=rng)
    return source, target


# ----------------------------------------------------------------------
# Engine ≡ direct ground truth
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_engine_matches_direct_on_random_pairs(seed):
    source, target = _random_pair(seed)
    assert count_homs(source, target) == count_homomorphisms_direct(source, target)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_count_with_index_matches_direct(seed):
    source, target = _random_pair(seed)
    index = TargetIndex(target)
    assert count_with_index(source, index) == \
        count_homomorphisms_direct(source, target)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_existence_matches_search(seed):
    source, target = _random_pair(seed)
    engine = HomEngine()
    assert engine.exists(source, target) == exists_homomorphism(source, target)
    # memoized second probe agrees
    assert engine.exists(source, target) == exists_homomorphism(source, target)


def test_engine_known_counts():
    path3 = path_structure(["R", "R", "R"])
    for n in (3, 4, 6):
        assert count_homs(path3, clique_structure(n)) == n * (n - 1) ** 3
    assert count_homs(cycle_structure(3), cycle_structure(3)) == 3
    assert count_homs(cycle_structure(3), cycle_structure(4)) == 0


def test_arity_mismatch_counts_zero():
    """A fact R(t̄) can only map onto same-arity R-facts; a wider (or
    narrower) target relation must yield zero, as direct search does."""
    binary = Structure([("R", ("x", "y"))])
    ternary = Structure([("R", ("a", "b", "c"))])
    unary = Structure([("R", ("x",))])
    for source, target in [(binary, ternary), (unary, ternary),
                           (unary, binary), (ternary, binary)]:
        engine = HomEngine()
        assert engine.count(source, target) == 0
        assert count_homs(source, target) == 0
        assert count_homomorphisms_direct(source, target) == 0
        assert not engine.exists(source, target)
        assert not exists_homomorphism(source, target)


def test_engine_nullary_and_isolated():
    nullary = Structure([Fact("H", ())])
    assert count_homs(nullary, nullary) == 1
    assert count_homs(nullary, Structure()) == 0
    lonely = Structure((), domain=["v"])
    assert count_homs(lonely, clique_structure(5)) == 5
    assert count_homs(Structure(), clique_structure(5)) == 1


# ----------------------------------------------------------------------
# Cached vs uncached
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_cached_equals_uncached(seed):
    source, target = _random_pair(seed)
    fresh = HomEngine()
    first = fresh.count(source, target)
    second = fresh.count(source, target)          # memo hit
    shared = count_homs(source, target)           # default engine
    legacy: dict = {}
    dict_cached = count_homs(source, target, legacy)
    assert first == second == shared == dict_cached


def test_dict_cache_still_fills():
    cache: dict = {}
    edge = path_structure(["R"])
    c3 = cycle_structure(3)
    assert count_homs(edge, c3, cache) == count_homs(edge, c3, cache) == 3
    assert cache  # legacy behavior: the dict owns its entries


# ----------------------------------------------------------------------
# Canonical-component memoization across isomorphic renames
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_isomorphic_renames_share_one_memo_entry(seed):
    source, target = _random_pair(seed)
    renamed = source.rename({c: ("renamed", c) for c in source.domain()})
    engine = HomEngine()
    baseline = engine.count(source, target)
    misses_before = engine.misses
    hits_before = engine.hits
    assert engine.count(renamed, target) == baseline
    # every component of the rename is isomorphic to one already
    # counted: no new leaf count may be computed.
    assert engine.misses == misses_before
    assert engine.hits > hits_before or not source.facts()


def test_canonicalization_distinguishes_non_isomorphic():
    from repro.structures.canonical import canonical_key

    engine = HomEngine()
    p2 = path_structure(["R", "R"])
    fork = Structure([("R", ("a", "b")), ("R", ("a", "c"))])  # out-star
    assert canonical_key(p2) != canonical_key(fork)
    k4 = clique_structure(4)
    assert engine.count(p2, k4) != engine.count(fork, k4) or True
    assert engine.count(p2, k4) == count_homomorphisms_direct(p2, k4)
    assert engine.count(fork, k4) == count_homomorphisms_direct(fork, k4)


def test_stats_and_clear():
    engine = HomEngine()
    engine.count(path_structure(["R"]), clique_structure(3))
    stats = engine.stats()
    assert stats["misses"] >= 1 and stats["compiled_targets"] >= 1
    assert stats["canonical"]["keys"] >= 1  # shared canonical-key layer
    assert stats["interning"]["structures"] >= 1
    engine.clear()
    assert engine.stats()["cached_counts"] == 0


def test_lru_bound_is_respected():
    engine = HomEngine(max_counts=4, max_targets=2)
    edge = path_structure(["R"])
    for n in range(2, 9):
        engine.count(edge, clique_structure(n))
    assert len(engine._counts) <= 4
    assert len(engine._targets) <= 2
    # evicted entries recompute correctly
    assert engine.count(edge, clique_structure(2)) == 2


def test_canonical_keys_shared_across_engines():
    """Canonical keys are module-level derived data: a second engine
    (and an engine after clear()) reuses the labelings instead of
    rebuilding per-engine representative tables."""
    from repro.structures.canonical import canonical_key

    target = clique_structure(3)
    sources = [path_structure(["R"] * length) for length in range(1, 8)]
    first = HomEngine(max_counts=5)
    for source in sources:
        first.count(source, target)
    before = canonical_key.cache_info().misses
    second = HomEngine(max_counts=5)
    for source in sources:
        second.count(source, target)
    # same component objects -> every canonical key served from cache
    assert canonical_key.cache_info().misses == before
    first.clear()
    assert first.count(path_structure(["R"]), target) == 6


# ----------------------------------------------------------------------
# Bareiss / cached elimination vs textbook Fraction Gauss
# ----------------------------------------------------------------------
def _random_matrix(seed: int) -> QMatrix:
    rng = random.Random(seed)
    size = rng.randint(1, 5)
    rows = [
        [Fraction(rng.randint(-9, 9), rng.choice((1, 1, 1, 2, 3, 5)))
         for _ in range(size)]
        for _ in range(size)
    ]
    return QMatrix(rows)


@settings(max_examples=150, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_bareiss_det_matches_gaussian(seed):
    matrix = _random_matrix(seed)
    assert matrix.det() == gaussian_det(matrix)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_rank_consistent_with_det_and_nullspace(seed):
    matrix = _random_matrix(seed)
    rank = matrix.rank()
    assert rank == matrix.rank()  # cached second call
    assert (matrix.det() != 0) == (rank == matrix.nrows)
    assert len(matrix.nullspace()) == matrix.ncols - rank
    for vector_ in matrix.nullspace():
        assert all(value == 0 for value in matrix.matvec(vector_))


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_solve_reuses_cached_elimination(seed):
    matrix = _random_matrix(seed)
    rng = random.Random(seed + 1)
    rhs = [Fraction(rng.randint(-5, 5)) for _ in range(matrix.nrows)]
    solution = matrix.solve(rhs)
    assert solution == matrix.solve(rhs)  # second call from cache
    if solution is not None:
        assert list(matrix.matvec(solution)) == rhs
    known = matrix.matvec([Fraction(1)] * matrix.ncols)
    recovered = matrix.solve(known)
    assert recovered is not None
    assert matrix.matvec(recovered) == known
