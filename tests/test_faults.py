"""Tests for the fault-tolerance layer (PR 8).

Budgets tripping every counting kernel, DP→backtracking degradation,
worker-crash quarantine determinism, store self-healing, client
backoff, torn-tail recovery, and the property that a fault-free
fault plan changes nothing.
"""

from __future__ import annotations

import json
import sqlite3
import time

import pytest

from repro.batch.cache import SQLiteHomStore, StoreFormatError
from repro.batch.runner import (
    _truncate_torn_tail,
    iter_results,
    run_batch,
)
from repro.batch.scenarios import generate_scenario, write_scenario
from repro.batch.tasks import canonical_json, make_hom_count_task
from repro.errors import ReproError
from repro.faults import (
    Budget,
    BudgetExceeded,
    FaultPlan,
    budget_stats,
    clear_fault_plan,
    install_fault_plan,
    should_inject,
    use_budget,
)
from repro.hom.engine import HomEngine
from repro.service.client import DaemonClient, backoff_delay
from repro.session import SolverSession
from repro.structures.generators import clique_structure, cycle_structure


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends without a process-global fault plan."""
    clear_fault_plan()
    yield
    clear_fault_plan()


# ----------------------------------------------------------------------
# Budget object
# ----------------------------------------------------------------------
class TestBudget:
    def test_requires_a_bound(self):
        with pytest.raises(ReproError):
            Budget()

    def test_steps_trip(self):
        budget = Budget(max_steps=10)
        with pytest.raises(BudgetExceeded) as info:
            budget.charge(16)
        assert info.value.reason == "steps"
        assert info.value.steps == 16

    def test_deadline_trip(self):
        budget = Budget(deadline_ms=1.0)
        time.sleep(0.01)
        with pytest.raises(BudgetExceeded) as info:
            budget.charge()
        assert info.value.reason == "deadline"

    def test_record_shape(self):
        budget = Budget(max_steps=4)
        with pytest.raises(BudgetExceeded) as info:
            budget.charge(8)
        record = info.value.to_record()
        assert record["reason"] == "steps"
        assert record["max_steps"] == 4
        # The record is deterministic: no wall-clock fields.
        assert "elapsed_ms" not in record

    def test_use_budget_nests_and_restores(self):
        from repro.faults import active_budget

        outer = Budget(max_steps=100)
        inner = Budget(max_steps=5)
        assert active_budget() is None
        with use_budget(outer):
            assert active_budget() is outer
            with use_budget(inner):
                assert active_budget() is inner
            assert active_budget() is outer
        assert active_budget() is None


# ----------------------------------------------------------------------
# Kernel coverage: all four counting kernels respect the budget
# ----------------------------------------------------------------------
class TestKernelBudgets:
    # Big enough that backtracking visits >1024 nodes (first stride
    # checkpoint) and the DP streams a few hundred table entries.
    SOURCE = cycle_structure(6, relation="E")
    TARGET = clique_structure(8, relation="E")

    def _trip(self, strategy, monkeypatch, force_sets=False):
        if force_sets:
            monkeypatch.setattr("repro.hom.engine._BITSET_MAX_DOMAIN", 0)
        engine = HomEngine(strategy=strategy)
        with use_budget(Budget(max_steps=100)):
            with pytest.raises(BudgetExceeded) as info:
                engine.count(self.SOURCE, self.TARGET)
        assert info.value.reason == "steps"

    def test_bitset_backtracking_trips(self, monkeypatch):
        self._trip("backtrack", monkeypatch)

    def test_set_backtracking_trips(self, monkeypatch):
        self._trip("backtrack", monkeypatch, force_sets=True)

    def test_packed_dp_trips(self, monkeypatch):
        self._trip("dp", monkeypatch)

    def test_set_dp_trips(self, monkeypatch):
        self._trip("dp", monkeypatch, force_sets=True)

    def test_kernels_agree_without_budget(self, monkeypatch):
        expected = HomEngine(strategy="backtrack").count(
            self.SOURCE, self.TARGET)
        assert HomEngine(strategy="dp").count(
            self.SOURCE, self.TARGET) == expected
        monkeypatch.setattr("repro.hom.engine._BITSET_MAX_DOMAIN", 0)
        assert HomEngine(strategy="backtrack").count(
            self.SOURCE, self.TARGET) == expected
        assert HomEngine(strategy="dp").count(
            self.SOURCE, self.TARGET) == expected

    def test_canonicalization_respects_deadline(self):
        # A clique is the worst case for the labeling search (|Aut|
        # leaves); the deadline must reach it, not just the kernels.
        from repro.structures.canonical import canonical_key

        source = clique_structure(8, relation="E")
        budget = Budget(deadline_ms=5.0)
        time.sleep(0.01)
        with use_budget(budget):
            with pytest.raises(BudgetExceeded):
                canonical_key(source)
        # Nothing partial was memoized: the key computes fine later.
        assert canonical_key(source)


# ----------------------------------------------------------------------
# Graceful degradation: injected DP trip falls back to backtracking
# ----------------------------------------------------------------------
class TestDegradation:
    def test_auto_strategy_degrades_and_stays_correct(self):
        source = cycle_structure(6, relation="E")
        target = clique_structure(8, relation="E")
        expected = HomEngine(strategy="backtrack").count(source, target)

        before = budget_stats()["degraded"]
        # Consult index 0 is count_plan_dp's entry; the backtracking
        # retry consults again at index 1, which the plan leaves alone.
        install_fault_plan(FaultPlan({"seed": 0, "engine.step": [0]}))
        try:
            engine = HomEngine(strategy="auto")
            assert engine.count(source, target) == expected
        finally:
            clear_fault_plan()
        assert budget_stats()["degraded"] == before + 1

    def test_pinned_strategy_does_not_degrade(self):
        source = cycle_structure(6, relation="E")
        target = clique_structure(8, relation="E")
        install_fault_plan(FaultPlan({"seed": 0, "engine.step": [0]}))
        try:
            with pytest.raises(BudgetExceeded):
                HomEngine(strategy="dp").count(source, target)
        finally:
            clear_fault_plan()


# ----------------------------------------------------------------------
# Session / envelope integration
# ----------------------------------------------------------------------
class TestSessionBudgets:
    def test_budget_for_prefers_request_deadline(self):
        with SolverSession(default_deadline_ms=500.0) as session:
            budget = session.budget_for(50.0)
            assert budget.deadline_ms == 50.0
            assert session.budget_for(None).deadline_ms == 500.0
        with SolverSession() as session:
            assert session.budget_for(None) is None

    def test_budget_exceeded_record(self):
        from repro.batch.runner import evaluate_envelope

        task = make_hom_count_task(
            "slow-0", cycle_structure(6, relation="E"),
            clique_structure(8, relation="E"))
        with SolverSession(default_max_steps=100) as session:
            record = evaluate_envelope(canonical_json(task), session)
            assert record["ok"] is False
            assert record["error_kind"] == "budget-exceeded"
            assert record["budget"]["reason"] == "steps"
            assert session.tasks_budget_exceeded == 1


# ----------------------------------------------------------------------
# Worker supervision: crash quarantine is deterministic
# ----------------------------------------------------------------------
class TestWorkerSupervision:
    def _tasks(self):
        lines = []
        for index in range(8):
            task = make_hom_count_task(
                f"hc-{index:05d}",
                cycle_structure(3 + index % 3, relation="E"),
                clique_structure(4, relation="E"))
            lines.append(canonical_json(task))
        return lines

    def test_poison_task_is_quarantined_deterministically(self):
        lines = self._tasks()
        clean = list(iter_results(lines, workers=2, chunk_size=3))
        plan = {"seed": 11, "worker.chunk": {"task_ids": ["hc-00004"]}}
        chaos = list(iter_results(lines, workers=2, chunk_size=3,
                                  fault_plan=plan))
        assert len(chaos) == len(clean) == len(lines)
        quarantined = [line for line in chaos
                       if json.loads(line).get("quarantined")]
        assert len(quarantined) == 1
        assert json.loads(quarantined[0])["id"] == "hc-00004"
        survivors = {json.loads(line)["id"]: line for line in chaos
                     if not json.loads(line).get("quarantined")}
        for line in clean:
            identifier = json.loads(line)["id"]
            if identifier != "hc-00004":
                assert survivors[identifier] == line
        # Worker count must not change a single byte.
        again = list(iter_results(lines, workers=4, chunk_size=3,
                                  fault_plan=plan))
        assert again == chaos


# ----------------------------------------------------------------------
# Store self-healing
# ----------------------------------------------------------------------
class TestStoreHealing:
    SRC = cycle_structure(3, relation="E")
    TGT = clique_structure(3, relation="E")

    def test_corrupt_file_quarantined_on_open(self, tmp_path):
        path = tmp_path / "store.sqlite"
        path.write_bytes(b"definitely not a database" * 64)
        store = SQLiteHomStore(str(path))
        assert store.corruptions == 1
        assert store.retries == 1
        store.record(self.SRC, self.TGT, 6)
        store.flush()
        assert store.lookup(self.SRC, self.TGT) == 6
        quarantined = list(tmp_path.glob("store.sqlite.corrupt-*"))
        assert len(quarantined) == 1
        store.close()

    def test_mid_life_corruption_heals_round_trip(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with SQLiteHomStore(path) as store:
            store.record(self.SRC, self.TGT, 6)
        with open(path, "r+b") as handle:
            handle.write(b"\xff" * 512)
        with SQLiteHomStore(path) as healed:
            assert healed.corruptions == 1
            assert healed.lookup(self.SRC, self.TGT) is None
            healed.record(self.SRC, self.TGT, 6)
            healed.flush()
            assert healed.lookup(self.SRC, self.TGT) == 6
            stats = healed.stats()
        assert stats["corruptions"] == 1
        assert stats["retries"] == 1

    def test_injected_lookup_corruption_heals(self, tmp_path):
        with SQLiteHomStore(str(tmp_path / "store.sqlite")) as store:
            store.record(self.SRC, self.TGT, 6)
            store.flush()
            install_fault_plan(FaultPlan({"seed": 2, "store.lookup": [0]}))
            try:
                # The poisoned probe heals and retries against the
                # fresh (empty) file — a miss, never an exception.
                assert store.lookup(self.SRC, self.TGT) is None
            finally:
                clear_fault_plan()
            assert store.corruptions == 1
            assert store.retries == 1
            store.record(self.SRC, self.TGT, 6)
            store.flush()
            assert store.lookup(self.SRC, self.TGT) == 6

    def test_format_refusal_is_not_corruption(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        connection = sqlite3.connect(path)
        connection.execute("PRAGMA user_version=99")
        connection.commit()
        connection.close()
        with pytest.raises(StoreFormatError):
            SQLiteHomStore(path)
        # The file was refused, not quarantined.
        assert not list(tmp_path.glob("store.sqlite.corrupt-*"))


# ----------------------------------------------------------------------
# Client backoff
# ----------------------------------------------------------------------
class TestClientBackoff:
    def test_backoff_schedule_is_jittered_exponential(self):
        low = [backoff_delay(a, base=0.05, rng=lambda: 0.0)
               for a in range(4)]
        high = [backoff_delay(a, base=0.05, rng=lambda: 0.999999)
                for a in range(4)]
        assert low == [0.025, 0.05, 0.1, 0.2]
        for attempt in range(4):
            assert low[attempt] <= high[attempt] < 0.05 * 2 ** attempt

    def test_transient_failures_are_retried(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.service.client.time.sleep",
                            sleeps.append)
        attempts = []

        def flaky(self, payload_line):
            attempts.append(payload_line)
            if len(attempts) < 3:
                raise ConnectionRefusedError("refused")
            return '{"ok": true, "op": "ping"}\n'

        monkeypatch.setattr(DaemonClient, "_exchange", flaky)
        client = DaemonClient("127.0.0.1", 1, retries=3)
        assert client.ping() == {"ok": True, "op": "ping"}
        assert len(attempts) == 3
        assert client.connect_failures == 2
        assert len(sleeps) == 2
        assert sleeps[0] < sleeps[1] * 2 + 1e-9  # exponential envelope

    def test_retries_exhausted_raise_repro_error(self, monkeypatch):
        monkeypatch.setattr("repro.service.client.time.sleep",
                            lambda _: None)
        monkeypatch.setattr(
            DaemonClient, "_exchange",
            lambda self, line: (_ for _ in ()).throw(
                ConnectionResetError("reset")))
        with pytest.raises(ReproError, match="after 2 attempt"):
            DaemonClient("127.0.0.1", 1, retries=1).ping()

    def test_non_transient_oserror_fails_fast(self, monkeypatch):
        calls = []

        def denied(self, payload_line):
            calls.append(1)
            raise PermissionError("no")

        monkeypatch.setattr(DaemonClient, "_exchange", denied)
        with pytest.raises(ReproError):
            DaemonClient("127.0.0.1", 1, retries=5).ping()
        assert len(calls) == 1


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan({"seed": 1, "no.such.point": [0]})

    def test_spec_round_trip(self):
        spec = {"seed": 9,
                "worker.chunk": {"task_ids": ["t1"], "indices": [2]},
                "client.connect": {"probability": 0.25}}
        assert FaultPlan(FaultPlan(spec).to_spec()).to_spec() \
            == FaultPlan(spec).to_spec()

    def test_should_inject_without_plan_is_false(self):
        assert should_inject("engine.step") is False

    def test_fault_free_plan_is_byte_identical_to_no_plan(self):
        lines = [canonical_json(make_hom_count_task(
            f"hc-{i}", cycle_structure(3, relation="E"),
            clique_structure(3, relation="E"))) for i in range(4)]
        plain = list(iter_results(lines, workers=1))
        # An empty plan, and a plan whose triggers can never fire.
        empty = list(iter_results(lines, workers=1,
                                  fault_plan={"seed": 123}))
        dormant = list(iter_results(lines, workers=1, fault_plan={
            "seed": 123,
            "worker.chunk": {"task_ids": ["never-matches"]}}))
        assert empty == plain
        assert dormant == plain


# ----------------------------------------------------------------------
# Torn-tail recovery
# ----------------------------------------------------------------------
class TestTornTail:
    def test_torn_multibyte_utf8_tail_is_dropped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        whole = '{"id":"a","ok":true}\n'.encode("utf-8")
        # A record whose final character is multi-byte, torn mid-char:
        torn = '{"id":"b","note":"déjà'.encode("utf-8")[:-1]
        path.write_bytes(whole + torn)
        _truncate_torn_tail(str(path))
        assert path.read_bytes() == whole
        # The surviving content is valid UTF-8 and valid JSONL again.
        assert json.loads(path.read_text(encoding="utf-8"))["id"] == "a"

    def test_complete_file_untouched(self, tmp_path):
        path = tmp_path / "results.jsonl"
        content = '{"id":"a"}\n{"id":"b"}\n'.encode("utf-8")
        path.write_bytes(content)
        _truncate_torn_tail(str(path))
        assert path.read_bytes() == content


# ----------------------------------------------------------------------
# run_batch summary accounting under faults
# ----------------------------------------------------------------------
class TestRunBatchFaults:
    def test_summary_counts_quarantine(self, tmp_path):
        tasks = tmp_path / "tasks.jsonl"
        with open(tasks, "w") as sink:
            write_scenario(generate_scenario("mixed", 6, seed=4), sink)
        first = json.loads(open(tasks).readline())["id"]
        out = tmp_path / "out.jsonl"
        summary = run_batch(
            str(tasks), str(out), workers=2, chunk_size=2,
            fault_plan={"seed": 5,
                        "worker.chunk": {"task_ids": [first]}})
        assert summary["quarantined"] == 1
        assert summary["errors"] == 1
        assert summary["written"] == 6
