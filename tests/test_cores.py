"""Tests for structure cores."""

from repro.hom.containment import are_equivalent_set
from repro.hom.cores import core, core_query, is_core
from repro.hom.search import exists_homomorphism
from repro.queries.cq import cq_from_structure
from repro.queries.parser import parse_boolean_cq
from repro.structures.generators import clique_structure, cycle_structure, path_structure
from repro.structures.isomorphism import are_isomorphic
from repro.structures.structure import Structure


class TestCore:
    def test_rigid_structures_are_their_own_core(self):
        path = path_structure(["R", "R"])
        assert core(path) == path
        assert is_core(path)

    def test_loop_absorbs_everything(self):
        with_loop = Structure([("R", ("a", "a")), ("R", ("a", "b")),
                               ("R", ("b", "c"))])
        reduced = core(with_loop)
        assert len(reduced.domain()) == 1
        assert reduced.count_facts("R") == 1

    def test_directed_cycles_are_cores(self):
        for length in (2, 3, 4, 5):
            assert is_core(cycle_structure(length))

    def test_even_cycle_with_symmetric_edges_collapses(self):
        # Symmetric 4-cycle (undirected square) retracts onto a
        # symmetric edge (the 2-clique).
        square = Structure([
            ("R", (0, 1)), ("R", (1, 0)),
            ("R", (1, 2)), ("R", (2, 1)),
            ("R", (2, 3)), ("R", (3, 2)),
            ("R", (3, 0)), ("R", (0, 3)),
        ])
        reduced = core(square)
        assert len(reduced.domain()) == 2
        assert are_isomorphic(
            reduced.rename({c: i for i, c in enumerate(sorted(reduced.domain()))}),
            Structure([("R", (0, 1)), ("R", (1, 0))]),
        )

    def test_core_is_hom_equivalent(self):
        square = clique_structure(3)
        reduced = core(square)
        assert exists_homomorphism(square, reduced)
        assert exists_homomorphism(reduced, square)

    def test_core_idempotent(self):
        with_loop = Structure([("R", ("a", "a")), ("R", ("a", "b"))])
        once = core(with_loop)
        assert core(once) == once


class TestCoreQuery:
    def test_minimizes_redundant_query(self):
        redundant = parse_boolean_cq("R(x,y), R(u,v)")
        minimized = core_query(redundant)
        assert len(minimized.atoms) == 1
        assert are_equivalent_set(redundant, minimized)

    def test_set_equivalence_preserved(self):
        query = cq_from_structure(clique_structure(3))
        assert are_equivalent_set(query, core_query(query))

    def test_bag_semantics_not_preserved(self):
        """Minimization is a set-semantics notion: under bag semantics
        the core is a *different* query (the Section 4 machinery must
        not minimize!)."""
        from repro.queries.evaluation import evaluate_boolean

        redundant = parse_boolean_cq("R(x,y), R(u,v)")
        minimized = core_query(redundant)
        database = clique_structure(3)
        assert evaluate_boolean(redundant, database) == 36
        assert evaluate_boolean(minimized, database) == 6
