"""Tests for boolean set-semantics determinacy and the strictness of
→bag over →set (the paper's Theorem 3 corollary)."""

import itertools
import pytest

from repro.errors import DecisionError
from repro.queries.cq import cq_from_structure
from repro.queries.evaluation import evaluate_boolean
from repro.queries.parser import parse_boolean_cq
from repro.structures.generators import cycle_structure, enumerate_structures
from repro.structures.schema import Schema
from repro.core.decision import decide_bag_determinacy
from repro.core.setdet import decide_set_determinacy_boolean


class TestVerdicts:
    def test_query_among_views(self):
        q = parse_boolean_cq("R(x,y), R(y,z)")
        assert decide_set_determinacy_boolean([q], q).determined

    def test_implied_query_determined(self):
        # q = edge is implied by the 2-path view: 2path ⊆set edge-query?
        # V_q = {v : q ⊆set v}: edge ⊆ 2path? no. edge ⊄ 2path view...
        # Use v = edge view, q = 2path: V_q = {edge}; ∧V_q = edge ⊄ q.
        q = parse_boolean_cq("R(x,y), R(y,z)")
        v = parse_boolean_cq("R(x,y)")
        assert not decide_set_determinacy_boolean([v], q).determined

    def test_conjunction_of_views_implies_query(self):
        # q set-equivalent to v1 ∧ v2 once components are present:
        # q = edge+Sedge (two components), v1 = edge, v2 = Sedge.
        q = parse_boolean_cq("R(x,y), S(u,w)")
        v1 = parse_boolean_cq("R(x,y)")
        v2 = parse_boolean_cq("S(u,w)")
        assert decide_set_determinacy_boolean([v1, v2], q).determined

    def test_no_views(self):
        q = parse_boolean_cq("R(x,y)")
        assert not decide_set_determinacy_boolean([], q).determined

    def test_counterexample_pair_verifies(self):
        q = parse_boolean_cq("R(x,y), R(y,z)")
        v = parse_boolean_cq("R(x,y)")
        result = decide_set_determinacy_boolean([v], q)
        left, right = result.counterexample()
        # same boolean profile on every view:
        assert (evaluate_boolean(v, left) > 0) == (evaluate_boolean(v, right) > 0)
        # different boolean query answer:
        assert (evaluate_boolean(q, left) > 0) != (evaluate_boolean(q, right) > 0)

    def test_counterexample_on_determined_raises(self):
        q = parse_boolean_cq("R(x,y)")
        result = decide_set_determinacy_boolean([q], q)
        with pytest.raises(DecisionError):
            result.counterexample()


class TestAgainstExhaustiveSearch:
    def test_verdicts_consistent_on_tiny_universe(self):
        """On a single-relation unary schema we can enumerate all tiny
        structures and check the characterization's predictions."""
        schema = Schema({"U": 1})
        q = parse_boolean_cq("U(x), U(y)")
        v = parse_boolean_cq("U(x)")
        result = decide_set_determinacy_boolean([v], q)
        # q set-equivalent to v (both say "some U"): determined.
        assert result.determined
        structures = list(enumerate_structures(schema, 2))
        for left, right in itertools.product(structures, repeat=2):
            if (evaluate_boolean(v, left) > 0) == (evaluate_boolean(v, right) > 0):
                assert (evaluate_boolean(q, left) > 0) == (
                    evaluate_boolean(q, right) > 0
                )


class TestStrictness:
    def test_bag_strictly_stronger_than_set(self):
        """An instance that is set-determined but NOT bag-determined —
        both verdicts computed by the library."""
        q = parse_boolean_cq("R(x,y), R(y,z)")
        v = parse_boolean_cq("R(x,y), R(y,z), R(u,w)")  # 2path + edge
        assert decide_set_determinacy_boolean([v], q).determined
        assert not decide_bag_determinacy([v], q).determined

    def test_bag_implies_set_on_samples(self):
        """Whenever the bag decider says determined, the set decider
        must agree (bag-determinacy transmits the boolean signal for
        relevant-view instances... this is checked empirically here on
        a small instance family)."""
        pool = [
            parse_boolean_cq("R(x,y)"),
            parse_boolean_cq("R(x,y), R(y,z)"),
            cq_from_structure(cycle_structure(3)),
            parse_boolean_cq("R(x,y), R(u,w)"),
        ]
        for q in pool:
            for v in pool:
                bag = decide_bag_determinacy([v], q).determined
                sets = decide_set_determinacy_boolean([v], q).determined
                if bag:
                    assert sets, (q, v)
