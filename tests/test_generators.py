"""Unit tests for structure generators."""

import random

import pytest

from repro.errors import StructureError
from repro.structures.components import is_connected
from repro.structures.generators import (
    clique_structure,
    cycle_structure,
    enumerate_structures,
    grid_structure,
    loop_structure,
    path_structure,
    random_connected_structure,
    random_structure,
    star_structure,
)
from repro.structures.schema import Schema


class TestDeterministicFamilies:
    def test_path(self):
        p = path_structure(["A", "B"])
        assert p.count_facts() == 2
        assert len(p.domain()) == 3
        assert p.has_fact("A", (0, 1))
        assert p.has_fact("B", (1, 2))

    def test_empty_path_is_single_vertex(self):
        p = path_structure([])
        assert p.count_facts() == 0
        assert len(p.domain()) == 1

    def test_cycle(self):
        c = cycle_structure(4)
        assert c.count_facts("R") == 4
        assert is_connected(c)

    def test_cycle_length_one_is_loop(self):
        c = cycle_structure(1)
        assert c.has_fact("R", (0, 0))

    def test_cycle_invalid(self):
        with pytest.raises(StructureError):
            cycle_structure(0)

    def test_clique(self):
        k = clique_structure(3)
        assert k.count_facts("R") == 6  # directed, no loops
        assert clique_structure(3, loops=True).count_facts("R") == 9

    def test_star(self):
        s = star_structure(3)
        assert s.count_facts("R") == 3
        assert len(s.domain()) == 4

    def test_star_zero_rays(self):
        s = star_structure(0)
        assert s.count_facts() == 0
        assert len(s.domain()) == 1

    def test_grid(self):
        g = grid_structure(2, 3)
        assert g.count_facts("H") == 2 * 2  # 2 rows x 2 horizontal edges
        assert g.count_facts("V") == 1 * 3
        assert len(g.domain()) == 6

    def test_loop_structure(self):
        s = loop_structure(["R", "S"])
        assert s.has_fact("R", ("a", "a"))
        assert s.has_fact("S", ("a", "a"))


class TestRandomFamilies:
    def test_random_structure_reproducible(self):
        schema = Schema({"R": 2, "U": 1})
        a = random_structure(schema, 4, 0.4, random.Random(5))
        b = random_structure(schema, 4, 0.4, random.Random(5))
        assert a == b

    def test_random_structure_bounds(self):
        schema = Schema({"R": 2})
        s = random_structure(schema, 3, 0.5, random.Random(1))
        assert len(s.domain()) == 3
        assert all(f.relation == "R" for f in s.facts())

    def test_density_extremes(self):
        schema = Schema({"R": 2})
        empty = random_structure(schema, 3, 0.0, random.Random(1))
        full = random_structure(schema, 3, 1.0, random.Random(1))
        assert empty.count_facts() == 0
        assert full.count_facts("R") == 9

    def test_ensure_nonempty(self):
        schema = Schema({"R": 2})
        s = random_structure(schema, 2, 0.0, random.Random(1), ensure_nonempty=True)
        assert s.count_facts() == 1

    def test_invalid_parameters(self):
        schema = Schema({"R": 2})
        with pytest.raises(StructureError):
            random_structure(schema, -1)
        with pytest.raises(StructureError):
            random_structure(schema, 2, density=1.5)

    def test_random_connected_is_connected(self):
        schema = Schema({"R": 2})
        for seed in range(5):
            s = random_connected_structure(schema, 4, rng=random.Random(seed))
            assert is_connected(s)

    def test_random_connected_needs_binary_relation(self):
        with pytest.raises(StructureError):
            random_connected_structure(Schema({"U": 1}), 3)


class TestEnumeration:
    def test_enumerates_all_unary_structures(self):
        schema = Schema({"U": 1})
        # size 0: 1 structure; size 1: 2; size 2: 4 -> 7 total
        structures = list(enumerate_structures(schema, 2))
        assert len(structures) == 1 + 2 + 4

    def test_enumeration_contains_empty_and_full(self):
        schema = Schema({"U": 1})
        structures = list(enumerate_structures(schema, 1))
        counts = sorted(s.count_facts() for s in structures)
        assert counts == [0, 0, 1]
