"""Tests for JSON serialization of structures and queries."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.queries.cq import boolean_cq, cq_from_structure
from repro.queries.parser import parse_cq, parse_path, parse_ucq
from repro.structures.generators import cycle_structure, random_structure
from repro.structures.schema import Schema
from repro.structures.serialization import (
    SerializationError,
    decode_constant,
    dumps,
    encode_constant,
    from_dict,
    loads,
    to_dict,
)
from repro.structures.structure import Structure


class TestConstants:
    def test_scalars_pass_through(self):
        for constant in ("a", 17, True, None):
            assert decode_constant(encode_constant(constant)) == constant

    def test_tuples_roundtrip(self):
        constant = ("var", ("x", 3))
        assert decode_constant(encode_constant(constant)) == constant

    def test_unserializable_rejected(self):
        with pytest.raises(SerializationError):
            encode_constant(object())

    def test_bad_payloads_rejected(self):
        with pytest.raises(SerializationError):
            decode_constant({"weird": 1})
        with pytest.raises(SerializationError):
            decode_constant([1, 2])


class TestStructures:
    def test_roundtrip_with_facts_and_isolated(self):
        s = Structure(
            [("R", ("a", "b")), ("H", ())],
            domain=["a", "b", "lonely"],
        )
        assert loads(dumps(s)) == s

    def test_tuple_constants_roundtrip(self):
        s = cycle_structure(3).rename({i: ("copy", i) for i in range(3)})
        assert loads(dumps(s)) == s

    def test_schema_preserved(self):
        s = Structure([("R", ("a", "b"))], schema=Schema({"R": 2, "S": 2}))
        restored = loads(dumps(s))
        assert "S" in restored.schema

    def test_frozen_body_roundtrip(self):
        q = parse_cq("R(x,y), S(y,z)")
        body = q.frozen_body()
        assert loads(dumps(body)) == body

    def test_malformed_rejected(self):
        with pytest.raises(SerializationError):
            from_dict({"kind": "structure", "facts": [["R"]]})
        with pytest.raises(SerializationError):
            from_dict({"kind": "nope"})
        with pytest.raises(SerializationError):
            from_dict("not a dict")
        with pytest.raises(SerializationError):
            loads("{broken json")


class TestQueries:
    def test_cq_roundtrip(self):
        q = parse_cq("x | P(u,x), R(x,y)")
        assert loads(dumps(q)) == q

    def test_boolean_cq_roundtrip(self):
        q = boolean_cq([("R", ("x", "y")), ("R", ("y", "z"))])
        assert loads(dumps(q)) == q

    def test_cq_with_extra_variables(self):
        from repro.queries.cq import ConjunctiveQuery

        q = ConjunctiveQuery([("R", ("x", "y"))], extra_variables=["w"])
        assert loads(dumps(q)) == q

    def test_ucq_roundtrip(self):
        u = parse_ucq("P(x) or R(x), R(y)")
        assert loads(dumps(u)) == u

    def test_path_roundtrip(self):
        p = parse_path("A.B.C")
        assert loads(dumps(p)) == p
        assert loads(dumps(parse_path(""))) == parse_path("")

    def test_to_dict_kind_tags(self):
        assert to_dict(parse_path("A"))["kind"] == "path"
        assert to_dict(parse_cq("R(x,y)"))["kind"] == "cq"

    def test_unsupported_type(self):
        with pytest.raises(SerializationError):
            to_dict(42)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), size=st.integers(0, 4))
def test_random_structure_roundtrip(seed, size):
    schema = Schema({"R": 2, "U": 1, "H": 0})
    s = random_structure(schema, size, 0.4, random.Random(seed))
    assert loads(dumps(s)) == s


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_random_query_roundtrip(seed):
    schema = Schema({"R": 2, "S": 2})
    s = random_structure(schema, 3, 0.4, random.Random(seed))
    q = cq_from_structure(s)
    assert loads(dumps(q)) == q
