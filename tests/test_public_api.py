"""Public-API surface tests: everything advertised must exist and the
README quickstart must work verbatim."""

import importlib

import pytest


class TestExports:
    def test_top_level_all_resolves(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", [
        "repro.structures",
        "repro.queries",
        "repro.hom",
        "repro.linalg",
        "repro.core",
        "repro.ucq",
    ])
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"


class TestReadmeQuickstart:
    def test_positive_snippet(self):
        from repro import decide_bag_determinacy, parse_boolean_cq

        q = parse_boolean_cq("R(x,y), R(u,v), R(v,w)")
        v1 = parse_boolean_cq("R(x,y)")
        v2 = parse_boolean_cq("R(u,v), R(v,w)")
        result = decide_bag_determinacy([v1, v2], q)
        assert result.determined
        assert result.rewriting().evaluate([7, 3]) == 21

    def test_negative_snippet(self):
        from repro import decide_bag_determinacy, parse_boolean_cq

        q = parse_boolean_cq("R(x,y)")
        v = parse_boolean_cq("R(x,y), R(y,z)")
        result = decide_bag_determinacy([v], q)
        assert not result.determined
        assert result.witness().verify().ok

    def test_path_snippet(self):
        from repro import parse_path, rewrite_and_answer
        from repro.queries.evaluation import evaluate_path_query
        from repro.structures.generators import random_structure
        from repro.structures.schema import Schema
        import random

        views = [parse_path("A.B.C"), parse_path("B.C"), parse_path("B.C.D")]
        database = random_structure(
            Schema({letter: 2 for letter in "ABCD"}), 5, 0.4, random.Random(1)
        )
        answer = rewrite_and_answer(views, parse_path("A.B.C.D"), database)
        assert answer == evaluate_path_query(parse_path("A.B.C.D"), database)

    def test_module_docstring_quickstart(self):
        import repro

        assert "decide_bag_determinacy" in (repro.__doc__ or "")


class TestCLIEntryPoints:
    def test_help_exits_zero(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        # The grouped command tree; the deprecated flat aliases
        # (decide-cq, ...) are rewritten pre-parse and stay hidden.
        for group in ("decide", "bench", "batch", "cache", "serve"):
            assert group in out
        assert "decide-cq" not in out

    def test_dunder_main_importable(self):
        import importlib.util

        spec = importlib.util.find_spec("repro.__main__")
        assert spec is not None
