"""Unit tests for monomial rewritings (Lemma 31 ⇐, Appendix D)."""

from fractions import Fraction

import pytest

from repro.errors import DecisionError
from repro.queries.parser import parse_boolean_cq
from repro.core.rewriting import (
    MonomialRewriting,
    integer_nth_root,
    rewriting_from_span,
)

Q = parse_boolean_cq("R(x,y)")
V1 = parse_boolean_cq("R(x,y), R(u,v)")
V2 = parse_boolean_cq("R(x,y), S(u,v)")


class TestIntegerNthRoot:
    def test_exact_roots(self):
        assert integer_nth_root(27, 3) == 3
        assert integer_nth_root(1024, 10) == 2
        assert integer_nth_root(49, 2) == 7

    def test_trivial_cases(self):
        assert integer_nth_root(0, 5) == 0
        assert integer_nth_root(1, 5) == 1
        assert integer_nth_root(17, 1) == 17

    def test_large_numbers(self):
        base = 123456789
        assert integer_nth_root(base ** 7, 7) == base

    def test_inexact_raises(self):
        with pytest.raises(DecisionError):
            integer_nth_root(10, 2)

    def test_bad_degree(self):
        with pytest.raises(DecisionError):
            integer_nth_root(4, 0)

    def test_negative_value(self):
        with pytest.raises(DecisionError):
            integer_nth_root(-8, 3)


class TestEvaluation:
    def test_identity_rewriting(self):
        rewriting = MonomialRewriting(Q, (Q,), (Fraction(1),))
        assert rewriting.evaluate([42]) == 42

    def test_square_root_rewriting(self):
        # q(D)^2 = v(D): exponent 1/2.
        rewriting = MonomialRewriting(Q, (V1,), (Fraction(1, 2),))
        assert rewriting.evaluate([36]) == 6

    def test_negative_exponent(self):
        # q = v1^3 / v2 (the Example 32 pattern).
        rewriting = MonomialRewriting(Q, (V1, V2), (Fraction(3), Fraction(-1)))
        assert rewriting.evaluate([2, 4]) == 2  # 8 / 4

    def test_observation_26_zero_guard(self):
        # Even a view with exponent 0 forces the answer to 0 when it
        # answers 0.
        rewriting = MonomialRewriting(Q, (V1, V2), (Fraction(1), Fraction(0)))
        assert rewriting.evaluate([5, 0]) == 0

    def test_empty_views_constant_one(self):
        rewriting = MonomialRewriting(Q, (), ())
        assert rewriting.evaluate([]) == 1

    def test_wrong_answer_count(self):
        rewriting = MonomialRewriting(Q, (V1,), (Fraction(1),))
        with pytest.raises(DecisionError):
            rewriting.evaluate([1, 2])

    def test_negative_answer_rejected(self):
        rewriting = MonomialRewriting(Q, (V1,), (Fraction(1),))
        with pytest.raises(DecisionError):
            rewriting.evaluate([-1])

    def test_inconsistent_answers_detected(self):
        # sqrt(3) is not integral: the inputs cannot come from a database.
        rewriting = MonomialRewriting(Q, (V1,), (Fraction(1, 2),))
        with pytest.raises(DecisionError):
            rewriting.evaluate([3])

    def test_non_divisible_detected(self):
        rewriting = MonomialRewriting(Q, (V1, V2), (Fraction(1), Fraction(-1)))
        with pytest.raises(DecisionError):
            rewriting.evaluate([5, 3])

    def test_mismatched_lengths_rejected_at_construction(self):
        with pytest.raises(DecisionError):
            MonomialRewriting(Q, (V1,), (Fraction(1), Fraction(2)))


class TestAnswerOn:
    def test_never_touches_the_query(self):
        """answer_on must agree with the query on databases, computed
        from view answers alone."""
        from repro.queries.evaluation import evaluate_boolean
        from repro.structures.generators import clique_structure

        rewriting = MonomialRewriting(
            Q, (V1,), (Fraction(1, 2),)
        )
        database = clique_structure(3)
        assert rewriting.answer_on(database) == evaluate_boolean(Q, database)

    def test_explain_is_readable(self):
        rewriting = rewriting_from_span(Q, [V1, V2], [Fraction(3), Fraction(-1)])
        text = rewriting.explain()
        assert "^(3)" in text
        assert "^(-1)" in text
        assert "answers 0" in text
