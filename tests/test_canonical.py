"""Property tests for the interned core and canonical labeling.

Three contracts, each cross-checked against an independent oracle:

* :func:`~repro.structures.canonical.canonical_key` is a *complete*
  isomorphism invariant — equal keys exactly when
  ``find_isomorphism`` (the pairwise backtracking oracle, untouched by
  the interning refactor) finds a map, on random pairs, random constant
  renames and shuffled component re-assemblies;
* the interned representation is faithful — deterministic intern
  order, round-tripping rows, isolated elements preserved — and the
  interned wire format round-trips while legacy payloads still decode;
* counts through the interned engine are bit-identical to the naive
  recursive counter on the random structure-pair corpus (the legacy
  constant-based path), including mixed-type constants.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StructureError
from repro.hom.count import count_homs
from repro.hom.engine import HomEngine
from repro.hom.search import count_homomorphisms_direct
from repro.structures.canonical import canonical_key, canonical_stats, wl_colors
from repro.structures.generators import (
    clique_structure,
    cycle_structure,
    grid_structure,
    path_structure,
    random_structure,
    star_structure,
)
from repro.structures.interned import InternTable, interned
from repro.structures.isomorphism import are_isomorphic, find_isomorphism
from repro.structures.schema import Schema
from repro.structures.serialization import loads, dumps, structure_from_dict
from repro.structures.structure import Fact, Structure

SCHEMA = Schema({"R": 2, "S": 2, "P": 1, "T": 3, "N": 0})


def _random(seed: int, size=(0, 5)) -> Structure:
    rng = random.Random(seed)
    return random_structure(SCHEMA, rng.randint(*size),
                            density=rng.choice((0.1, 0.3, 0.6)), rng=rng)


def _random_rename(structure: Structure, seed: int):
    """An injective rename onto constants of mixed shapes."""
    rng = random.Random(seed)
    shapes = [
        lambda c: ("tag", rng.randint(0, 10**6), c),
        lambda c: f"c{rng.randint(0, 10**9)}_{id(c) % 97}",
        lambda c: (("deep", c), rng.randint(0, 10**6)),
    ]
    mapping = {}
    used = set()
    for constant in structure.domain():
        image = rng.choice(shapes)(constant)
        while image in used:
            image = ("salt", rng.randint(0, 10**9), image)
        used.add(image)
        mapping[constant] = image
    return structure.rename(mapping)


# ----------------------------------------------------------------------
# canonical_key ≡ isomorphism (oracle: pairwise find_isomorphism)
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_canonical_key_agrees_with_pairwise_oracle(seed):
    left, right = _random(seed), _random(seed + 1)
    same_key = canonical_key(left) == canonical_key(right)
    assert same_key == (find_isomorphism(left, right) is not None)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_canonical_key_invariant_under_random_renames(seed):
    structure = _random(seed)
    renamed = _random_rename(structure, seed + 7)
    assert canonical_key(renamed) == canonical_key(structure)
    assert are_isomorphic(structure, renamed)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_canonical_key_invariant_under_component_permutation(seed):
    """Re-assembling tagged component copies in any order (and under
    fresh per-copy renames) never changes the key of the union."""
    def assemble(parts):
        total = Structure()
        for position, part in enumerate(parts):
            total = total.union(part.tagged(position))
        return total

    rng = random.Random(seed)
    pieces = [_random(seed + i, size=(1, 3)) for i in range(3)]
    shuffled = list(pieces)
    rng.shuffle(shuffled)
    assert canonical_key(assemble(pieces)) == canonical_key(assemble(shuffled))


def test_canonical_key_on_symmetric_shapes():
    for structure in [cycle_structure(3), cycle_structure(8),
                      clique_structure(5), star_structure(4),
                      grid_structure(3, 3), path_structure(["R"] * 6)]:
        renamed = structure.rename({c: ("y", c) for c in structure.domain()})
        assert canonical_key(structure) == canonical_key(renamed)
    # direction-sensitive: out-star vs in-star
    out_star = star_structure(2)
    in_star = Structure([("R", (0, "c")), ("R", (1, "c"))])
    assert canonical_key(out_star) != canonical_key(in_star)


def test_canonical_key_edge_cases():
    empty = Structure()
    lonely = Structure((), domain=["v"])
    nullary = Structure([Fact("N", ())])
    assert len({canonical_key(empty), canonical_key(lonely),
                canonical_key(nullary)}) == 3
    # isolated elements change the class (the |dom| factor must survive)
    assert canonical_key(path_structure(["R"])) != \
        canonical_key(Structure([("R", (0, 1))], domain=[0, 1, 2]))
    # keys are stable byte strings, usable as SQLite/dict keys
    assert isinstance(canonical_key(empty), bytes)
    stats = canonical_stats()
    assert stats["keys"] >= 1


# ----------------------------------------------------------------------
# Interned representation
# ----------------------------------------------------------------------
class TestInterned:
    def test_intern_table_roundtrip(self):
        table = InternTable()
        constants = ["a", ("t", 1), 7, "a"]
        indices = [table.intern(c) for c in constants]
        assert indices == [0, 1, 2, 0]
        assert table.constant(1) == ("t", 1)
        assert table.index("a") == 0
        assert len(table) == 3 and 7 in table

    def test_interned_structure_layout(self):
        s = Structure([("R", ("a", "b")), ("P", ("a",)), Fact("N", ())],
                      domain=["a", "b", "lonely"])
        inter = interned(s)
        assert inter.n == 3 and inter.n_active == 2
        assert list(inter.isolated_indices()) == [2]
        assert inter.table.constant(2) == "lonely"
        assert inter.arities == {"R": 2, "P": 1, "N": 0}
        assert inter.relations["N"] == ((),)
        # rows reference interned active constants only
        for _, row in inter.iter_facts():
            assert all(0 <= t < inter.n_active for t in row)

    def test_intern_order_is_deterministic(self):
        facts = [("R", ("b", "c")), ("R", ("a", "b")), ("S", ("c", "a"))]
        one = interned(Structure(facts))
        other = interned(Structure(list(reversed(facts))))
        assert one.table.constants() == other.table.constants()
        assert one.relations == other.relations

    def test_wl_colors_cover_full_domain(self):
        s = Structure([("R", ("a", "b"))], domain=["a", "b", "iso1", "iso2"])
        colors = wl_colors(interned(s))
        assert len(colors) == 4
        assert colors[2] == colors[3]  # isolated elements share a color


# ----------------------------------------------------------------------
# Interned engine ≡ legacy naive path, bit for bit
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_interned_counts_bit_identical_to_naive(seed):
    source, target = _random(seed), _random(seed + 13)
    truth = count_homomorphisms_direct(source, target)
    assert count_homs(source, target) == truth
    legacy: dict = {}
    assert count_homs(source, target, legacy) == truth  # dict-cache path


def test_interned_counts_with_mixed_constants():
    source = Structure(
        [("R", ("a", 1)), ("R", (1, ("t", 2))), ("S", (("t", 2), "a")),
         ("P", ("a",)), Fact("N", ())],
        domain=["a", 1, ("t", 2), "isolated"],
    )
    target = Structure(
        [("R", (i, j)) for i in range(3) for j in range(3)]
        + [("S", (i, j)) for i in range(3) for j in range(3)]
        + [("P", (i,)) for i in range(3)] + [Fact("N", ())],
        domain=range(3),
    )
    truth = count_homomorphisms_direct(source, target)
    engine = HomEngine()
    assert engine.count(source, target) == truth
    renamed = source.rename({c: ("r", c) for c in source.domain()})
    assert engine.count(renamed, target) == truth


# ----------------------------------------------------------------------
# Wire format v2
# ----------------------------------------------------------------------
class TestInternedWireFormat:
    def test_constants_shipped_once(self):
        from repro.structures.serialization import structure_to_dict

        bulky = ("deeply", ("nested", "tag"), 12345)
        s = Structure([("R", (bulky, "b")), ("S", (bulky, bulky)),
                       ("P", (bulky,))])
        payload = structure_to_dict(s)
        assert "constants" in payload
        encoded = payload["constants"]
        # the bulky constant appears once in the table, as indices after
        assert sum(1 for c in encoded if isinstance(c, dict)) == 1
        assert loads(dumps(s)) == s

    def test_legacy_inline_payload_still_decodes(self):
        legacy = {
            "kind": "structure",
            "schema": {"R": 2},
            "facts": [["R", ["a", {"t": ["x", 3]}]]],
            "isolated": ["c"],
        }
        s = structure_from_dict(legacy)
        assert s.has_fact("R", ("a", ("x", 3)))
        assert "c" in s.isolated_elements()

    def test_bad_index_rejected(self):
        from repro.structures.serialization import SerializationError

        for bad_terms in ([0, 5], [0, -1], [0, True]):
            with pytest.raises(SerializationError, match="index"):
                structure_from_dict({
                    "kind": "structure", "schema": {"R": 2},
                    "constants": ["a", "b"],
                    "facts": [["R", bad_terms]], "isolated": [],
                })


# ----------------------------------------------------------------------
# Fact eagerly rejects unhashable terms (satellite)
# ----------------------------------------------------------------------
class TestFactHashability:
    def test_list_term_rejected_at_construction(self):
        with pytest.raises(StructureError, match="hashable"):
            Fact("R", (["not", "hashable"],))

    def test_nested_unhashable_rejected(self):
        with pytest.raises(StructureError, match="hashable"):
            Fact("R", (("tuple", ["inner", "list"]),))

    def test_dict_and_set_terms_rejected(self):
        with pytest.raises(StructureError, match="hashable"):
            Fact("R", ({"k": 1},))
        with pytest.raises(StructureError, match="hashable"):
            Structure([("R", ({1, 2}, "b"))])

    def test_hashable_terms_still_fine(self):
        fact = Fact("R", ("a", 1, ("t", 2), frozenset({3})))
        assert fact.arity == 4
