"""Unit + property tests for linear relations (Def. 19, Lemmas 21–24)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LinalgError
from repro.linalg.linrel import LinearRelation
from repro.linalg.matrix import QMatrix


def _random_matrix(seed: int, size: int) -> QMatrix:
    rng = random.Random(seed)
    return QMatrix([
        [rng.randint(-2, 2) for _ in range(size)] for _ in range(size)
    ])


class TestConstruction:
    def test_identity_contains_diagonal_pairs(self):
        eye = LinearRelation.identity(2)
        assert eye.contains_pair([1, 2], [1, 2])
        assert not eye.contains_pair([1, 2], [2, 1])

    def test_graph_of_contains_images(self):
        m = QMatrix([[1, 1], [0, 1]])
        graph = LinearRelation.graph_of(m)
        assert graph.contains_pair([1, 0], [1, 0])
        assert graph.contains_pair([0, 1], [1, 1])
        assert not graph.contains_pair([0, 1], [0, 1])

    def test_dimension_of_graph(self):
        assert LinearRelation.graph_of(QMatrix([[0, 0], [0, 0]])).dimension() == 2

    def test_wrong_generator_length_rejected(self):
        with pytest.raises(LinalgError):
            LinearRelation(2, [[1, 2, 3]])

    def test_full_and_empty(self):
        full = LinearRelation.full(2)
        assert full.contains_pair([1, 2], [3, 4])
        empty = LinearRelation.empty(2)
        assert empty.contains_pair([0, 0], [0, 0])
        assert not empty.contains_pair([1, 0], [0, 0])


class TestAlgebra:
    def test_compose_matches_matrix_product(self):
        a = QMatrix([[1, 1], [0, 1]])
        b = QMatrix([[2, 0], [0, 3]])
        composed = LinearRelation.graph_of(a).compose(LinearRelation.graph_of(b))
        # compose(self, other): self applied first -> graph of b·a
        assert composed == LinearRelation.graph_of(b.matmul(a))

    def test_inverse_swaps(self):
        m = QMatrix([[2, 0], [0, 3]])
        inverse = LinearRelation.graph_of(m).inverse()
        assert inverse.contains_pair([2, 0], [1, 0])

    def test_inverse_of_invertible_is_graph_of_inverse(self):
        m = QMatrix([[2, 1], [1, 1]])
        assert LinearRelation.graph_of(m).inverse() == LinearRelation.graph_of(
            m.inverse()
        )

    def test_compose_with_identity(self):
        m = QMatrix([[1, 2], [3, 4]])
        graph = LinearRelation.graph_of(m)
        eye = LinearRelation.identity(2)
        assert graph.compose(eye) == graph
        assert eye.compose(graph) == graph

    def test_containment_order(self):
        eye = LinearRelation.identity(2)
        full = LinearRelation.full(2)
        assert eye <= full
        assert not full <= eye

    def test_as_function_graph_roundtrip(self):
        m = QMatrix([[1, 2], [3, 4]])
        recovered = LinearRelation.graph_of(m).as_function_graph()
        assert recovered == m

    def test_as_function_graph_none_for_non_functions(self):
        assert LinearRelation.full(1).as_function_graph() is None
        # inverse of a singular matrix graph is not a function
        singular = QMatrix([[1, 0], [0, 0]])
        inverted = LinearRelation.graph_of(singular).inverse()
        assert inverted.as_function_graph() is None


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), size=st.integers(1, 3))
def test_lemma21_inequalities(seed, size):
    """Lemma 21: f̄ (f̄)⁻¹ ⊇ I  and  (f̄)⁻¹ f̄ ⊆ I — in our diagrammatic
    composition, applying f then f⁻¹ contains I, and f⁻¹ then f is
    contained in I... careful with conventions: we verify both
    inclusions with the correct orientation."""
    m = _random_matrix(seed, size)
    graph = LinearRelation.graph_of(m)
    eye = LinearRelation.identity(size)
    # {(x,y): f(x)=f(y)} ⊇ I : apply f, then come back along f.
    forward_back = graph.compose(graph.inverse())
    assert eye <= forward_back
    # {(x,x): x ∈ im f} ⊆ I : go back along f, then forward.
    back_forward = graph.inverse().compose(graph)
    assert back_forward <= eye


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000), size=st.integers(1, 3),
       other=st.integers(0, 100_000))
def test_lemma22_style_monotonicity(seed, other, size):
    """Inserting f f⁻¹ in the middle of a composition can only grow the
    relation; inserting f⁻¹ f can only shrink it (Lemma 22)."""
    f = LinearRelation.graph_of(_random_matrix(seed, size))
    g = LinearRelation.graph_of(_random_matrix(other, size))
    plain = g.compose(g)
    grown = g.compose(f.compose(f.inverse())).compose(g)
    shrunk = g.compose(f.inverse().compose(f)).compose(g)
    assert plain <= grown
    assert shrunk <= plain


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000), size=st.integers(1, 3))
def test_double_inverse_is_identity_operation(seed, size):
    graph = LinearRelation.graph_of(_random_matrix(seed, size))
    assert graph.inverse().inverse() == graph


# ----------------------------------------------------------------------
# Cached-RREF membership vs full re-elimination (PR 3 satellite)
# ----------------------------------------------------------------------
def _rank_based_le(left: LinearRelation, right: LinearRelation) -> bool:
    """The pre-cache reference: stack and re-run elimination."""
    if not left.basis:
        return True
    stacked = QMatrix(list(right.basis) + list(left.basis))
    return stacked.rank() == len(right.basis)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), other=st.integers(0, 100_000),
       size=st.integers(1, 3))
def test_cached_reduction_containment_matches_rank_reference(seed, other,
                                                             size):
    f = LinearRelation.graph_of(_random_matrix(seed, size))
    g = LinearRelation.graph_of(_random_matrix(other, size))
    for left, right in [(f, g), (g, f), (f, f),
                        (f.compose(g), g), (f, LinearRelation.full(size)),
                        (LinearRelation.empty(size), f)]:
        assert (left <= right) == _rank_based_le(left, right)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), size=st.integers(1, 3))
def test_cached_reduction_contains_pair_matches_rank_reference(seed, size):
    m = _random_matrix(seed, size)
    graph = LinearRelation.graph_of(m)
    rng = random.Random(seed)
    x = [rng.randint(-3, 3) for _ in range(size)]
    assert graph.contains_pair(x, m.matvec(x))
    candidate = list(x) + [v + 1 for v in m.matvec(x)]
    stacked = QMatrix(list(graph.basis) + [candidate])
    assert graph.contains_pair(candidate[:size], candidate[size:]) == \
        (stacked.rank() == len(graph.basis))
