"""Legacy setup shim.

The target environment is offline with an old setuptools and no
``wheel`` package, so PEP 660 editable installs fail; ``python setup.py
develop`` (or ``pip install -e . --no-build-isolation`` on newer
stacks) works through this shim.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
