"""Package metadata and entry points.

Metadata lives here (not in a PEP 621 ``[project]`` table) because the
offline target environment ships an old setuptools without PEP 660/621
support; ``python setup.py develop`` (or ``pip install .
--no-build-isolation`` on newer stacks) must keep working there.
pyproject.toml carries only the build-system pin and tool config.
"""

from setuptools import find_packages, setup

setup(
    name="repro-determinacy",
    version="0.2.0",
    description=(
        "Bag-semantics query determinacy — executable reproduction of "
        "Kwiecień, Marcinkowski & Ostropolski-Nalewaja, PODS 2022"
    ),
    long_description=(
        "A complete decider for boolean-CQ bag-determinacy (rewritings "
        "and counterexample pairs), path-query determinacy, the UCQ "
        "undecidability reduction, a compiled homomorphism-counting "
        "engine, and a parallel batch-evaluation subsystem with a "
        "persistent on-disk count cache."
    ),
    long_description_content_type="text/plain",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
            "repro-determinacy = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Mathematics",
        "Topic :: Database",
    ],
)
