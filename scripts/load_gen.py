#!/usr/bin/env python
"""Closed-loop load generator against a running repro daemon.

Thin wrapper over :mod:`repro.service.loadgen` — the same harness
behind ``repro serve load`` and the ``service_concurrency`` bench
workload — kept as a standalone script so CI can drive a daemon with a
bare ``python`` regardless of how the package is (not) installed.

Usage::

    python -m repro.cli serve start --port 7799 --async &
    python scripts/load_gen.py --port 7799 --clients 16 \
        --requests 25 --transport persistent

Prints one JSON summary line: clients, transport, requests, errors,
elapsed_s, throughput_rps, p50_ms, p99_ms.  Exits non-zero when any
request errored (pass ``--allow-errors`` to tolerate overload
rejections during stress runs) or when ``--max-p99-ms`` is exceeded.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.service.loadgen import (  # noqa: E402
    TRANSPORTS,
    default_task_lines,
    run_load,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per client")
    parser.add_argument("--transport", choices=TRANSPORTS,
                        default="persistent")
    parser.add_argument("--tasks", type=int, default=8,
                        help="distinct task lines to cycle through")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--max-p99-ms", type=float, default=None,
                        help="fail when p99 latency exceeds this bound")
    parser.add_argument("--allow-errors", action="store_true",
                        help="do not fail on overload rejections")
    args = parser.parse_args(argv)

    report = run_load(
        args.host, args.port,
        default_task_lines(args.tasks, seed=args.seed),
        clients=args.clients,
        requests_per_client=args.requests,
        transport=args.transport,
        timeout=args.timeout)
    print(json.dumps(report.summary(), sort_keys=True))
    if report.errors and not args.allow_errors:
        print(f"load_gen: {report.errors} request(s) errored",
              file=sys.stderr)
        return 1
    if args.max_p99_ms is not None and report.p99_ms > args.max_p99_ms:
        print(f"load_gen: p99 {report.p99_ms:.3f}ms exceeds bound "
              f"{args.max_p99_ms}ms", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
