#!/usr/bin/env python
"""Chaos lane: one seeded fault plan exercised across every subsystem.

CI entry point for the fault-tolerance contract (DESIGN.md §14).  One
run asserts, against a single seeded :class:`repro.faults.FaultPlan`:

* **worker kills** — a poisoned task repeatedly kills its batch worker
  (``os._exit`` mid-chunk); the supervisor restarts the pool, bisects
  the chunk and quarantines exactly that task, and every surviving
  result is byte-identical to a fault-free run;
* **store corruption** — an injected ``sqlite3.DatabaseError`` on the
  first store lookup quarantines the damaged file to
  ``<path>.corrupt-<ts>`` and recreates the schema, without failing a
  single task;
* **connect flaps** — two injected connection refusals against a live
  daemon are absorbed by the client's retry/backoff loop;
* **deadlines** — a pinned adversarial request (``K7 → K25`` under
  ``deadline_ms=50``) comes back as a structured ``budget-exceeded``
  error in well under 500 ms and does not poison later requests.

Exits nonzero with a labeled message on the first violated assertion.

Usage::

    PYTHONPATH=src python scripts/chaos_check.py
"""

from __future__ import annotations

import glob
import json
import os
import sys
import tempfile
import threading
import time

sys.path.insert(0, "src")

from repro.batch.runner import run_batch  # noqa: E402
from repro.batch.scenarios import generate_scenario, write_scenario  # noqa: E402
from repro.batch.tasks import canonical_json, make_hom_count_task  # noqa: E402
from repro.faults import (  # noqa: E402
    FaultPlan,
    clear_fault_plan,
    install_fault_plan,
)
from repro.service import DaemonClient, SolverService, serve_socket  # noqa: E402
from repro.structures.generators import clique_structure  # noqa: E402

CHAOS_SEED = 29
POISONED = "dn-00000"


def fail(message: str) -> None:
    print(f"chaos check: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def check_batch_under_faults(workdir: str) -> None:
    tasks = os.path.join(workdir, "tasks.jsonl")
    with open(tasks, "w") as sink:
        write_scenario(generate_scenario("mixed", 10, seed=11), sink)
    identifiers = [json.loads(line)["id"] for line in open(tasks)]
    if POISONED not in identifiers:
        fail(f"pinned poison task {POISONED!r} not in scenario "
             f"(ids: {identifiers})")

    clean_out = os.path.join(workdir, "clean.jsonl")
    run_batch(tasks, clean_out, workers=2, chunk_size=3,
              cache_path=os.path.join(workdir, "clean-cache.sqlite"))

    chaos_cache = os.path.join(workdir, "chaos-cache.sqlite")
    chaos_out = os.path.join(workdir, "chaos.jsonl")
    plan = {
        "seed": CHAOS_SEED,
        "worker.chunk": {"task_ids": [POISONED]},
        "store.lookup": [0],
    }
    summary = run_batch(tasks, chaos_out, workers=2, chunk_size=3,
                        cache_path=chaos_cache, fault_plan=plan)

    if summary["written"] != 10:
        fail(f"chaos batch incomplete: {summary}")
    if summary["quarantined"] != 1:
        fail(f"expected exactly 1 quarantined task, got {summary}")
    if summary["worker_restarts"] < 1:
        fail(f"expected at least one worker restart, got {summary}")

    chaos_lines = {json.loads(line)["id"]: line
                   for line in open(chaos_out)}
    quarantined = [identifier for identifier, line in chaos_lines.items()
                   if json.loads(line).get("quarantined")]
    if quarantined != [POISONED]:
        fail(f"wrong quarantine set: {quarantined}")
    for line in open(clean_out):
        identifier = json.loads(line)["id"]
        if identifier == POISONED:
            continue
        if chaos_lines[identifier] != line:
            fail(f"survivor {identifier} differs between clean and "
                 f"chaos runs")

    corpses = glob.glob(chaos_cache + ".corrupt-*")
    if not corpses:
        fail("injected store corruption left no quarantined "
             f"{chaos_cache}.corrupt-* file")
    print(f"chaos check: batch OK — 1 task quarantined, "
          f"{summary['worker_restarts']} worker restart(s), "
          f"{len(corpses)} corrupt store file(s) quarantined, "
          f"9 survivors byte-identical")


def check_daemon_under_faults() -> None:
    service = SolverService(workers=2, request_deadline_ms=5000.0)
    ready = threading.Event()
    bound: list = []
    server = threading.Thread(
        target=serve_socket, args=(service,),
        kwargs={"port": 0, "ready": ready, "bound": bound}, daemon=True)
    server.start()
    if not ready.wait(10):
        fail("daemon did not come up")
    host, port = bound[0]

    # Two injected connection refusals, absorbed by retry/backoff.
    install_fault_plan(FaultPlan({"seed": CHAOS_SEED,
                                  "client.connect": [0, 1]}))
    try:
        client = DaemonClient(host, port, retries=3)
        answer = client.ping()
    finally:
        clear_fault_plan()
    if not answer.get("ok") or client.connect_failures != 2:
        fail(f"connect-flap retry broken: answer={answer} "
             f"failures={client.connect_failures}")

    # Pinned adversarial instance: a clique source maximizes the
    # canonical-labeling search, a big clique target the branching.
    adversarial = make_hom_count_task(
        "adv-0",
        clique_structure(7, relation="E"),
        clique_structure(25, relation="E"))
    adversarial["deadline_ms"] = 50
    started = time.perf_counter()
    record = client.request_line(canonical_json(adversarial))
    elapsed_ms = (time.perf_counter() - started) * 1000
    if record.get("error_kind") != "budget-exceeded":
        fail(f"adversarial request was not budget-limited: {record}")
    if elapsed_ms >= 500:
        fail(f"budget-exceeded answer took {elapsed_ms:.0f}ms (>=500ms)")

    # Later requests are not poisoned.
    follow_up = make_hom_count_task(
        "ok-0", clique_structure(2, relation="E"),
        clique_structure(3, relation="E"))
    if not client.request_line(canonical_json(follow_up)).get("ok"):
        fail("request after budget trip failed")
    stats = client.stats()["stats"]["service"]
    if stats.get("budget_exceeded") != 1:
        fail(f"service.request.budget_exceeded miscounted: {stats}")

    client.shutdown()
    server.join(10)
    service.close()
    print(f"chaos check: daemon OK — 2 connect flaps absorbed, "
          f"budget-exceeded in {elapsed_ms:.0f}ms, follow-up clean")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        check_batch_under_faults(workdir)
    check_daemon_under_faults()
    print("chaos check: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
