#!/usr/bin/env python
"""Profile the E-series workloads and print the top-20 hot functions.

Runs cProfile over the workload generators in ``benchmarks/workloads.py``
(the E4 decision sweep, the E5 counting workloads, and the witness
pipeline) and prints the top functions by cumulative time.  This is the
tool that located the `_prepare`-rebuilds-everything and
`sorted(..., key=repr)` hotspots the compiled engine removed.

Usage::

    python scripts/profile_hotpaths.py            # all workloads
    python scripts/profile_hotpaths.py decision   # one workload
    python scripts/profile_hotpaths.py --top 30   # more rows
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))


def workload_hom() -> None:
    """E5: counting into large targets and deep lazy expressions."""
    from repro.hom.count import count_homs
    from repro.structures.expression import PowerExpression, scaled_sum
    from repro.structures.generators import (
        clique_structure, cycle_structure, path_structure,
    )

    path3 = path_structure(["R", "R", "R"])
    edge = path_structure(["R"])
    c3 = cycle_structure(3)
    for _ in range(20):
        for size in (4, 6, 8):
            count_homs(path3, clique_structure(size))
        expression = PowerExpression(scaled_sum([(2, c3), (1, edge)]), 32)
        count_homs(edge, expression)


def workload_decision() -> None:
    """E4: the Theorem 3 pipeline over view-count and width sweeps."""
    from workloads import make_instance
    from repro.core.decision import decide_bag_determinacy

    for n_views in (1, 4, 8, 16):
        views, query = make_instance(n_views=n_views, n_components=2, seed=17)
        for _ in range(5):
            decide_bag_determinacy(views, query)
    for n_components in (1, 2, 4, 6):
        views, query = make_instance(n_views=4, n_components=n_components,
                                     seed=29)
        for _ in range(5):
            decide_bag_determinacy(views, query)


def workload_witness() -> None:
    """E7-ish: witness construction + verification on a refutable case."""
    from workloads import make_instance
    from repro.core.decision import decide_bag_determinacy

    views, query = make_instance(n_views=2, n_components=3, seed=3)
    result = decide_bag_determinacy(views, query)
    if not result.determined:
        pair = result.witness()
        pair.verify()


WORKLOADS = {
    "hom": workload_hom,
    "decision": workload_decision,
    "witness": workload_witness,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workloads", nargs="*", choices=[*WORKLOADS, []],
                        help="subset to profile (default: all)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows of the profile to print")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"])
    args = parser.parse_args(argv)

    chosen = args.workloads or list(WORKLOADS)
    # Import everything up front so module loading stays out of the profile.
    import repro.core.decision  # noqa: F401
    import repro.core.witness   # noqa: F401
    import repro.hom.count      # noqa: F401
    import workloads            # noqa: F401

    profiler = cProfile.Profile()
    for name in chosen:
        print(f"profiling workload: {name}", file=sys.stderr)
        profiler.enable()
        WORKLOADS[name]()
        profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
