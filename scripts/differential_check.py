#!/usr/bin/env python
"""Seeded differential check: engine vs DP vs the naive oracle.

The ROADMAP's continuous differential-testing lane, promoted from
test-time property checks into a CI job: draw random (source, target)
pairs from a seeded generator and assert that every counting path
agrees bit-for-bit —

* the compiled backtracking engine (``strategy="backtrack"``),
* the tree-decomposition DP (``strategy="dp"``),
* the ``auto`` cost-model dispatcher,
* the naive enumeration oracle
  (:func:`repro.hom.search.count_homomorphisms_direct`).

Any disagreement prints the reproducing seed + pair index and exits
nonzero, so the CI log alone pins the counterexample.  Runs in the
chaos lane (it shares the "trust nothing" posture), but takes no
fault plan: differential correctness is checked on the clean path.

Usage::

    PYTHONPATH=src python scripts/differential_check.py \
        --seed 20260807 --pairs 40 --max-size 5
"""

from __future__ import annotations

import argparse
import random
import sys

sys.path.insert(0, "src")

from repro.hom.engine import HomEngine  # noqa: E402
from repro.hom.search import count_homomorphisms_direct  # noqa: E402
from repro.structures.generators import (  # noqa: E402
    random_connected_structure,
    random_structure,
)
from repro.structures.schema import Schema  # noqa: E402

SCHEMA = Schema({"E": 2, "U": 1})


def check_pair(index: int, rng: random.Random) -> int:
    source = random_connected_structure(
        SCHEMA, rng.randint(2, args.max_size), extra_density=0.3, rng=rng)
    target = random_structure(
        SCHEMA, rng.randint(1, args.max_size + 1), density=0.4, rng=rng,
        ensure_nonempty=True)
    oracle = count_homomorphisms_direct(source, target)
    results = {
        strategy: HomEngine(strategy=strategy).count(source, target)
        for strategy in ("backtrack", "dp", "auto")
    }
    for strategy, value in results.items():
        if value != oracle:
            print(f"MISMATCH at pair {index} (seed {args.seed}): "
                  f"{strategy}={value} oracle={oracle}\n"
                  f"  source={source!r}\n  target={target!r}",
                  file=sys.stderr)
            return 1
    return 0


def main() -> int:
    rng = random.Random(args.seed)
    failures = 0
    for index in range(args.pairs):
        failures += check_pair(index, rng)
    if failures:
        print(f"differential check: {failures}/{args.pairs} pairs "
              f"disagree", file=sys.stderr)
        return 1
    print(f"differential check: {args.pairs} pairs, all counting paths "
          f"agree with the oracle (seed {args.seed})")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pairs", type=int, default=40,
                        help="number of random (source, target) pairs")
    parser.add_argument("--max-size", type=int, default=5,
                        help="max domain size (oracle is exponential)")
    args = parser.parse_args()
    sys.exit(main())
