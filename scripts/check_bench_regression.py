#!/usr/bin/env python
"""CI gate: fail when engine benchmark timings regress vs the baseline.

Thin wrapper over the regression gate in :mod:`repro.benchsuite` — the
same comparison behind ``repro bench check`` — kept as a standalone
script so CI can invoke it with a bare ``python`` regardless of how the
package is (not) installed.

Usage::

    python -m repro.cli bench --json --output bench_ci.json --repeat 5
    python scripts/check_bench_regression.py \
        --baseline BENCH_engine.json --current bench_ci.json --factor 2.0

See :func:`repro.benchsuite.compare_reports` for the gate semantics
(tolerant factor + additive slack; ablation timings skipped; missing
workloads fail loudly).
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.benchsuite import (  # noqa: E402
    ABLATION_KEYS,
    DEFAULT_FACTOR,
    DEFAULT_SLACK_S,
    compare_reports,
    render_gate,
)
from repro.benchsuite import load_report as _load_report  # noqa: E402
from repro.errors import ReproError  # noqa: E402

# Historical module surface (tests and older tooling import these).
compare = compare_reports

__all__ = ["ABLATION_KEYS", "DEFAULT_FACTOR", "DEFAULT_SLACK_S",
           "compare", "load_report", "main"]


def load_report(path: str):
    try:
        return _load_report(path)
    except ReproError as error:
        raise SystemExit(str(error))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when bench timings regress vs the baseline")
    parser.add_argument("--baseline", required=True,
                        help="checked-in report (e.g. BENCH_engine.json)")
    parser.add_argument("--current", required=True,
                        help="freshly produced report to judge")
    parser.add_argument("--factor", type=float, default=DEFAULT_FACTOR,
                        help="allowed slowdown factor (default: 2.0)")
    parser.add_argument("--slack", type=float, default=DEFAULT_SLACK_S,
                        help="additive slack in seconds (default: 0.005)")
    args = parser.parse_args(argv)

    baseline = load_report(args.baseline)
    current = load_report(args.current)
    lines, failures = compare_reports(baseline, current,
                                      args.factor, args.slack)
    print(render_gate(lines, failures, args.factor, args.slack))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
