#!/usr/bin/env python
"""CI gate: fail when engine benchmark timings regress vs the baseline.

Usage::

    python -m repro.cli bench --json --output bench_ci.json --repeat 5
    python scripts/check_bench_regression.py \
        --baseline BENCH_engine.json --current bench_ci.json --factor 2.0

Every engine-side ``*_s`` timing present in both reports is compared
(ablation/reference timings like ``direct_backtracking_s`` are skipped
— they only exist to compute speedups); a timing regresses when
``current > factor * baseline + slack``.  The factor is
deliberately tolerant (CI runners are noisy, shared, and differently
clocked than the machine that wrote the baseline) and the additive
slack keeps microsecond-scale timings from tripping on clock
resolution.  The gate is for *architecture-level* regressions — losing
a 10x speedup — not for 20% jitter.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

DEFAULT_FACTOR = 2.0
DEFAULT_SLACK_S = 0.005

# Timings of the deliberately-naive ablation/reference implementations.
# They exist only to compute speedups; their absolute cost on a noisy
# runner carries no product signal, so the gate ignores them.
ABLATION_KEYS = frozenset({
    "direct_backtracking_s",
    "exact_key_dict_s",
    "gaussian_fraction_s",
    "backtracking_engine_s",
    "cold_dispatch_per_task_s",
    "pairwise_iso_dedup_s",
    "large_target_direct_s",
    "backtrack_set_s",
    "dp_set_s",
})


def load_report(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if "workloads" not in report:
        raise SystemExit(f"{path}: not a bench report (no 'workloads' key)")
    return report


def compare(
    baseline: Dict,
    current: Dict,
    factor: float = DEFAULT_FACTOR,
    slack: float = DEFAULT_SLACK_S,
) -> Tuple[List[str], List[str]]:
    """``(lines, failures)``: a human-readable table and the regressions."""
    lines: List[str] = []
    failures: List[str] = []
    base_workloads = baseline.get("workloads", {})
    current_workloads = current.get("workloads", {})
    compared = 0
    for name in sorted(base_workloads):
        if name not in current_workloads:
            # A workload that exists in the baseline but not in the
            # current run is a silently dropped benchmark — exactly the
            # kind of coverage loss this gate exists to catch.
            lines.append(f"  {name}: MISSING from current report")
            failures.append(f"{name} (missing workload)")
            continue
        for key in sorted(base_workloads[name]):
            if not key.endswith("_s") or key in ABLATION_KEYS:
                continue
            if key not in current_workloads[name]:
                lines.append(f"  {name}.{key}: MISSING from current report")
                failures.append(f"{name}.{key} (missing timing)")
                continue
            base_value = float(base_workloads[name][key])
            current_value = float(current_workloads[name][key])
            limit = factor * base_value + slack
            verdict = "ok" if current_value <= limit else "REGRESSED"
            lines.append(
                f"  {name}.{key}: {current_value:.6f}s vs baseline "
                f"{base_value:.6f}s (limit {limit:.6f}s) {verdict}")
            compared += 1
            if current_value > limit:
                failures.append(f"{name}.{key}")
    if compared == 0:
        failures.append("nothing compared: reports share no *_s timings")
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when bench timings regress vs the baseline")
    parser.add_argument("--baseline", required=True,
                        help="checked-in report (e.g. BENCH_engine.json)")
    parser.add_argument("--current", required=True,
                        help="freshly produced report to judge")
    parser.add_argument("--factor", type=float, default=DEFAULT_FACTOR,
                        help="allowed slowdown factor (default: 2.0)")
    parser.add_argument("--slack", type=float, default=DEFAULT_SLACK_S,
                        help="additive slack in seconds (default: 0.005)")
    args = parser.parse_args(argv)

    baseline = load_report(args.baseline)
    current = load_report(args.current)
    lines, failures = compare(baseline, current, args.factor, args.slack)
    print(f"bench regression gate (factor {args.factor}x, "
          f"slack {args.slack}s):")
    for line in lines:
        print(line)
    if failures:
        print(f"FAIL: {len(failures)} regression(s): {', '.join(failures)}")
        return 1
    print("PASS: no timing regressed past the gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
