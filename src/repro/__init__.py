"""repro — Determinacy of Real Conjunctive Queries (The Boolean Case).

A faithful, executable reproduction of Kwiecień, Marcinkowski &
Ostropolski-Nalewaja, PODS 2022 (arXiv:2112.12742): query determinacy
under **bag semantics**, with

* a complete decider for boolean conjunctive queries (Theorem 3) that
  returns either a monomial *rewriting* or an explicit counterexample
  pair of structures (Lemmas 40/41);
* the path-query decider, valid for both set and bag semantics
  (Theorem 1), with a relation-algebra rewriting engine;
* the Hilbert-Tenth reduction behind the UCQ undecidability result
  (Theorem 2), with bounded refutation and linear certification tools.

Quickstart::

    from repro import parse_boolean_cq, decide_bag_determinacy

    q  = parse_boolean_cq("R(x,y), S(y,z)")
    v1 = parse_boolean_cq("R(x,y)")
    result = decide_bag_determinacy([v1], q)
    print(result.determined)          # False
    pair = result.witness()           # D, D' with equal views, different q
    print(pair.verify().ok)           # True
"""

from repro.errors import (
    DecisionError,
    LinalgError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
    SearchExhaustedError,
    StructureError,
    UnsupportedQueryError,
)
from repro.structures import (
    Fact,
    Multiset,
    Schema,
    Structure,
    binary_schema,
)
from repro.queries import (
    Atom,
    ConjunctiveQuery,
    PathQuery,
    UnionOfBooleanCQs,
    boolean_cq,
    evaluate_boolean,
    evaluate_cq,
    evaluate_path_query,
    parse_boolean_cq,
    parse_cq,
    parse_path,
    parse_ucq,
)
from repro.hom import count_homs, exists_homomorphism, is_contained_set
from repro.core import (
    BooleanDeterminacyResult,
    ComponentBasis,
    CounterexamplePair,
    MonomialRewriting,
    PathDeterminacyResult,
    PathRewritingEngine,
    connected_case,
    decide_bag_determinacy,
    decide_path_determinacy,
    rewrite_and_answer,
    search_exhaustive_counterexample,
    search_lattice_counterexample,
)
from repro.ucq import (
    DiophantineInstance,
    HilbertReduction,
    Monomial,
    build_reduction,
    linear_certificate,
    search_reduction_counterexample,
)
from repro.session import (
    SolverSession,
    default_session,
    resolve_session,
    set_default_session,
)

__version__ = "1.0.0"

__all__ = [
    "DecisionError",
    "LinalgError",
    "ParseError",
    "QueryError",
    "ReproError",
    "SchemaError",
    "SearchExhaustedError",
    "StructureError",
    "UnsupportedQueryError",
    "Fact",
    "Multiset",
    "Schema",
    "Structure",
    "binary_schema",
    "Atom",
    "ConjunctiveQuery",
    "PathQuery",
    "UnionOfBooleanCQs",
    "boolean_cq",
    "evaluate_boolean",
    "evaluate_cq",
    "evaluate_path_query",
    "parse_boolean_cq",
    "parse_cq",
    "parse_path",
    "parse_ucq",
    "count_homs",
    "exists_homomorphism",
    "is_contained_set",
    "BooleanDeterminacyResult",
    "ComponentBasis",
    "CounterexamplePair",
    "MonomialRewriting",
    "PathDeterminacyResult",
    "PathRewritingEngine",
    "connected_case",
    "decide_bag_determinacy",
    "decide_path_determinacy",
    "rewrite_and_answer",
    "search_exhaustive_counterexample",
    "search_lattice_counterexample",
    "DiophantineInstance",
    "HilbertReduction",
    "Monomial",
    "build_reduction",
    "linear_certificate",
    "search_reduction_counterexample",
    "SolverSession",
    "default_session",
    "resolve_session",
    "set_default_session",
    "__version__",
]
