"""Command-line front end: ``repro-determinacy`` / ``python -m repro``.

Command tree
------------
Commands are grouped by what they operate on — decision procedures,
benchmarks, batch streams, the persistent cache, and the resident
daemon — with verbs underneath (the ``kubectl``-style noun/verb idiom):

``decide cq``     decide boolean-CQ bag-determinacy, print verdict,
                  rewriting or witness summary.
``decide path``   decide path-query determinacy (both semantics),
                  print the certificate path or the reachable set.
``decide ucq``    try the linear certificate for boolean UCQs.
``report``        full markdown report for a CQ instance.
``hilbert``       build the Appendix-A reduction for a polynomial and
                  search for a bounded counterexample.
``bench run``     run the engine micro-benchmarks; ``--json`` writes
                  machine-readable timings to ``BENCH_engine.json`` so
                  successive PRs can track the perf trajectory.
``bench check``   compare a fresh bench report against a baseline and
                  fail on architecture-level regressions (the same
                  gate CI runs).
``batch gen``     synthesize JSONL scenario files.
``batch run``     evaluate a JSONL task stream across worker processes
                  with a persistent hom-count cache.
``cache info``    row counts (and shard layout) of a persistent
                  hom-count store; ``--json`` for the full report.
``cache flush``   delete every persisted answer from a store.
``cache merge``   merge several stores (files or shard directories)
                  into one — how N replicas' caches become one.
``cache compact`` VACUUM a store's files to their minimal size.
``cache warm-pack`` export the most recently recorded answers as a
                  compact pack that ``serve start --preload-pack``
                  ships into a cold replica.
``serve start``   resident mode: a long-running daemon answering the
                  batch task codec over stdio (default) or TCP, one
                  warm solver session shared across every request.
                  ``--async`` runs the asyncio front end instead:
                  per-tenant sessions, priorities, backpressure, and
                  an optional ``--http-port`` HTTP/WebSocket facade.
``serve ping``    liveness probe against a running TCP daemon.
``serve stats``   legacy nested statistics from a running daemon.
``serve metrics`` full namespaced metrics snapshot (``--prometheus``
                  for text exposition) from a running daemon.
``serve drain``   ask a running daemon to stop accepting new requests
                  and exit after in-flight ones finish.
``serve load``    closed-loop load run against a running daemon:
                  throughput + p50/p99 latency at N concurrent
                  clients over a chosen transport.

The management verbs (``ping``/``stats``/``metrics``/``drain``) share
one client context — ``--host``/``--port``/``--timeout`` — and speak
the same JSONL control protocol the daemon serves inline
(``{"op": "stats"}`` request lines).

The pre-grouping flat spellings (``decide-cq``, ``decide-path``,
``certify-ucq``, bare ``bench``/``serve``, ``batch cache``) keep
working as hidden deprecated aliases: they are rewritten to the
grouped form before parsing and print one deprecation notice per
process on stderr.

Examples
--------
::

    repro-determinacy decide cq --view "R(x,y)" --view "S(x,y)" \
        --query "R(x,y), S(u,v)"
    repro-determinacy decide path --view A.B --view B --query A
    repro-determinacy decide ucq --view "P(x)" --view "P(x) or R(x)" \
        --query "R(x)"
    repro-determinacy hilbert --monomial "1:x^2" --monomial="-2:y^2" \
        --bound 10
    repro-determinacy serve start --port 7777 --workers 4 &
    repro-determinacy serve metrics --port 7777 --prometheus

(Monomials with negative coefficients need the ``--monomial=...`` form,
otherwise argparse mistakes ``-2:y^2`` for a flag.)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.queries.parser import parse_boolean_cq, parse_path, parse_ucq
from repro.core.decision import decide_bag_determinacy
from repro.core.pathdet import decide_path_determinacy
from repro.core.report import render_report
from repro.ucq.analysis import linear_certificate, semidecide_reduction_determinacy
from repro.ucq.hilbert import DiophantineInstance, Monomial
from repro.ucq.reduction import build_reduction


# ----------------------------------------------------------------------
# Legacy flat spellings (hidden deprecated aliases)
# ----------------------------------------------------------------------
# Old flat command -> grouped replacement.  Handled before argparse ever
# sees the argv, so the aliases stay out of --help while every existing
# script, CI job and doc example keeps working.
_LEGACY_COMMANDS = {
    "decide-cq": ["decide", "cq"],
    "decide-path": ["decide", "path"],
    "certify-ucq": ["decide", "ucq"],
}

# Groups whose bare legacy spelling (``repro serve --port N``) now needs
# a verb: anything that is not one of the group's verbs gets the default
# verb spliced in.
_GROUP_VERBS = {
    "serve": ("start", "ping", "stats", "metrics", "drain", "load"),
    "bench": ("run", "check"),
}
_GROUP_DEFAULTS = {"serve": "start", "bench": "run"}

_DEPRECATION_WARNED = False


def _warn_deprecated(old: str, new: str) -> None:
    """One deprecation notice per process, on stderr (never stdout —
    the serve/batch protocol streams own stdout byte-for-byte)."""
    global _DEPRECATION_WARNED
    if _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED = True
    print(f"repro: '{old}' is deprecated; use '{new}'", file=sys.stderr)


def _rewrite_legacy(argv: List[str]) -> List[str]:
    """Map pre-grouping flat spellings onto the grouped command tree."""
    if not argv:
        return argv
    head, rest = argv[0], argv[1:]
    if head in _LEGACY_COMMANDS:
        replacement = _LEGACY_COMMANDS[head]
        _warn_deprecated(head, " ".join(["repro"] + replacement))
        return replacement + rest
    if head == "batch" and rest[:1] == ["cache"]:
        _warn_deprecated("batch cache", "repro cache info")
        return ["cache", "info"] + rest[1:]
    if head in _GROUP_VERBS:
        nxt = rest[0] if rest else None
        if nxt in _GROUP_VERBS[head] or nxt in ("-h", "--help"):
            return argv
        default = _GROUP_DEFAULTS[head]
        _warn_deprecated(head, f"repro {head} {default}")
        return [head, default] + rest
    return argv


# ----------------------------------------------------------------------
# decide / report / hilbert
# ----------------------------------------------------------------------
def _cmd_decide_cq(args: argparse.Namespace) -> int:
    views = [parse_boolean_cq(text) for text in args.view]
    query = parse_boolean_cq(args.query)
    result = decide_bag_determinacy(views, query)
    print("DETERMINED" if result.determined else "NOT DETERMINED")
    print(result.explain())
    if not result.determined and args.witness:
        pair = result.witness()
        print(pair.explain())
        report = pair.verify()
        print(f"witness verified: {report.ok} "
              f"(q answers {report.query_answers[0]} vs {report.query_answers[1]})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    views = [parse_boolean_cq(text) for text in args.view]
    query = parse_boolean_cq(args.query)
    print(render_report(views, query))
    return 0


def _cmd_decide_path(args: argparse.Namespace) -> int:
    views = [parse_path(text) for text in args.view]
    query = parse_path(args.query)
    result = decide_path_determinacy(views, query)
    print("DETERMINED (set ⟺ bag, Theorem 1)" if result.determined
          else "NOT DETERMINED (set ⟺ bag, Theorem 1)")
    print(result.explain())
    return 0


def _cmd_decide_ucq(args: argparse.Namespace) -> int:
    views = [parse_ucq(text) for text in args.view]
    query = parse_ucq(args.query)
    certificate = linear_certificate(views, query)
    if certificate is None:
        print("NO LINEAR CERTIFICATE (determinacy status unknown — "
              "the problem is undecidable, Theorem 2)")
        return 1
    print("DETERMINED via linear identity:")
    print(certificate.explain())
    return 0


def _parse_monomial(text: str) -> Monomial:
    """``"-2:x^2*y"`` → Monomial(-2, {x:2, y:1}); ``"3:"`` is constant 3."""
    head, _, tail = text.partition(":")
    coefficient = int(head)
    exponents = {}
    if tail.strip():
        for factor in tail.split("*"):
            name, _, power = factor.strip().partition("^")
            exponents[name] = int(power) if power else 1
    return Monomial(coefficient, exponents)


def _cmd_hilbert(args: argparse.Namespace) -> int:
    instance = DiophantineInstance([_parse_monomial(t) for t in args.monomial])
    reduction = build_reduction(instance)
    print(reduction.summary())
    verdict, witness = semidecide_reduction_determinacy(reduction, args.bound)
    if verdict == "not-determined":
        print(f"NOT DETERMINED: solution {witness.solution} gives structures "
              f"with q(D) = {witness.query_answers[0]} ≠ "
              f"{witness.query_answers[1]} = q(D')")
    else:
        print(f"no counterexample with unknowns ≤ {args.bound}; "
              f"V →bag q iff the polynomial has no natural solution at all")
    return 0


# ----------------------------------------------------------------------
# bench
# ----------------------------------------------------------------------
def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.benchsuite import format_report, run_benchmarks, write_report

    if args.json or args.output is not None:
        path = args.output or "BENCH_engine.json"
        report = write_report(path=path, repeat=args.repeat)
        print(f"wrote {path}")
    else:
        report = run_benchmarks(repeat=args.repeat)
    print(format_report(report))
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from repro.benchsuite import compare_reports, load_report, render_gate

    baseline = load_report(args.baseline)
    current = load_report(args.current)
    lines, failures = compare_reports(baseline, current,
                                      args.factor, args.slack)
    print(render_gate(lines, failures, args.factor, args.slack))
    return 1 if failures else 0


# ----------------------------------------------------------------------
# batch
# ----------------------------------------------------------------------
def _cmd_batch_gen(args: argparse.Namespace) -> int:
    from repro.batch.scenarios import generate_scenario, write_scenario

    tasks = generate_scenario(args.kind, args.count, seed=args.seed)
    if args.output == "-":
        write_scenario(tasks, sys.stdout)
    else:
        with open(args.output, "w", encoding="utf-8") as sink:
            written = write_scenario(tasks, sink)
        print(f"wrote {written} {args.kind} tasks to {args.output}")
    return 0


def _cmd_batch_run(args: argparse.Namespace) -> int:
    from repro.batch.runner import run_batch

    fault_plan = None
    if args.fault_plan is not None:
        from repro.faults.inject import FaultPlan

        fault_plan = FaultPlan.from_file(args.fault_plan).to_spec()
    if args.cache is None and (args.shards is not None
                               or args.memory_tier is not None):
        raise ReproError("--shards/--memory-tier require --cache")
    summary = run_batch(
        args.input,
        args.output,
        workers=args.workers,
        cache_path=args.cache,
        chunk_size=args.chunk_size,
        preload=args.preload_limit,
        resume=args.resume,
        max_retries=args.max_retries,
        fault_plan=fault_plan,
        chunk_timeout=args.chunk_timeout,
        shards=args.shards,
        memory_tier=args.memory_tier,
    )
    print(
        f"batch: {summary['written']} results written "
        f"({summary['skipped']} resumed, {summary['errors']} task errors, "
        f"{summary['quarantined']} quarantined, {summary['tasks']} tasks "
        f"seen)",
        file=sys.stderr,
    )
    return 0


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def _open_cache(path: str):
    import os

    from repro.batch.store import open_store

    if not os.path.exists(path):
        # Opening would silently create an empty database — a typo'd
        # path must not be indistinguishable from an empty cache.
        raise ReproError(f"no such cache file: {path}")
    return open_store(path)


def _cmd_cache_info(args: argparse.Namespace) -> int:
    with _open_cache(args.cache) as store:
        info = store.info()
        if args.json:
            print(json.dumps(info, indent=2, sort_keys=True))
            return 0
        print(f"{args.cache}: {info['counts']} persisted hom counts, "
              f"{info['exists']} existence verdicts")
        if info.get("shards", 1) > 1 or info.get("memory_tier"):
            tier = info["memory_tier"]
            print(f"  schema v{info['schema_version']}, "
                  f"{info['shards']} shards, memory tier "
                  f"{tier['entries']}/{tier['capacity']} entries")
            for shard in info["shard_files"]:
                print(f"  shard {shard['index']:03d}: "
                      f"{shard['counts']} counts, {shard['exists']} exists, "
                      f"{shard['bytes']} bytes")
    return 0


def _cmd_cache_flush(args: argparse.Namespace) -> int:
    with _open_cache(args.cache) as store:
        removed = store.clear()
    print(f"{args.cache}: flushed {removed} persisted answers")
    return 0


def _cmd_cache_merge(args: argparse.Namespace) -> int:
    from repro.batch.store import copy_rows, open_store

    with open_store(args.into, shards=args.shards) as destination:
        total = 0
        for source_path in args.sources:
            with _open_cache(source_path) as source:
                moved = copy_rows(source, destination)
            print(f"{source_path}: merged {moved} rows", file=sys.stderr)
            total += moved
        counts = destination.counts_len()
        exists = destination.exists_len()
    print(f"{args.into}: {total} rows merged "
          f"({counts} counts, {exists} verdicts persisted)")
    return 0


def _cmd_cache_compact(args: argparse.Namespace) -> int:
    with _open_cache(args.cache) as store:
        sizes = store.compact()
    print(f"{args.cache}: compacted {sizes['bytes_before']} -> "
          f"{sizes['bytes_after']} bytes")
    return 0


def _cmd_cache_warm_pack(args: argparse.Namespace) -> int:
    from repro.batch.store import export_warm_pack

    with _open_cache(args.cache) as store:
        rows = export_warm_pack(store, args.output, limit=args.limit)
    print(f"{args.output}: packed {rows} rows from {args.cache}")
    return 0


# ----------------------------------------------------------------------
# serve (daemon + management client)
# ----------------------------------------------------------------------
def _cmd_serve_start(args: argparse.Namespace) -> int:
    import signal

    from repro.obs import StructuredLogger
    from repro.service import SolverService, serve_socket, serve_stdio

    if args.cache is None and (args.shards is not None
                               or args.memory_tier is not None
                               or args.preload_pack is not None):
        raise ReproError(
            "--shards/--memory-tier/--preload-pack require --cache")
    logger = None if args.no_request_log else \
        StructuredLogger(component="repro.serve")
    if args.use_async:
        return _serve_start_async(args, logger)
    if args.http_port is not None:
        raise ReproError("--http-port requires --async (the HTTP/"
                         "WebSocket facade rides the async front end)")
    service = SolverService(workers=args.workers, store_path=args.cache,
                            shards=args.shards,
                            memory_tier=args.memory_tier,
                            preload_pack=args.preload_pack,
                            strategy=args.strategy, preload=args.preload,
                            logger=logger,
                            request_deadline_ms=args.request_deadline_ms)

    def _graceful(signum, frame):  # noqa: ARG001 — signal signature
        service.request_shutdown()
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _graceful)
    try:
        with service:
            if args.port is not None:
                print(f"repro serve: listening on {args.host}:{args.port} "
                      f"({args.workers} workers)", file=sys.stderr)
                serve_socket(service, host=args.host, port=args.port)
            else:
                serve_stdio(service)
    finally:
        signal.signal(signal.SIGTERM, previous)
        report = service.stats()
        engine = report["session"]["engine"]  # type: ignore[index]
        svc = report["service"]  # type: ignore[index]
        print(
            f"repro serve: {svc['requests']} requests "
            f"({svc['errors']} errors) in {svc['uptime_s']}s; "
            f"memo hits {engine['hits']}+{engine['exists_hits']}, "
            f"misses {engine['misses']}+{engine['exists_misses']}",
            file=sys.stderr,
        )
    return 0


def _serve_start_async(args: argparse.Namespace, logger) -> int:
    """The ``serve start --async`` path: asyncio front end, per-tenant
    sessions, priorities/backpressure, optional HTTP/WebSocket port."""
    import asyncio
    import signal

    from repro.service import (
        AsyncSolverService,
        serve_async_stdio,
        serve_async_tcp,
    )

    service = AsyncSolverService(
        workers=args.workers, max_queue=args.max_queue,
        store_path=args.cache, shards=args.shards,
        memory_tier=args.memory_tier, preload_pack=args.preload_pack,
        strategy=args.strategy, preload=args.preload, logger=logger,
        request_deadline_ms=args.request_deadline_ms,
        max_inflight=args.tenant_max_inflight)

    def _graceful(signum, frame):  # noqa: ARG001 — signal signature
        service.request_drain()

    async def _tcp() -> None:
        try:
            await serve_async_tcp(service, host=args.host, port=args.port,
                                  http_port=args.http_port)
        finally:
            await service.aclose()

    async def _stdio() -> None:
        try:
            await serve_async_stdio(service)
        finally:
            await service.aclose()

    previous = signal.signal(signal.SIGTERM, _graceful)
    try:
        if args.port is not None:
            facade = (f" + http :{args.http_port}"
                      if args.http_port is not None else "")
            print(f"repro serve: async listening on "
                  f"{args.host}:{args.port}{facade} "
                  f"({args.workers} workers)", file=sys.stderr)
            asyncio.run(_tcp())
        else:
            asyncio.run(_stdio())
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        report = service.stats()
        engine = report["session"]["engine"]  # type: ignore[index]
        svc = report["service"]  # type: ignore[index]
        print(
            f"repro serve: {svc['requests']} requests "
            f"({svc['errors']} errors, {svc['overloaded']} overloaded) "
            f"in {svc['uptime_s']}s across "
            f"{len(report['tenants'])} tenant(s); "  # type: ignore[arg-type]
            f"memo hits {engine['hits']}+{engine['exists_hits']}, "
            f"misses {engine['misses']}+{engine['exists_misses']}",
            file=sys.stderr,
        )
    return 0


def _client(args: argparse.Namespace):
    from repro.service import DaemonClient

    return DaemonClient(host=args.host, port=args.port, timeout=args.timeout)


def _print_json(payload) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_serve_ping(args: argparse.Namespace) -> int:
    client = _client(args)
    if getattr(args, "wait", None) is not None:
        waited = client.wait_until_ready(timeout=args.wait)
        print(f"repro serve: ready after {waited:.3f}s", file=sys.stderr)
    _print_json(client.ping())
    return 0


def _cmd_serve_stats(args: argparse.Namespace) -> int:
    _print_json(_client(args).stats())
    return 0


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    client = _client(args)
    if args.prometheus:
        response = client.metrics(format="prometheus")
        exposition = response.get("exposition")
        if not isinstance(exposition, str):
            raise ReproError(
                f"daemon did not return an exposition: {response!r}")
        sys.stdout.write(exposition)
        return 0
    _print_json(client.metrics())
    return 0


def _cmd_serve_drain(args: argparse.Namespace) -> int:
    _print_json(_client(args).drain())
    return 0


def _cmd_serve_load(args: argparse.Namespace) -> int:
    """Closed-loop load run against a running daemon; JSON summary."""
    from repro.service.loadgen import default_task_lines, run_load

    report = run_load(
        args.host, args.port,
        default_task_lines(args.tasks, seed=args.seed),
        clients=args.clients,
        requests_per_client=args.requests,
        transport=args.transport,
        timeout=args.timeout)
    _print_json(report.summary())
    if report.errors and not args.allow_errors:
        print(f"repro serve load: {report.errors} request(s) errored",
              file=sys.stderr)
        return 1
    if args.max_p99_ms is not None and report.p99_ms > args.max_p99_ms:
        print(f"repro serve load: p99 {report.p99_ms:.3f}ms exceeds "
              f"bound {args.max_p99_ms}ms", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-determinacy",
        description="Bag-semantics query determinacy (PODS 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # ---------------------------------------------------------- decide
    decide = sub.add_parser(
        "decide", help="determinacy decision procedures")
    decide_sub = decide.add_subparsers(dest="decide_command", required=True)

    cq = decide_sub.add_parser(
        "cq", help="boolean CQ determinacy (Theorem 3)")
    cq.add_argument("--view", action="append", default=[], metavar="CQ")
    cq.add_argument("--query", required=True, metavar="CQ")
    cq.add_argument("--witness", action="store_true",
                    help="construct and verify a counterexample when not determined")
    cq.set_defaults(handler=_cmd_decide_cq)

    path = decide_sub.add_parser(
        "path", help="path query determinacy (Theorem 1)")
    path.add_argument("--view", action="append", default=[], metavar="WORD")
    path.add_argument("--query", required=True, metavar="WORD")
    path.set_defaults(handler=_cmd_decide_path)

    ucq = decide_sub.add_parser(
        "ucq", help="linear certificate for boolean UCQs")
    ucq.add_argument("--view", action="append", default=[], metavar="UCQ")
    ucq.add_argument("--query", required=True, metavar="UCQ")
    ucq.set_defaults(handler=_cmd_decide_ucq)

    report = sub.add_parser("report", help="full markdown report for a CQ instance")
    report.add_argument("--view", action="append", default=[], metavar="CQ")
    report.add_argument("--query", required=True, metavar="CQ")
    report.set_defaults(handler=_cmd_report)

    hilbert = sub.add_parser("hilbert", help="Appendix-A reduction explorer")
    hilbert.add_argument("--monomial", action="append", required=True,
                         metavar="C:VARS", help='e.g. "-2:x^2*y"')
    hilbert.add_argument("--bound", type=int, default=10)
    hilbert.set_defaults(handler=_cmd_hilbert)

    # ----------------------------------------------------------- bench
    bench = sub.add_parser("bench", help="engine micro-benchmarks")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run the micro-benchmark suite")
    bench_run.add_argument("--json", action="store_true",
                           help="write machine-readable timings to "
                                "BENCH_engine.json (or --output PATH)")
    bench_run.add_argument("--output", default=None, metavar="PATH",
                           help="write the JSON report to PATH (implies --json)")
    bench_run.add_argument("--repeat", type=int, default=3,
                           help="timing repetitions (best-of)")
    bench_run.set_defaults(handler=_cmd_bench_run)

    bench_check = bench_sub.add_parser(
        "check", help="compare a bench report against a baseline "
                      "(the CI regression gate)")
    bench_check.add_argument("--baseline", default="BENCH_engine.json",
                             metavar="PATH",
                             help="checked-in report "
                                  "(default: BENCH_engine.json)")
    bench_check.add_argument("--current", required=True, metavar="PATH",
                             help="freshly produced report to judge")
    bench_check.add_argument("--factor", type=float, default=2.0,
                             help="allowed slowdown factor (default: 2.0)")
    bench_check.add_argument("--slack", type=float, default=0.005,
                             help="additive slack in seconds (default: 0.005)")
    bench_check.set_defaults(handler=_cmd_bench_check)

    # ----------------------------------------------------------- batch
    batch = sub.add_parser(
        "batch", help="throughput mode: evaluate JSONL task streams")
    batch_sub = batch.add_subparsers(dest="batch_command", required=True)

    gen = batch_sub.add_parser(
        "gen", help="synthesize a randomized scenario file")
    gen.add_argument("--kind", default="cq",
                     choices=["cq", "cq-witness", "containment", "path",
                              "ucq", "dense", "hom", "mixed"],
                     help="instance family (default: cq)")
    gen.add_argument("--count", type=int, default=100, metavar="N",
                     help="number of tasks (default: 100)")
    gen.add_argument("--seed", type=int, default=0,
                     help="RNG seed; (kind, count, seed) fixes the file")
    gen.add_argument("--output", default="-", metavar="PATH",
                     help="JSONL destination ('-' = stdout)")
    gen.set_defaults(handler=_cmd_batch_gen)

    run = batch_sub.add_parser(
        "run", help="evaluate a JSONL task stream")
    run.add_argument("--input", default="-", metavar="PATH",
                     help="JSONL task source ('-' = stdin)")
    run.add_argument("--output", default="-", metavar="PATH",
                     help="JSONL result destination ('-' = stdout)")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="worker processes (1 = run inline)")
    run.add_argument("--cache", default=None, metavar="PATH",
                     help="persistent hom-count store shared by all "
                          "workers and across runs (a file = single "
                          "SQLite store; a directory or --shards = "
                          "sharded tiered store)")
    run.add_argument("--shards", type=int, default=None, metavar="N",
                     help="partition a store created at --cache into N "
                          "hash-partitioned SQLite shards (implies the "
                          "tiered store; workers open only the shards "
                          "their keys hash into)")
    run.add_argument("--memory-tier", type=int, default=None, metavar="K",
                     help="in-process LRU tier capacity in entries for "
                          "the tiered store (implies it; default 8192)")
    run.add_argument("--preload-limit", type=int, default=2048,
                     metavar="K",
                     help="most-recently-recorded stored counts seeded "
                          "into each worker's memo at startup "
                          "(default: 2048)")
    run.add_argument("--chunk-size", type=int, default=8, metavar="M",
                     help="tasks per scheduling chunk (default: 8)")
    run.add_argument("--resume", action="store_true",
                     help="skip task ids already answered in --output "
                          "and append the rest")
    run.add_argument("--max-retries", type=int, default=2, metavar="R",
                     help="attempts per chunk after a worker death before "
                          "bisecting/quarantining (default: 2)")
    run.add_argument("--fault-plan", default=None, metavar="PATH",
                     help="JSON fault-injection plan (chaos testing): "
                          "seeded trigger points for worker kills, store "
                          "corruption, connect flaps and engine trips")
    run.add_argument("--chunk-timeout", type=float, default=None,
                     metavar="S",
                     help="seconds before an in-flight chunk's worker is "
                          "declared hung and restarted (default: no limit)")
    run.set_defaults(handler=_cmd_batch_run)

    # ----------------------------------------------------------- cache
    cache = sub.add_parser(
        "cache", help="manage the persistent hom-count store")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    info = cache_sub.add_parser(
        "info", help="row counts (and shard layout) of a store")
    info.add_argument("--cache", required=True, metavar="PATH")
    info.add_argument("--json", action="store_true",
                      help="full machine-readable report: per-shard row "
                           "counts, file sizes, schema version, "
                           "memory-tier occupancy")
    info.set_defaults(handler=_cmd_cache_info)

    flush = cache_sub.add_parser(
        "flush", help="delete every persisted answer from a store file")
    flush.add_argument("--cache", required=True, metavar="PATH")
    flush.set_defaults(handler=_cmd_cache_flush)

    merge = cache_sub.add_parser(
        "merge", help="merge stores (files or shard directories) into one")
    merge.add_argument("sources", nargs="+", metavar="SRC",
                       help="stores to merge rows from")
    merge.add_argument("--into", required=True, metavar="DEST",
                       help="destination store; created if absent "
                            "(existing rows win on key collisions)")
    merge.add_argument("--shards", type=int, default=None, metavar="N",
                       help="shard count when DEST is created by this "
                            "merge (default: 8; ignored for an existing "
                            "store, which keeps its layout)")
    merge.set_defaults(handler=_cmd_cache_merge)

    compact = cache_sub.add_parser(
        "compact", help="VACUUM a store's files to their minimal size")
    compact.add_argument("--cache", required=True, metavar="PATH")
    compact.set_defaults(handler=_cmd_cache_compact)

    warm_pack = cache_sub.add_parser(
        "warm-pack",
        help="export the most recently recorded answers as a compact "
             "warm-start pack (consumed by serve start --preload-pack)")
    warm_pack.add_argument("--cache", required=True, metavar="PATH")
    warm_pack.add_argument("--output", required=True, metavar="PATH",
                           help="pack destination (JSONL)")
    warm_pack.add_argument("--limit", type=int, default=None, metavar="K",
                           help="at most K rows, newest first "
                                "(default: all)")
    warm_pack.set_defaults(handler=_cmd_cache_warm_pack)

    # ----------------------------------------------------------- serve
    serve = sub.add_parser(
        "serve", help="resident solver daemon and its management client")
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    start = serve_sub.add_parser(
        "start", help="run the daemon (stdio by default, TCP with --port)")
    start.add_argument("--host", default="127.0.0.1",
                       help="bind address for TCP mode (default: 127.0.0.1)")
    start.add_argument("--port", type=int, default=None, metavar="N",
                       help="listen on TCP port N; omitted = stdio mode "
                            "(read requests from stdin, answer on stdout)")
    start.add_argument("--workers", type=int, default=4, metavar="N",
                       help="bounded request-dispatch pool size (default: 4)")
    start.add_argument("--cache", default=None, metavar="PATH",
                       help="persistent hom-count store owned by the "
                            "service session (a file = single SQLite "
                            "store; a directory or --shards = sharded "
                            "tiered store)")
    start.add_argument("--shards", type=int, default=None, metavar="N",
                       help="partition a store created at --cache into N "
                            "hash-partitioned SQLite shards")
    start.add_argument("--memory-tier", type=int, default=None,
                       metavar="K",
                       help="in-process LRU tier capacity in entries for "
                            "the tiered store (default 8192)")
    start.add_argument("--preload-pack", default=None, metavar="PATH",
                       help="warm-start pack (cache warm-pack) imported "
                            "into the store before serving")
    start.add_argument("--preload", type=int, default=2048, metavar="K",
                       help="stored counts seeded into the warm memo at "
                            "startup when --cache is given (default: 2048)")
    start.add_argument("--strategy", default="auto",
                       choices=["auto", "backtrack", "dp"],
                       help="counting-backend override for the session")
    start.add_argument("--no-request-log", action="store_true",
                       help="disable the per-request structured JSON log "
                            "lines on stderr")
    start.add_argument("--request-deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="default wall-clock budget per request; an "
                            "over-budget request is answered with a "
                            "structured budget-exceeded error instead of "
                            "stalling the pool (requests may still set "
                            "their own deadline_ms)")
    start.add_argument("--async", dest="use_async", action="store_true",
                       help="run the asyncio front end: persistent-"
                            "connection multiplexing, per-tenant "
                            "sessions with quotas, request priorities, "
                            "admission-control backpressure (DESIGN.md "
                            "§16); same line protocol, byte-identical "
                            "responses")
    start.add_argument("--http-port", type=int, default=None, metavar="N",
                       help="with --async: also serve the HTTP/WebSocket "
                            "facade (GET /healthz, GET /metrics, POST "
                            "/task, GET /ws) on port N")
    start.add_argument("--max-queue", type=int, default=256, metavar="N",
                       help="with --async: dispatch-queue bound; requests "
                            "beyond it are answered with a structured "
                            "overloaded record (default: 256)")
    start.add_argument("--tenant-max-inflight", type=int, default=None,
                       metavar="N",
                       help="with --async: default per-tenant in-flight "
                            "admission quota (default: 8; tenants may "
                            "override via the hello op)")
    start.set_defaults(handler=_cmd_serve_start)

    # Shared client context for the management verbs: every one of them
    # dials the same daemon address, so the connection options live in
    # one parent parser instead of four copies.
    client_opts = argparse.ArgumentParser(add_help=False)
    client_opts.add_argument("--host", default="127.0.0.1",
                             help="daemon address (default: 127.0.0.1)")
    client_opts.add_argument("--port", type=int, required=True, metavar="N",
                             help="daemon TCP port")
    client_opts.add_argument("--timeout", type=float, default=10.0,
                             metavar="S",
                             help="connection timeout in seconds "
                                  "(default: 10)")

    ping = serve_sub.add_parser(
        "ping", parents=[client_opts],
        help="liveness probe against a running daemon")
    ping.add_argument("--wait", type=float, default=None, metavar="S",
                      help="poll until the daemon answers (up to S "
                           "seconds) instead of failing on the first "
                           "refused connection — startup rendezvous for "
                           "scripts and CI")
    ping.set_defaults(handler=_cmd_serve_ping)

    stats = serve_sub.add_parser(
        "stats", parents=[client_opts],
        help="legacy nested statistics from a running daemon")
    stats.set_defaults(handler=_cmd_serve_stats)

    metrics = serve_sub.add_parser(
        "metrics", parents=[client_opts],
        help="namespaced metrics snapshot from a running daemon")
    metrics.add_argument("--prometheus", action="store_true",
                         help="print Prometheus text exposition instead "
                              "of JSON")
    metrics.set_defaults(handler=_cmd_serve_metrics)

    drain = serve_sub.add_parser(
        "drain", parents=[client_opts],
        help="stop a running daemon after in-flight requests finish")
    drain.set_defaults(handler=_cmd_serve_drain)

    load = serve_sub.add_parser(
        "load", parents=[client_opts],
        help="closed-loop load run against a running daemon "
             "(throughput + p50/p99 latency at N concurrent clients)")
    load.add_argument("--clients", type=int, default=16, metavar="N",
                      help="concurrent closed-loop clients (default: 16)")
    load.add_argument("--requests", type=int, default=25, metavar="N",
                      help="requests per client (default: 25)")
    load.add_argument("--transport", default="persistent",
                      choices=["per-request", "persistent", "ws"],
                      help="per-request = dial per request (legacy "
                           "client); persistent = one reused connection "
                           "per client; ws = WebSocket via --http-port "
                           "(default: persistent)")
    load.add_argument("--tasks", type=int, default=8, metavar="N",
                      help="distinct task lines cycled through "
                           "(default: 8)")
    load.add_argument("--seed", type=int, default=2024, metavar="S",
                      help="scenario seed for the task lines")
    load.add_argument("--max-p99-ms", type=float, default=None,
                      metavar="MS",
                      help="exit non-zero when p99 latency exceeds MS")
    load.add_argument("--allow-errors", action="store_true",
                      help="tolerate overload rejections (stress runs) "
                           "instead of exiting non-zero")
    load.set_defaults(handler=_cmd_serve_load)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    if argv is None:
        argv = sys.argv[1:]
    args = parser.parse_args(_rewrite_legacy(list(argv)))
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (``repro serve metrics ... | head``)
        # — not an error.  Point stdout at devnull so the interpreter's
        # shutdown flush does not raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
