"""Command-line front end: ``repro-determinacy`` / ``python -m repro``.

Subcommands
-----------
``decide-cq``     decide boolean-CQ bag-determinacy, print verdict,
                  rewriting or witness summary.
``decide-path``   decide path-query determinacy (both semantics),
                  print the certificate path or the reachable set.
``certify-ucq``   try the linear certificate for boolean UCQs.
``hilbert``       build the Appendix-A reduction for a polynomial and
                  search for a bounded counterexample.
``bench``         run the engine micro-benchmarks; ``--json`` writes
                  machine-readable timings to ``BENCH_engine.json`` so
                  successive PRs can track the perf trajectory.
``batch``         throughput mode: ``batch gen`` synthesizes JSONL
                  scenario files, ``batch run`` evaluates them across
                  worker processes with a persistent hom-count cache,
                  ``batch cache`` inspects that cache.
``serve``         resident mode: a long-running daemon answering the
                  batch task codec over stdio (default) or TCP, one
                  warm solver session shared across every request
                  (``{"op": "stats"}`` lines report it live).

Examples
--------
::

    repro-determinacy decide-cq --view "R(x,y)" --view "S(x,y)" \
        --query "R(x,y), S(u,v)"
    repro-determinacy decide-path --view A.B --view B --query A
    repro-determinacy certify-ucq --view "P(x)" --view "P(x) or R(x)" \
        --query "R(x)"
    repro-determinacy hilbert --monomial "1:x^2" --monomial="-2:y^2" \
        --bound 10

(Monomials with negative coefficients need the ``--monomial=...`` form,
otherwise argparse mistakes ``-2:y^2`` for a flag.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.queries.parser import parse_boolean_cq, parse_path, parse_ucq
from repro.core.decision import decide_bag_determinacy
from repro.core.pathdet import decide_path_determinacy
from repro.core.report import render_report
from repro.ucq.analysis import linear_certificate, semidecide_reduction_determinacy
from repro.ucq.hilbert import DiophantineInstance, Monomial
from repro.ucq.reduction import build_reduction


def _cmd_decide_cq(args: argparse.Namespace) -> int:
    views = [parse_boolean_cq(text) for text in args.view]
    query = parse_boolean_cq(args.query)
    result = decide_bag_determinacy(views, query)
    print("DETERMINED" if result.determined else "NOT DETERMINED")
    print(result.explain())
    if not result.determined and args.witness:
        pair = result.witness()
        print(pair.explain())
        report = pair.verify()
        print(f"witness verified: {report.ok} "
              f"(q answers {report.query_answers[0]} vs {report.query_answers[1]})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    views = [parse_boolean_cq(text) for text in args.view]
    query = parse_boolean_cq(args.query)
    print(render_report(views, query))
    return 0


def _cmd_decide_path(args: argparse.Namespace) -> int:
    views = [parse_path(text) for text in args.view]
    query = parse_path(args.query)
    result = decide_path_determinacy(views, query)
    print("DETERMINED (set ⟺ bag, Theorem 1)" if result.determined
          else "NOT DETERMINED (set ⟺ bag, Theorem 1)")
    print(result.explain())
    return 0


def _cmd_certify_ucq(args: argparse.Namespace) -> int:
    views = [parse_ucq(text) for text in args.view]
    query = parse_ucq(args.query)
    certificate = linear_certificate(views, query)
    if certificate is None:
        print("NO LINEAR CERTIFICATE (determinacy status unknown — "
              "the problem is undecidable, Theorem 2)")
        return 1
    print("DETERMINED via linear identity:")
    print(certificate.explain())
    return 0


def _parse_monomial(text: str) -> Monomial:
    """``"-2:x^2*y"`` → Monomial(-2, {x:2, y:1}); ``"3:"`` is constant 3."""
    head, _, tail = text.partition(":")
    coefficient = int(head)
    exponents = {}
    if tail.strip():
        for factor in tail.split("*"):
            name, _, power = factor.strip().partition("^")
            exponents[name] = int(power) if power else 1
    return Monomial(coefficient, exponents)


def _cmd_hilbert(args: argparse.Namespace) -> int:
    instance = DiophantineInstance([_parse_monomial(t) for t in args.monomial])
    reduction = build_reduction(instance)
    print(reduction.summary())
    verdict, witness = semidecide_reduction_determinacy(reduction, args.bound)
    if verdict == "not-determined":
        print(f"NOT DETERMINED: solution {witness.solution} gives structures "
              f"with q(D) = {witness.query_answers[0]} ≠ "
              f"{witness.query_answers[1]} = q(D')")
    else:
        print(f"no counterexample with unknowns ≤ {args.bound}; "
              f"V →bag q iff the polynomial has no natural solution at all")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.benchsuite import format_report, run_benchmarks, write_report

    if args.json or args.output is not None:
        path = args.output or "BENCH_engine.json"
        report = write_report(path=path, repeat=args.repeat)
        print(f"wrote {path}")
    else:
        report = run_benchmarks(repeat=args.repeat)
    print(format_report(report))
    return 0


def _cmd_batch_gen(args: argparse.Namespace) -> int:
    from repro.batch.scenarios import generate_scenario, write_scenario

    tasks = generate_scenario(args.kind, args.count, seed=args.seed)
    if args.output == "-":
        write_scenario(tasks, sys.stdout)
    else:
        with open(args.output, "w", encoding="utf-8") as sink:
            written = write_scenario(tasks, sink)
        print(f"wrote {written} {args.kind} tasks to {args.output}")
    return 0


def _cmd_batch_run(args: argparse.Namespace) -> int:
    from repro.batch.runner import run_batch

    summary = run_batch(
        args.input,
        args.output,
        workers=args.workers,
        cache_path=args.cache,
        chunk_size=args.chunk_size,
        resume=args.resume,
    )
    print(
        f"batch: {summary['written']} results written "
        f"({summary['skipped']} resumed, {summary['errors']} task errors, "
        f"{summary['tasks']} tasks seen)",
        file=sys.stderr,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service import SolverService, serve_socket, serve_stdio

    service = SolverService(workers=args.workers, store_path=args.cache,
                            strategy=args.strategy, preload=args.preload)

    def _graceful(signum, frame):  # noqa: ARG001 — signal signature
        service.request_shutdown()
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _graceful)
    try:
        with service:
            if args.port is not None:
                print(f"repro serve: listening on {args.host}:{args.port} "
                      f"({args.workers} workers)", file=sys.stderr)
                serve_socket(service, host=args.host, port=args.port)
            else:
                serve_stdio(service)
    finally:
        signal.signal(signal.SIGTERM, previous)
        report = service.stats()
        engine = report["session"]["engine"]  # type: ignore[index]
        svc = report["service"]  # type: ignore[index]
        print(
            f"repro serve: {svc['requests']} requests "
            f"({svc['errors']} errors) in {svc['uptime_s']}s; "
            f"memo hits {engine['hits']}+{engine['exists_hits']}, "
            f"misses {engine['misses']}+{engine['exists_misses']}",
            file=sys.stderr,
        )
    return 0


def _cmd_batch_cache(args: argparse.Namespace) -> int:
    import os

    from repro.batch.cache import SQLiteHomStore

    if not os.path.exists(args.cache):
        # Opening would silently create an empty database — a typo'd
        # path must not be indistinguishable from an empty cache.
        raise ReproError(f"no such cache file: {args.cache}")
    with SQLiteHomStore(args.cache) as store:
        print(f"{args.cache}: {store.counts_len()} persisted hom counts, "
              f"{store.exists_len()} existence verdicts")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-determinacy",
        description="Bag-semantics query determinacy (PODS 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cq = sub.add_parser("decide-cq", help="boolean CQ determinacy (Theorem 3)")
    cq.add_argument("--view", action="append", default=[], metavar="CQ")
    cq.add_argument("--query", required=True, metavar="CQ")
    cq.add_argument("--witness", action="store_true",
                    help="construct and verify a counterexample when not determined")
    cq.set_defaults(handler=_cmd_decide_cq)

    report = sub.add_parser("report", help="full markdown report for a CQ instance")
    report.add_argument("--view", action="append", default=[], metavar="CQ")
    report.add_argument("--query", required=True, metavar="CQ")
    report.set_defaults(handler=_cmd_report)

    path = sub.add_parser("decide-path", help="path query determinacy (Theorem 1)")
    path.add_argument("--view", action="append", default=[], metavar="WORD")
    path.add_argument("--query", required=True, metavar="WORD")
    path.set_defaults(handler=_cmd_decide_path)

    ucq = sub.add_parser("certify-ucq", help="linear certificate for boolean UCQs")
    ucq.add_argument("--view", action="append", default=[], metavar="UCQ")
    ucq.add_argument("--query", required=True, metavar="UCQ")
    ucq.set_defaults(handler=_cmd_certify_ucq)

    hilbert = sub.add_parser("hilbert", help="Appendix-A reduction explorer")
    hilbert.add_argument("--monomial", action="append", required=True,
                         metavar="C:VARS", help='e.g. "-2:x^2*y"')
    hilbert.add_argument("--bound", type=int, default=10)
    hilbert.set_defaults(handler=_cmd_hilbert)

    bench = sub.add_parser("bench", help="engine micro-benchmarks")
    bench.add_argument("--json", action="store_true",
                       help="write machine-readable timings to "
                            "BENCH_engine.json (or --output PATH)")
    bench.add_argument("--output", default=None, metavar="PATH",
                       help="write the JSON report to PATH (implies --json)")
    bench.add_argument("--repeat", type=int, default=3,
                       help="timing repetitions (best-of)")
    bench.set_defaults(handler=_cmd_bench)

    batch = sub.add_parser(
        "batch", help="throughput mode: evaluate JSONL task streams")
    batch_sub = batch.add_subparsers(dest="batch_command", required=True)

    gen = batch_sub.add_parser(
        "gen", help="synthesize a randomized scenario file")
    gen.add_argument("--kind", default="cq",
                     choices=["cq", "cq-witness", "containment", "path",
                              "ucq", "dense", "hom", "mixed"],
                     help="instance family (default: cq)")
    gen.add_argument("--count", type=int, default=100, metavar="N",
                     help="number of tasks (default: 100)")
    gen.add_argument("--seed", type=int, default=0,
                     help="RNG seed; (kind, count, seed) fixes the file")
    gen.add_argument("--output", default="-", metavar="PATH",
                     help="JSONL destination ('-' = stdout)")
    gen.set_defaults(handler=_cmd_batch_gen)

    run = batch_sub.add_parser(
        "run", help="evaluate a JSONL task stream")
    run.add_argument("--input", default="-", metavar="PATH",
                     help="JSONL task source ('-' = stdin)")
    run.add_argument("--output", default="-", metavar="PATH",
                     help="JSONL result destination ('-' = stdout)")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="worker processes (1 = run inline)")
    run.add_argument("--cache", default=None, metavar="PATH",
                     help="persistent hom-count store (SQLite) shared "
                          "by all workers and across runs")
    run.add_argument("--chunk-size", type=int, default=8, metavar="M",
                     help="tasks per scheduling chunk (default: 8)")
    run.add_argument("--resume", action="store_true",
                     help="skip task ids already answered in --output "
                          "and append the rest")
    run.set_defaults(handler=_cmd_batch_run)

    cache = batch_sub.add_parser(
        "cache", help="inspect a persistent hom-count store")
    cache.add_argument("--cache", required=True, metavar="PATH")
    cache.set_defaults(handler=_cmd_batch_cache)

    serve = sub.add_parser(
        "serve", help="resident solver daemon for JSONL request streams")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for TCP mode (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None, metavar="N",
                       help="listen on TCP port N; omitted = stdio mode "
                            "(read requests from stdin, answer on stdout)")
    serve.add_argument("--workers", type=int, default=4, metavar="N",
                       help="bounded request-dispatch pool size (default: 4)")
    serve.add_argument("--cache", default=None, metavar="PATH",
                       help="persistent hom-count store (SQLite) owned by "
                            "the service session")
    serve.add_argument("--preload", type=int, default=2048, metavar="K",
                       help="stored counts seeded into the warm memo at "
                            "startup when --cache is given (default: 2048)")
    serve.add_argument("--strategy", default="auto",
                       choices=["auto", "backtrack", "dp"],
                       help="counting-backend override for the session")
    serve.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
