"""Lightweight per-request phase spans (see :mod:`repro.obs`).

A *span* times one named phase (``parse``, ``plan``, ``count``,
``store``, ``count.dp``, …).  Spans only do work while a collection
context opened by :func:`collect_phases` is active on the current
thread — outside one, :func:`span` returns a shared no-op context
manager, so instrumented hot layers pay a dict probe and nothing else.
The request daemon opens one context per request (when structured
logging is on) and attaches the collected phase timings to the
request's log line; :func:`profile` opens a long-lived context for
ad-hoc profiling runs.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

_TLS = threading.local()


class _NullSpan:
    """Shared do-nothing span for when no collection is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL = _NullSpan()


class _Span:
    __slots__ = ("name", "phases", "start")

    def __init__(self, name: str, phases: Dict[str, float]):
        self.name = name
        self.phases = phases

    def __enter__(self) -> "_Span":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self.start
        self.phases[self.name] = self.phases.get(self.name, 0.0) + elapsed


def span(name: str):
    """A context manager timing ``name`` into the active collection.

    No-op (and allocation-free) when the current thread has no active
    :func:`collect_phases` context.
    """
    phases: Optional[Dict[str, float]] = getattr(_TLS, "phases", None)
    if phases is None:
        return _NULL
    return _Span(name, phases)


@contextmanager
def collect_phases() -> Iterator[Dict[str, float]]:
    """Collect span timings on this thread; yields the phases dict.

    Nested collections stack: the inner context collects, and the
    outer one resumes when it exits.
    """
    previous = getattr(_TLS, "phases", None)
    phases: Dict[str, float] = {}
    _TLS.phases = phases
    try:
        yield phases
    finally:
        _TLS.phases = previous


# Spelled separately so profiling call sites read as intent, not as a
# request-scope leak.
profile = collect_phases
