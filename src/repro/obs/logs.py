"""Structured JSON logs with generated request ids (see :mod:`repro.obs`).

One log record per line, canonical JSON, written to **stderr** (or any
stream the caller hands over) — never stdout, which carries the JSONL
response protocol byte-for-byte.  Request ids are unique per process
lifetime (``<hex prefix>-<sequence>``): the prefix is drawn once per
process from ``os.urandom`` so interleaved logs from several daemons
remain distinguishable, and the sequence makes ids greppable in order.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import time
from typing import IO, Optional

_PREFIX = os.urandom(4).hex()
_SEQUENCE = itertools.count(1)


def new_request_id() -> str:
    """A fresh process-unique request id, e.g. ``req-1f2e3d4c-000017``."""
    return f"req-{_PREFIX}-{next(_SEQUENCE):06d}"


class StructuredLogger:
    """Writes one JSON object per line to a text stream.

    Every record carries ``ts`` (unix seconds, millisecond precision),
    ``event``, and the caller's fields.  ``None``-valued fields are
    dropped, so optional context never pollutes the record.  A logger
    constructed with ``stream=None`` resolves ``sys.stderr`` at each
    write (so pytest's capture and daemon re-execs both see the lines).
    """

    __slots__ = ("_stream", "component")

    def __init__(self, stream: Optional[IO[str]] = None,
                 component: str = "repro"):
        self._stream = stream
        self.component = component

    @property
    def stream(self) -> IO[str]:
        return self._stream if self._stream is not None else sys.stderr

    def log(self, event: str, **fields: object) -> None:
        record = {"ts": round(time.time(), 3),
                  "component": self.component,
                  "event": event}
        record.update((key, value) for key, value in fields.items()
                      if value is not None)
        stream = self.stream
        stream.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":"), default=str) + "\n")
        stream.flush()

    def request(self, request_id: str, *, kind: Optional[str], ok: bool,
                elapsed_s: float, task_id: Optional[str] = None,
                phases: Optional[dict] = None) -> None:
        """The per-request record the daemon emits (phases in ms)."""
        phase_ms = None
        if phases:
            phase_ms = {name: round(seconds * 1000.0, 3)
                        for name, seconds in sorted(phases.items())}
        self.log("request", request_id=request_id, id=task_id, kind=kind,
                 ok=ok, elapsed_ms=round(elapsed_s * 1000.0, 3),
                 phases=phase_ms)

    def __repr__(self) -> str:
        return f"StructuredLogger(component={self.component!r})"
