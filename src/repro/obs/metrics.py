"""The zero-dependency metrics registry (see :mod:`repro.obs`).

Design constraints, in order:

1. **Hot-path cost ≈ an attribute increment.**  Layers hold direct
   references to :class:`Counter` objects and do ``c.value += 1`` —
   no name lookup, no locking, no allocation.  The bench-regression
   gate holds the whole observability core to ≤2% overhead.
2. **One name schema, many owners.**  Each layer (engine, session,
   service) owns a registry for its metrics and *attaches* its
   child's registry, so one ``snapshot()`` at the top walks the whole
   tree.  Names are globally namespaced, so flattening never collides.
3. **Process-global layers stay where they are.**  The intern /
   canonical / bitset counters are module-wide by design; registries
   pull them in through *collector* callbacks instead of re-homing
   state that other processes' tooling already reads.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

Number = Union[int, float]
Snapshot = Dict[str, object]

# Names with one of these suffixes are gauges in merged snapshots:
# summing a size across workers is meaningless, the maximum is the
# honest aggregate.
GAUGE_SUFFIXES = (".cached", ".entries", ".compiled", ".peak_entries",
                  ".uptime_s", ".workers", ".counts", ".exists")


class Counter:
    """A monotonic counter.  Hot paths increment ``value`` directly."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value: either set explicitly or read through a
    callback (``fn``) at snapshot time — the callback form costs the
    instrumented layer nothing between snapshots."""

    __slots__ = ("name", "value", "fn")

    def __init__(self, name: str, fn: Optional[Callable[[], Number]] = None):
        self.name = name
        self.value: Number = 0
        self.fn = fn

    def set(self, value: Number) -> None:
        self.value = value

    def read(self) -> Number:
        return self.fn() if self.fn is not None else self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.read()})"


class Histogram:
    """A log2-bucketed histogram of non-negative values.

    A value ``v`` (truncated to int) lands in the bucket whose label is
    ``2 ** v.bit_length()`` — the least power of two strictly greater
    than ``v``.  Bucket boundaries are therefore exact and
    machine-independent: ``0 → 1``, ``1 → 2``, ``2..3 → 4``,
    ``4..7 → 8``, and so on.  ``count`` and ``sum`` accumulate
    alongside, so mean latency falls out of one snapshot.
    """

    __slots__ = ("name", "count", "sum", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum: Number = 0
        self.buckets: Dict[int, int] = {}

    def observe(self, value: Number) -> None:
        clipped = int(value)
        if clipped < 0:
            clipped = 0
        le = 1 << clipped.bit_length()
        self.count += 1
        self.sum += value
        self.buckets[le] = self.buckets.get(le, 0) + 1

    def reset(self) -> None:
        self.count = 0
        self.sum = 0
        self.buckets.clear()

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {str(le): n for le, n in sorted(self.buckets.items())},
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, count={self.count})"


Collector = Callable[[], Dict[str, Number]]


class MetricsRegistry:
    """A named collection of metrics plus attached child registries.

    ``counter``/``gauge``/``histogram`` create-or-return by name (so
    re-instantiating a layer against a shared registry is safe);
    ``register_collector`` adds a callback returning ``{name: number}``
    read at snapshot time (``monotonic=False`` marks its values as
    gauges for merging); ``attach`` includes another registry's
    metrics in this one's snapshots.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Tuple[Collector, bool]] = []
        self._children: List["MetricsRegistry"] = []

    # -------------------------------------------------- construction
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str,
              fn: Optional[Callable[[], Number]] = None) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name, fn)
        elif fn is not None:
            metric.fn = fn
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def register_collector(self, collector: Collector,
                           monotonic: bool = True) -> None:
        self._collectors.append((collector, monotonic))

    def attach(self, child: "MetricsRegistry") -> None:
        if child is not self and child not in self._children:
            self._children.append(child)

    # -------------------------------------------------- reading
    def snapshot(self) -> Snapshot:
        """The full flat snapshot: ``{namespaced name: value}`` where a
        value is a number (counter/gauge) or a histogram dict."""
        report: Snapshot = {}
        for registry in self._walk():
            for name, counter in registry._counters.items():
                report[name] = counter.value
            for name, gauge in registry._gauges.items():
                report[name] = gauge.read()
            for name, histogram in registry._histograms.items():
                report[name] = histogram.snapshot()
            for collector, _ in registry._collectors:
                report.update(collector())
        return report

    def counters_snapshot(self) -> Dict[str, Number]:
        """Monotonic values only (counters, histogram components, and
        monotonic collector entries), flattened to plain numbers —
        the mergeable cross-process slice of :meth:`snapshot`.
        Histograms expand to ``<name>.count``, ``<name>.sum`` and
        ``<name>.bucket.<le>`` entries."""
        report: Dict[str, Number] = {}
        for registry in self._walk():
            for name, counter in registry._counters.items():
                report[name] = counter.value
            for name, histogram in registry._histograms.items():
                report[f"{name}.count"] = histogram.count
                report[f"{name}.sum"] = histogram.sum
                for le, value in histogram.buckets.items():
                    report[f"{name}.bucket.{le}"] = value
            for collector, monotonic in registry._collectors:
                if monotonic:
                    report.update(collector())
        return report

    def exposition(self) -> str:
        """Prometheus-style text exposition of :meth:`snapshot`.

        Dots become underscores; histograms render cumulative
        ``_bucket{le="..."}`` series plus ``_sum``/``_count``.
        """
        lines: List[str] = []
        for registry in self._walk():
            for name, counter in registry._counters.items():
                flat = _prom_name(name)
                lines.append(f"# TYPE {flat} counter")
                lines.append(f"{flat} {counter.value}")
            for name, gauge in registry._gauges.items():
                flat = _prom_name(name)
                lines.append(f"# TYPE {flat} gauge")
                lines.append(f"{flat} {gauge.read()}")
            for name, histogram in registry._histograms.items():
                flat = _prom_name(name)
                lines.append(f"# TYPE {flat} histogram")
                running = 0
                for le, count in sorted(histogram.buckets.items()):
                    running += count
                    lines.append(f'{flat}_bucket{{le="{le}"}} {running}')
                lines.append(f'{flat}_bucket{{le="+Inf"}} {histogram.count}')
                lines.append(f"{flat}_sum {histogram.sum}")
                lines.append(f"{flat}_count {histogram.count}")
            for collector, monotonic in registry._collectors:
                kind = "counter" if monotonic else "gauge"
                for name, value in sorted(collector().items()):
                    flat = _prom_name(name)
                    lines.append(f"# TYPE {flat} {kind}")
                    lines.append(f"{flat} {value}")
        return "\n".join(lines) + "\n"

    # -------------------------------------------------- internals
    def _walk(self) -> Iterable["MetricsRegistry"]:
        seen = {id(self)}
        stack = [self]
        while stack:
            registry = stack.pop()
            yield registry
            for child in registry._children:
                if id(child) not in seen:
                    seen.add(id(child))
                    stack.append(child)

    def __repr__(self) -> str:
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)}, "
                f"children={len(self._children)})")


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def merge_counter_snapshots(into: Dict[str, Number],
                            delta: Dict[str, Number]) -> Dict[str, Number]:
    """Merge one worker's counter snapshot (or delta) into ``into``.

    Monotonic entries add; entries whose names carry a gauge suffix
    (sizes, peaks) take the maximum — summing live cache sizes across
    workers would fabricate capacity no process ever had.
    """
    for name, value in delta.items():
        if name.endswith(GAUGE_SUFFIXES):
            into[name] = max(into.get(name, 0), value)
        else:
            into[name] = into.get(name, 0) + value
    return into
