"""Operator-grade observability core (metrics, logs, traces).

This package is the one place the system's runtime telemetry lives.
Three zero-dependency layers, all safe to leave enabled in production:

* :mod:`repro.obs.metrics` — a metrics registry holding monotonic
  counters, gauges and log2-bucketed histograms under **namespaced
  metric names**.  Registries compose (`attach`), so the service
  registry exposes the session's and the engine's metrics in one
  snapshot, and snapshots from batch worker processes merge into the
  run summary.
* :mod:`repro.obs.logs` — structured JSON log lines with generated
  request ids, written to stderr (never stdout: the JSONL protocol
  stream stays byte-identical).
* :mod:`repro.obs.trace` — lightweight phase spans
  (``parse → plan → count → store``) collected per request; strict
  no-ops when no collection context is active.

The metric-name schema
----------------------
Every metric name is dot-namespaced by the layer that owns it.  This
is the documented schema that ``SolverSession.stats(flat=True)``,
``SolverService.stats(flat=True)`` and the daemon's ``{"op":
"metrics"}`` control op all return, and that future subsystems
(async front end) emit into:

====================================  =========  ========================
name                                  kind       meaning
====================================  =========  ========================
``engine.memo.hits`` / ``.misses``    counter    canonical count memo
``engine.exists.hits`` / ``.misses``  counter    existence-probe memo
``engine.store.hits`` / ``.misses``   counter    persistent store probes
``engine.count.dp`` / ``.backtrack``  counter    counts per backend
``engine.dp.width.<w>``               counter    DP widths (exact buckets)
``engine.memo.entries``               gauge      live memo size
``engine.exists.entries``             gauge      live exists-memo size
``engine.targets.compiled``           gauge      compiled target indexes
``intern.structures`` / ``.hits``     counter    shared intern layer
``canonical.keys`` / ``.hits``        counter    canonical labelings
``intern.cached`` / ``canonical.cached``  gauge  live lru sizes
``bitset.propagations``               counter    bitset domain narrowings
``bitset.fallbacks``                  counter    set-kernel fallbacks
``dp.packed.fallbacks``               counter    packed-DP fallbacks
``dp.packed.peak_entries``            gauge      largest packed table
``session.tasks.evaluated``           counter    requests answered
``session.tasks.errors``              counter    requests failed
``session.tasks.budget_exceeded``     counter    requests cut off by budget
``store.lookups`` / ``.lookup_hits``  counter    SQLite store traffic
``store.inserts``                     counter    SQLite store writes
``store.corruptions``                 counter    corrupt files quarantined
``store.retries``                     counter    ops retried after a heal
``store.tier.hits`` / ``.misses``     counter    memory-tier LRU probes
``store.tier.evictions``              counter    memory-tier LRU evictions
``store.flush.batches``               counter    write-behind transactions
``store.flush.rows``                  counter    rows published by flushes
``store.shard.opens``                 counter    shard files actually opened
``store.counts`` / ``store.exists``   gauge      persisted rows
``store.tier.entries``                gauge      live memory-tier size
``store.shards``                      gauge      shard count of the store
``budget.exceeded_deadline``          counter    wall-clock budget trips
``budget.exceeded_steps``             counter    work-budget trips
``budget.injected``                   counter    injected engine faults
``budget.degraded``                   counter    DP→backtracking retries
``batch.worker.restarts``             counter    pool restarts after death
``batch.chunk.retries``               counter    chunks retried to success
``batch.tasks.quarantined``           counter    poison tasks quarantined
``service.requests`` / ``.errors``    counter    service request stream
``service.control_requests``          counter    control-op lines
``service.requests.kind.<kind>``      counter    per-task-kind requests
``service.request.latency_us``        histogram  request latency (log2)
``service.request.budget_exceeded``   counter    budget-limited requests
``service.uptime_s``                  gauge      daemon uptime
``service.workers``                   gauge      dispatch pool size
``service.overloaded``                counter    requests shed (async)
``service.request.queued_us``         histogram  admission→dispatch wait
``service.queue.depth``               gauge      async dispatch queue depth
``service.inflight``                  gauge      admitted, not yet answered
``service.tenants.opened``            counter    tenants ever created
``service.tenants.active``            gauge      live tenants (named+anon)
``service.tenant.<name>.requests``    counter    per-tenant request stream
``service.tenant.<name>.errors``      counter    per-tenant error answers
``service.tenant.<name>.rejected``    counter    per-tenant overload sheds
====================================  =========  ========================

The ``budget.*`` counters live in :mod:`repro.faults.budget` and
surface through ``engine.stats()``; the ``batch.*`` fault counters
merge from worker processes into ``run_batch``'s summary ``metrics``
block (and its ``retries``/``worker_restarts``/``quarantined``
top-level fields).

Histograms bucket by powers of two: a value ``v`` lands in the bucket
labeled ``2**v.bit_length()`` — the least power of two strictly greater
than ``v`` (so bucket ``1`` holds ``v == 0``, bucket ``8`` holds
``4 <= v <= 7``).  Snapshots render a histogram as
``{"count": n, "sum": s, "buckets": {"<le>": c, ...}}``; the
Prometheus exposition renders cumulative ``_bucket{le="..."}`` series.
"""

from repro.obs.logs import StructuredLogger, new_request_id
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_counter_snapshots,
)
from repro.obs.trace import collect_phases, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StructuredLogger",
    "collect_phases",
    "merge_counter_snapshots",
    "new_request_id",
    "span",
]
