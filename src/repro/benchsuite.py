"""Machine-readable micro-benchmarks for the counting engine.

``python -m repro.cli bench --json`` runs this suite and writes
``BENCH_engine.json`` so the perf trajectory can be tracked PR over PR
(EXPERIMENTS.md records the history).  The workloads mirror the
E-series benchmarks in ``benchmarks/``:

* ``hom_large_target``       — E5: connected counting into cliques,
  cold engine (compile + count, no memo reuse) vs the naive direct
  backtracking counter;
* ``hom_memoized``           — E5 steady state: the shared-engine path
  the decision procedure actually exercises (memo hits);
* ``hom_isomorphic_components`` — canonical-component memoization over
  sources assembled from renamed copies of a small component pool;
* ``hom_interning``          — E18: the interned core in isolation —
  canonical-key dedup of mass-produced isomorphic components vs the
  seed-era pairwise ``find_isomorphism`` bucket scan, and cold
  large-target counting through the interned engine vs the naive
  constant-based counter;
* ``decision``               — E4: the full Theorem 3 pipeline on a
  synthetic 16-view catalog;
* ``hom_treewidth``          — E16: tree-decomposition DP vs
  backtracking on bounded-treewidth sources (a 3×4 grid and a long
  chained join) into a dense target, plus an assertion that cost-based
  plan selection picks the DP on its own;
* ``service_throughput``     — E17: a warm ``repro serve`` session
  answering a mixed request stream vs cold per-invocation dispatch
  (fresh session per task — the one-shot CLI cost model), results
  byte-compared before timing;
* ``service_concurrency``    — E21: 16 closed-loop clients against the
  async daemon over persistent connections vs the threaded daemon with
  a fresh connection per request (the legacy client's cost model) —
  throughput plus p50/p99 tail latency, results byte-compared against
  single-threaded batch evaluation before timing;
* ``linalg_det``             — Bareiss fraction-free determinant vs the
  textbook Fraction-Gauss reference on a radix-style integer matrix.

Every engine-built workload routes its sessions through one factory
(:func:`bench_session`), so a bench run reports unified session stats
instead of scattering anonymous ``HomEngine()`` instances.  Every
workload cross-checks its counts against ground truth before timing,
so a regression in correctness fails the bench run itself.
"""

from __future__ import annotations

import json
import random
import time
from typing import Callable, Dict, List

from repro.hom.count import count_homs
from repro.hom.engine import (
    TargetIndex,
    choose_strategy,
    count_plan,
    source_plan,
)
from repro.hom.search import count_homomorphisms_direct
from repro.linalg.matrix import QMatrix, gaussian_det
from repro.queries.cq import cq_from_structure
from repro.session import SolverSession, default_session
from repro.structures.generators import (
    clique_structure,
    cycle_structure,
    grid_structure,
    path_structure,
)
from repro.structures.operations import sum_with_multiplicities
from repro.structures.structure import Structure
from repro.core.decision import decide_bag_determinacy


def bench_session(**knobs) -> SolverSession:
    """The one session factory every bench workload goes through.

    Cold workloads get a fresh scoped session (same configuration
    surface as production: strategy/store/limits via ``knobs``); the
    factory is the single place a bench-wide override would be wired.
    """
    return SolverSession(**knobs)


def _component_pool():
    """The 7-element pool the synthetic workloads draw from (mirrors
    ``benchmarks/workloads.py``)."""
    return [
        path_structure(["R"]),
        path_structure(["R", "R"]),
        path_structure(["S"]),
        path_structure(["R", "S"]),
        path_structure(["S", "R"]),
        cycle_structure(3),
        cycle_structure(4),
    ]


def _make_instance(n_views: int, n_components: int, seed: int = 0):
    rng = random.Random(seed)
    pool = _component_pool()

    def make_query():
        pieces = [
            (rng.randint(1, 2), rng.choice(pool))
            for _ in range(rng.randint(1, n_components))
        ]
        return cq_from_structure(sum_with_multiplicities(pieces))

    views = [make_query() for _ in range(n_views)]
    return views, make_query()


def _timeit(fn: Callable[[], object], repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmarks(repeat: int = 3) -> Dict[str, object]:
    """Run every workload; returns the report dict."""
    repeat = max(1, repeat)
    report: Dict[str, object] = {
        "suite": "repro-engine-bench",
        "repeat": repeat,
        "workloads": {},
    }
    workloads: Dict[str, Dict[str, float]] = report["workloads"]  # type: ignore

    # -------------------------------------------------- hom_large_target
    path3 = path_structure(["R", "R", "R"])
    big = clique_structure(8)
    expected = 8 * 7 ** 3
    assert count_homs(path3, big) == expected
    assert count_homomorphisms_direct(path3, big) == expected

    def cold_engine():
        session = bench_session()
        for _ in range(5):
            session.clear()
            session.count(path3, big)

    direct = _timeit(lambda: [count_homomorphisms_direct(path3, big)
                              for _ in range(5)], repeat)
    cold = _timeit(cold_engine, repeat)
    workloads["hom_large_target"] = {
        "direct_backtracking_s": direct,
        "cold_engine_s": cold,
        "speedup": direct / cold if cold else float("inf"),
    }

    # -------------------------------------------------- hom_memoized
    shared = default_session()
    shared.count(path3, big)

    memo = _timeit(lambda: [shared.count(path3, big) for _ in range(5)], repeat)
    workloads["hom_memoized"] = {
        "direct_backtracking_s": direct,
        "memoized_engine_s": memo,
        "speedup": direct / memo if memo else float("inf"),
    }

    # -------------------------------------- hom_isomorphic_components
    pool = _component_pool()
    renamed: List = []
    for i in range(12):
        base = pool[i % len(pool)]
        renamed.append(base.rename({c: (i, c) for c in base.domain()}))
    source = sum_with_multiplicities([(1, s) for s in renamed])
    target = clique_structure(5)
    truth = count_homomorphisms_direct(source, target)

    def canonical_memo():
        session = bench_session()
        for _ in range(3):
            session.clear()
            assert session.count(source, target) == truth

    def exact_dict():
        # The seed-era strategy: exact (component, leaf) dict keys over
        # the naive counter — renamed components never share entries.
        from repro.structures.components import connected_components

        for _ in range(3):
            cache: dict = {}
            total = 1
            for component in connected_components(source):
                key = (component, target)
                value = cache.get(key)
                if value is None:
                    value = count_homomorphisms_direct(component, target)
                    cache[key] = value
                total *= value
            assert total == truth

    iso_engine = _timeit(canonical_memo, repeat)
    iso_dict = _timeit(exact_dict, repeat)
    workloads["hom_isomorphic_components"] = {
        "exact_key_dict_s": iso_dict,
        "canonical_engine_s": iso_engine,
        "speedup": iso_dict / iso_engine if iso_engine else float("inf"),
    }

    # -------------------------------------------------- hom_interning
    # E18: the interned-core layers in isolation.  (a) Identifying the
    # iso classes of mass-produced isomorphic components by canonical
    # byte key vs the seed-era invariant-bucket + pairwise
    # find_isomorphism scan.  The corpus is the bucket-degenerate
    # shape the pairwise design is weakest on: disjoint unions of
    # directed cycles partitioning 14 vertices are 1-WL-uniform, so
    # *every* copy of *every* class lands in one invariant bucket and
    # each probe scans failing iso-tests before its match, while the
    # canonical labeling factors per component and stays near-linear.
    # (b) A cold large-target count through the interned engine vs the
    # naive constant-based counter.  Caches are cleared inside each
    # timed run so both paths are measured cold.
    from repro.structures.canonical import canonical_key
    from repro.structures.interned import interned
    from repro.structures.isomorphism import (
        dedupe_up_to_isomorphism,
        invariant_key,
    )

    def cycle_union(lengths, tag) -> Structure:
        union = Structure()
        for position, length in enumerate(lengths):
            union = union.union(
                cycle_structure(length).tagged((tag, position)))
        return union

    partitions = [(14,), (3, 11), (4, 10), (5, 9), (6, 8), (7, 7),
                  (3, 3, 8), (3, 4, 7), (4, 4, 6), (4, 5, 5), (3, 5, 6),
                  (3, 3, 4, 4)]
    corpus: List[Structure] = [
        cycle_union(partitions[i % len(partitions)], i) for i in range(36)]
    classes = len(partitions)
    assert len({invariant_key(s) for s in corpus}) == 1  # one bucket
    assert len(dedupe_up_to_isomorphism(corpus)) == classes

    def dedup_canonical():
        interned.cache_clear()
        canonical_key.cache_clear()
        keys = {canonical_key(s) for s in corpus}
        assert len(keys) == classes

    def dedup_pairwise():
        interned.cache_clear()
        invariant_key.cache_clear()
        assert len(dedupe_up_to_isomorphism(corpus)) == classes

    canonical_dedup = _timeit(dedup_canonical, repeat)
    pairwise_dedup = _timeit(dedup_pairwise, repeat)

    path4 = path_structure(["R", "R", "R", "R"])
    big_target = clique_structure(10)
    truth_large = 10 * 9 ** 4
    assert count_homs(path4, big_target) == truth_large

    def interned_large():
        session = bench_session()
        for _ in range(3):
            session.clear()
            assert session.count(path4, big_target) == truth_large

    large_interned = _timeit(interned_large, repeat)
    large_direct = _timeit(
        lambda: [count_homomorphisms_direct(path4, big_target)
                 for _ in range(3)], repeat)
    workloads["hom_interning"] = {
        "pairwise_iso_dedup_s": pairwise_dedup,
        "canonical_dedup_s": canonical_dedup,
        "speedup_dedup": pairwise_dedup / canonical_dedup
        if canonical_dedup else float("inf"),
        "large_target_direct_s": large_direct,
        "large_target_interned_s": large_interned,
        "speedup_large_target": large_direct / large_interned
        if large_interned else float("inf"),
    }

    # -------------------------------------------------- decision
    views, query = _make_instance(n_views=16, n_components=2, seed=17)
    decide_bag_determinacy(views, query)  # warm the shared engine

    def decide():
        for _ in range(3):
            result = decide_bag_determinacy(views, query)
            assert result.basis.dimension >= 1

    workloads["decision"] = {
        "decide_16_views_s": _timeit(decide, repeat),
    }

    # -------------------------------------------------- hom_treewidth
    # Bounded-treewidth sources into a dense target: the shapes the
    # backtracking counter pays an exponential price for (every
    # homomorphism is enumerated) and the DP counts in |B|^{tw+1}.
    grid = grid_structure(3, 4, horizontal="R", vertical="S")
    chain = path_structure(["R", "S"] * 4)
    dense_target = Structure(
        [("R", (i, j)) for i in range(4) for j in range(4) if i != j]
        + [("S", (i, j)) for i in range(4) for j in range(4) if i != j],
        domain=range(4))
    index = TargetIndex(dense_target)
    plans = [source_plan(grid), source_plan(chain)]
    for plan in plans:
        truth = count_plan(plan, index, strategy="backtrack")
        assert count_plan(plan, index, strategy="dp") == truth
    assert count_plan(source_plan(chain), index, strategy="dp") == \
        count_homomorphisms_direct(chain, dense_target)
    # No override flag: the cost model must pick the DP by itself.
    # Reported as a measured 0/1 (not asserted-then-hardcoded) so a
    # plan-selection regression shows up in the JSON trajectory even
    # when asserts are stripped.
    auto_picks_dp = float(all(
        choose_strategy(plan, index) == "dp" for plan in plans))
    assert auto_picks_dp == 1.0

    backtrack = _timeit(lambda: [count_plan(p, index, strategy="backtrack")
                                 for p in plans], repeat)
    dp = _timeit(lambda: [count_plan(p, index, strategy="dp")
                          for p in plans], repeat)
    workloads["hom_treewidth"] = {
        "backtracking_engine_s": backtrack,
        "dp_engine_s": dp,
        "speedup": backtrack / dp if dp else float("inf"),
        "auto_picks_dp": auto_picks_dp,
    }

    # -------------------------------------------------- hom_bitset
    # E19: the bit-parallel kernels against their set-domain ablation
    # twins — same compiled plans, same target, so the measured gap is
    # purely the representation (int bitmask domains + packed int DP
    # keys vs frozenset domains + tuple keys).  Sources are cheap
    # bounded-treewidth shapes (a 2×3 grid, a 5-edge chain, two
    # triangles glued at a vertex) into a dense 6-element target; all
    # four kernels are cross-checked against the direct counter before
    # timing.
    from repro.hom.dpcount import _count_plan_dp_sets, count_plan_dp
    from repro.hom.engine import _count_bitset, _count_sets

    dense6 = Structure(
        [("R", (i, j)) for i in range(6) for j in range(6) if i != j],
        domain=range(6))
    bowtie = Structure([
        ("R", ("a", "b")), ("R", ("b", "c")), ("R", ("c", "a")),
        ("R", ("a", "d")), ("R", ("d", "e")), ("R", ("e", "a")),
    ])
    bitset_sources = [
        grid_structure(2, 3, horizontal="R", vertical="R"),
        path_structure(["R"] * 5),
        bowtie,
    ]
    bitset_index = TargetIndex(dense6)
    bitset_plans = [source_plan(s) for s in bitset_sources]
    for bitset_plan, bitset_source in zip(bitset_plans, bitset_sources):
        truth_bits = count_homomorphisms_direct(bitset_source, dense6)
        assert _count_bitset(bitset_plan, bitset_index, False) == truth_bits
        assert _count_sets(bitset_plan, bitset_index, False) == truth_bits
        assert count_plan_dp(bitset_plan, bitset_index) == truth_bits
        assert _count_plan_dp_sets(bitset_plan, bitset_index) == truth_bits

    bt_bitset = _timeit(lambda: [_count_bitset(p, bitset_index, False)
                                 for p in bitset_plans], repeat)
    bt_sets = _timeit(lambda: [_count_sets(p, bitset_index, False)
                               for p in bitset_plans], repeat)
    dp_bitset = _timeit(lambda: [count_plan_dp(p, bitset_index)
                                 for p in bitset_plans], repeat)
    dp_sets = _timeit(lambda: [_count_plan_dp_sets(p, bitset_index)
                               for p in bitset_plans], repeat)
    workloads["hom_bitset"] = {
        "backtrack_set_s": bt_sets,
        "backtrack_bitset_s": bt_bitset,
        "speedup_backtrack": bt_sets / bt_bitset
        if bt_bitset else float("inf"),
        "dp_set_s": dp_sets,
        "dp_bitset_s": dp_bitset,
        "speedup_dp": dp_sets / dp_bitset if dp_bitset else float("inf"),
    }

    # -------------------------------------------------- service_throughput
    # E17: what the resident service buys over one-shot dispatch.  The
    # same mixed request stream is answered (a) by a warm SolverService
    # — one session across all requests, the deployment `repro serve`
    # runs — and (b) cold, with a fresh session per task: the per-
    # invocation CLI cost model minus process startup (so the measured
    # speedup is a *lower bound* on the real serve-vs-CLI win).
    from repro.batch.runner import evaluate_line
    from repro.batch.scenarios import generate_scenario
    from repro.batch.tasks import canonical_json, make_hom_count_task
    from repro.service import SolverService

    # Production-shaped stream: requests repeat a small catalog of
    # counting shapes against stable dense targets (the hit pattern a
    # materialized-view service actually sees), plus a slice of mixed
    # decision traffic.  Each request's source is *renamed* (distinct
    # constants per request, as distinct clients would send), so the
    # cold path must recount every time while the warm session's
    # canonical-component memo recognizes the isomorphism class.
    svc_rng = random.Random(0x5E12)
    svc_shapes = [grid, chain]
    svc_targets = [
        Structure(
            [(rel, (i, j)) for rel in ("R", "S")
             for i in range(n) for j in range(n) if i != j],
            domain=range(n))
        for n in (5, 6)
    ]
    stream = [canonical_json(record)
              for record in generate_scenario("mixed", 16, seed=23)]
    for index in range(24):
        base = svc_rng.choice(svc_shapes)
        source = base.rename({c: (index, c) for c in base.domain()})
        stream.append(canonical_json(make_hom_count_task(
            f"svc-{index:03d}", source, svc_rng.choice(svc_targets))))

    def serve_warm() -> List[str]:
        with SolverService(workers=1) as service:
            results = [service.handle_line(line) for line in stream]
        return results

    def dispatch_cold() -> List[str]:
        return [evaluate_line(line, bench_session()) for line in stream]

    warm_results = serve_warm()
    cold_results = dispatch_cold()
    assert warm_results == cold_results  # serving must not change answers

    warm = _timeit(serve_warm, repeat) / len(stream)
    cold = _timeit(dispatch_cold, repeat) / len(stream)
    workloads["service_throughput"] = {
        "cold_dispatch_per_task_s": cold,
        "warm_service_per_task_s": warm,
        "speedup": cold / warm if warm else float("inf"),
        "tasks": float(len(stream)),
    }

    # -------------------------------------------------- store_tiered
    # E20: the sharded tiered store vs the single-file PR 8 store,
    # store layer in isolation (the duck-typed protocol both classes
    # serve the engine through).  Sources are distinct small path
    # shapes (every R/S word up to length 9) against two
    # database-sized targets — the regime the paper's queries live in
    # (small patterns, large instances), and the one where the single
    # file's per-record target digest and per-record target-row
    # re-queueing dominate: both costs scale with the target's JSON
    # size, which the tiered store pays once per target, not once per
    # row.  Record throughput times fresh rows flowing into existing
    # shard files (steady state — file creation and schema DDL happen
    # once per directory, so they stay outside the timed pass); lookup
    # throughput times re-probing every key through a warm store (the
    # tiered store answers from its LRU tier with zero I/O).  Both
    # stores are verified to return identical values for every key
    # before timing.
    import itertools
    import os as os_module
    import shutil
    import tempfile

    from repro.batch.cache import SQLiteHomStore
    from repro.batch.store import TieredHomStore

    store_sources = [
        path_structure(list(word))
        for length in range(1, 10)
        for word in itertools.product("RS", repeat=length)
    ]
    store_targets = [grid_structure(24, 24), clique_structure(28)]
    store_rows = [(source, target, 1000 + index)
                  for index, (source, target) in enumerate(
                      (s, t) for s in store_sources for t in store_targets)]

    def record_into(store) -> None:
        for source, target, value in store_rows:
            store.record(source, target, value)
        store.flush()

    def verify_store(store) -> None:
        for source, target, value in store_rows:
            assert store.lookup(source, target) == value

    def lookup_all(store) -> None:
        for _ in range(3):
            for source, target, value in store_rows:
                assert store.lookup(source, target) == value

    with tempfile.TemporaryDirectory() as scratch:
        counter = itertools.count()

        def timed_record(make_store) -> float:
            best = float("inf")
            for _ in range(repeat):
                path = os_module.path.join(scratch, f"rec{next(counter)}")
                store = make_store(path)
                if hasattr(store, "ensure_shards"):
                    store.ensure_shards()
                else:
                    len(store)  # connect + schema DDL, outside the timing
                start = time.perf_counter()
                record_into(store)
                best = min(best, time.perf_counter() - start)
                store.close()
                shutil.rmtree(path, ignore_errors=True)
                if os_module.path.exists(path):
                    os_module.unlink(path)
            return best

        single_record = timed_record(SQLiteHomStore)
        tiered_record = timed_record(
            lambda path: TieredHomStore(path, shards=4))

        single_store = SQLiteHomStore(
            os_module.path.join(scratch, "warm-single"))
        tiered_store = TieredHomStore(
            os_module.path.join(scratch, "warm-tiered"), shards=4)
        record_into(single_store)
        record_into(tiered_store)
        verify_store(single_store)
        verify_store(tiered_store)
        single_lookup = _timeit(lambda: lookup_all(single_store), repeat)
        tiered_lookup = _timeit(lambda: lookup_all(tiered_store), repeat)
        single_store.close()
        tiered_store.close()

    workloads["store_tiered"] = {
        "singlefile_record_s": single_record,
        "tiered_record_s": tiered_record,
        "speedup_record": single_record / tiered_record
        if tiered_record else float("inf"),
        "singlefile_lookup_s": single_lookup,
        "tiered_lookup_s": tiered_lookup,
        "speedup_lookup": single_lookup / tiered_lookup
        if tiered_lookup else float("inf"),
        "rows": float(len(store_rows)),
    }

    # -------------------------------------------------- service_concurrency
    # E21: concurrency as a measured dimension.  The same 16 closed-loop
    # clients drive (a) the threaded daemon with a fresh TCP connection
    # per request — the legacy DaemonClient cost model: dial + handler
    # thread per request, every evaluation behind one engine lock — and
    # (b) the async daemon over persistent connections — one event loop
    # multiplexing all clients, per-tenant sessions dispatched to a
    # bounded executor.  Both daemons must answer every request with
    # exactly the bytes single-threaded batch evaluation produces
    # before either is timed.  Timings are wall-clock per request at
    # 16 clients (connection setup for persistent clients happens
    # before the measured window; the per-request dial is *inside* it,
    # because that dial is the cost under ablation).
    import threading

    from repro.service import (
        AsyncDaemonHandle,
        SolverService,
        serve_socket,
    )
    from repro.service.client import DaemonClient
    from repro.service.loadgen import default_task_lines, run_load

    conc_lines = default_task_lines(8, seed=2024)
    conc_clients = 16
    conc_requests = 12
    conc_total = conc_clients * conc_requests
    conc_expected = [evaluate_line(line, bench_session())
                     for line in conc_lines]

    def check_parity(host: str, port: int) -> None:
        probe = DaemonClient(host=host, port=port)
        try:
            for line, expected in zip(conc_lines, conc_expected):
                got = canonical_json(probe.request_line(line))
                assert got == expected  # serving must not change answers
        finally:
            probe.close()

    threaded_service = SolverService(workers=4)
    threaded_ready = threading.Event()
    threaded_bound: List[tuple] = []
    threaded_thread = threading.Thread(
        target=serve_socket, args=(threaded_service,),
        kwargs={"port": 0, "ready": threaded_ready,
                "bound": threaded_bound},
        daemon=True)
    threaded_thread.start()
    threaded_ready.wait(timeout=10)
    th_host, th_port = threaded_bound[0]
    check_parity(th_host, th_port)

    def threaded_run():
        report = run_load(th_host, th_port, conc_lines,
                          clients=conc_clients,
                          requests_per_client=conc_requests,
                          transport="per-request")
        assert report.errors == 0
        return report

    threaded_reports = [threaded_run() for _ in range(repeat)]
    DaemonClient(host=th_host, port=th_port, persistent=False).shutdown()
    threaded_thread.join(timeout=10)
    threaded_service.close()

    with AsyncDaemonHandle(workers=4) as async_handle:
        as_host, as_port = async_handle.address
        check_parity(as_host, as_port)

        def async_run():
            report = run_load(as_host, as_port, conc_lines,
                              clients=conc_clients,
                              requests_per_client=conc_requests,
                              transport="persistent")
            assert report.errors == 0
            return report

        async_reports = [async_run() for _ in range(repeat)]

    threaded_best = min(r.elapsed_s for r in threaded_reports)
    async_best = min(r.elapsed_s for r in async_reports)
    threaded_fast = min(threaded_reports, key=lambda r: r.elapsed_s)
    async_fast = min(async_reports, key=lambda r: r.elapsed_s)
    workloads["service_concurrency"] = {
        "threaded_per_request_s": threaded_best / conc_total,
        "async_persistent_s": async_best / conc_total,
        "speedup": threaded_best / async_best
        if async_best else float("inf"),
        "threaded_throughput_rps": threaded_fast.throughput_rps,
        "async_throughput_rps": async_fast.throughput_rps,
        "threaded_p50_ms": threaded_fast.p50_ms,
        "threaded_p99_ms": threaded_fast.p99_ms,
        "async_p50_ms": async_fast.p50_ms,
        "async_p99_ms": async_fast.p99_ms,
        "clients": float(conc_clients),
        "requests": float(conc_total),
    }

    # -------------------------------------------------- linalg_det
    rng = random.Random(0xBA5E)
    size = 9
    rows = [[rng.randint(0, 9) ** j for j in range(size)] for _ in range(size)]
    matrix = QMatrix(rows)
    assert matrix.det() == gaussian_det(matrix)

    bareiss = _timeit(lambda: QMatrix(rows).det(), repeat)
    gauss = _timeit(lambda: gaussian_det(QMatrix(rows)), repeat)
    workloads["linalg_det"] = {
        "gaussian_fraction_s": gauss,
        "bareiss_s": bareiss,
        "speedup": gauss / bareiss if bareiss else float("inf"),
    }

    # One copy of each stats block: the engine counters under the
    # established engine_stats key, the session-level remainder
    # (task accounting, strategy) under session_stats.
    session_report = default_session().stats()
    report["engine_stats"] = session_report.pop("engine")
    report["session_stats"] = session_report
    return report


def write_report(path: str = "BENCH_engine.json", repeat: int = 3) -> Dict[str, object]:
    report = run_benchmarks(repeat=repeat)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def format_report(report: Dict[str, object]) -> str:
    lines = ["engine micro-benchmarks (best of %d):" % report["repeat"]]
    for name, numbers in sorted(report["workloads"].items()):  # type: ignore
        parts = ", ".join(
            f"{key}={value:.6f}" if "_s" in key else f"{key}={value:.2f}x"
            for key, value in sorted(numbers.items())
        )
        lines.append(f"  {name}: {parts}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Regression gate (``repro bench check`` / scripts/check_bench_regression)
# ----------------------------------------------------------------------
DEFAULT_FACTOR = 2.0
DEFAULT_SLACK_S = 0.005

# Timings of the deliberately-naive ablation/reference implementations.
# They exist only to compute speedups; their absolute cost on a noisy
# runner carries no product signal, so the gate ignores them.
ABLATION_KEYS = frozenset({
    "direct_backtracking_s",
    "exact_key_dict_s",
    "gaussian_fraction_s",
    "backtracking_engine_s",
    "cold_dispatch_per_task_s",
    "pairwise_iso_dedup_s",
    "large_target_direct_s",
    "backtrack_set_s",
    "dp_set_s",
    "singlefile_record_s",
    "singlefile_lookup_s",
    "threaded_per_request_s",
})


def load_report(path: str) -> Dict[str, object]:
    """A bench report from disk, validated to actually be one."""
    from repro.errors import ReproError

    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read bench report {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: not JSON: {exc}")
    if "workloads" not in report:
        raise ReproError(f"{path}: not a bench report (no 'workloads' key)")
    return report


def compare_reports(baseline: Dict[str, object], current: Dict[str, object],
                    factor: float = DEFAULT_FACTOR,
                    slack: float = DEFAULT_SLACK_S):
    """``(lines, failures)``: a human-readable table and the regressions.

    Every engine-side ``*_s`` timing present in the baseline is compared
    (ablation/reference timings are skipped — they only exist to compute
    speedups); a timing regresses when ``current > factor * baseline +
    slack``.  The factor is deliberately tolerant (CI runners are noisy,
    shared, and differently clocked than the machine that wrote the
    baseline) and the additive slack keeps microsecond-scale timings
    from tripping on clock resolution.  The gate is for
    *architecture-level* regressions — losing a 10x speedup — not for
    20% jitter.  A workload or timing missing from ``current`` is a
    silently dropped benchmark and fails the gate.
    """
    lines: List[str] = []
    failures: List[str] = []
    base_workloads = baseline.get("workloads", {})
    current_workloads = current.get("workloads", {})
    compared = 0
    for name in sorted(base_workloads):
        if name not in current_workloads:
            lines.append(f"  {name}: MISSING from current report")
            failures.append(f"{name} (missing workload)")
            continue
        for key in sorted(base_workloads[name]):
            if not key.endswith("_s") or key in ABLATION_KEYS:
                continue
            if key not in current_workloads[name]:
                lines.append(f"  {name}.{key}: MISSING from current report")
                failures.append(f"{name}.{key} (missing timing)")
                continue
            base_value = float(base_workloads[name][key])
            current_value = float(current_workloads[name][key])
            limit = factor * base_value + slack
            verdict = "ok" if current_value <= limit else "REGRESSED"
            lines.append(
                f"  {name}.{key}: {current_value:.6f}s vs baseline "
                f"{base_value:.6f}s (limit {limit:.6f}s) {verdict}")
            compared += 1
            if current_value > limit:
                failures.append(f"{name}.{key}")
    if compared == 0:
        failures.append("nothing compared: reports share no *_s timings")
    return lines, failures


def render_gate(lines: List[str], failures: List[str],
                factor: float, slack: float) -> str:
    """The gate verdict as the text both CLI entry points print."""
    out = [f"bench regression gate (factor {factor}x, slack {slack}s):"]
    out.extend(lines)
    if failures:
        out.append(f"FAIL: {len(failures)} regression(s): "
                   f"{', '.join(failures)}")
    else:
        out.append("PASS: no timing regressed past the gate")
    return "\n".join(out)
