"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
client code can catch a single type.  Specific subclasses mark the layer
at which the problem occurred (schema, query, linear algebra, decision
procedure, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SchemaError(ReproError):
    """A relation symbol was used with an inconsistent or invalid arity."""


class QueryError(ReproError):
    """A query is malformed (bad atoms, bad free variables, ...)."""


class ParseError(QueryError):
    """The textual query syntax could not be parsed."""


class StructureError(ReproError):
    """A structure is malformed or an operation on structures is invalid."""


class LinalgError(ReproError):
    """An exact linear-algebra operation failed (singular matrix, ...)."""


class UnsupportedQueryError(ReproError):
    """The query falls outside the fragment a decider supports.

    The Theorem 3 decider, for instance, requires boolean CQs whose atoms
    all have arity at least one; 0-ary atoms break Lemma 4(1)/(2) on
    which the whole component-basis machinery rests.
    """


class DecisionError(ReproError):
    """A decision procedure reached an inconsistent internal state."""


class SearchExhaustedError(ReproError):
    """A bounded search (distinguisher search, refuter, Diophantine
    solver) ran out of budget before finding what it was asked for."""
