"""The serializable task codec of the batch subsystem.

A *task* is one unit of batch work — a decision, containment, witness
or certification problem — written as a single JSON object (one line of
a JSONL scenario file).  The codec is deliberately thin: query payloads
reuse the wire format of :mod:`repro.structures.serialization`, so any
tool that can emit view catalogs can emit batch scenarios.

Task shapes::

    {"id": "t0", "kind": "decide-cq", "views": [<cq>...], "query": <cq>,
     "witness": false}
    {"id": "t1", "kind": "containment", "query": <cq>, "container": <cq>}
    {"id": "t2", "kind": "decide-path", "views": [<path>...], "query": <path>}
    {"id": "t3", "kind": "certify-ucq", "views": [<ucq>...], "query": <ucq>}
    {"id": "t4", "kind": "hom-count", "source": <structure>,
     "target": <structure>}

``decide-cq`` with ``"witness": true`` additionally constructs and
verifies a counterexample pair when the instance is not determined; the
construction is seeded from :func:`task_seed`, a content hash of the
task, so results are reproducible across runs, worker counts and
machines.

Structure payloads (``hom-count`` sources/targets, witness pairs in
result records) use the interned wire format of
:mod:`repro.structures.serialization`: the constant table is shipped
once per structure and fact terms are indices into it, so a task whose
source repeats bulky tagged-tuple constants across many facts pays for
each constant once per line, not once per occurrence.  Decoding still
accepts the pre-interning inline-constant form, so scenario files
written by older builds keep loading.

Everything round-trips: ``decode_task(encode_task(t))`` recovers the
query objects exactly, and ``encode_task``/``encode_record`` emit
*canonical* JSON (sorted keys, minimal separators) so batch outputs can
be compared byte-for-byte.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.path import PathQuery
from repro.queries.ucq import UnionOfBooleanCQs
from repro.structures.serialization import (
    SerializationError,
    from_dict,
    structure_from_dict,
    structure_to_dict,
    to_dict,
)
from repro.structures.structure import Structure


class BatchCodecError(ReproError):
    """Malformed task lines and records."""


VALID_KINDS = ("decide-cq", "containment", "decide-path", "certify-ucq",
               "hom-count")

_QUERY_TYPES = {
    "decide-cq": ConjunctiveQuery,
    "containment": ConjunctiveQuery,
    "decide-path": PathQuery,
    "certify-ucq": UnionOfBooleanCQs,
}


def canonical_json(payload: Dict[str, Any]) -> str:
    """Canonical single-line JSON: sorted keys, minimal separators.

    Batch outputs are compared byte-for-byte across worker counts, so
    every record funnels through this one serializer.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


# ----------------------------------------------------------------------
# Task construction (object side)
# ----------------------------------------------------------------------
def make_decision_task(task_id: str, views, query: ConjunctiveQuery,
                       witness: bool = False) -> Dict[str, Any]:
    """A ``decide-cq`` task record for boolean-CQ bag-determinacy."""
    record = {
        "id": str(task_id),
        "kind": "decide-cq",
        "views": [to_dict(v) for v in views],
        "query": to_dict(query),
    }
    if witness:
        record["witness"] = True
    return record


def make_containment_task(task_id: str, query: ConjunctiveQuery,
                          container: ConjunctiveQuery) -> Dict[str, Any]:
    """A Chandra–Merlin set-containment probe ``query ⊆set container``."""
    return {
        "id": str(task_id),
        "kind": "containment",
        "query": to_dict(query),
        "container": to_dict(container),
    }


def make_path_task(task_id: str, views, query: PathQuery) -> Dict[str, Any]:
    """A Theorem 1 path-determinacy task."""
    return {
        "id": str(task_id),
        "kind": "decide-path",
        "views": [to_dict(v) for v in views],
        "query": to_dict(query),
    }


def make_ucq_task(task_id: str, views, query: UnionOfBooleanCQs) -> Dict[str, Any]:
    """A linear-certificate task for boolean UCQs."""
    return {
        "id": str(task_id),
        "kind": "certify-ucq",
        "views": [to_dict(v) for v in views],
        "query": to_dict(query),
    }


def make_hom_count_task(task_id: str, source: Structure,
                        target: Structure) -> Dict[str, Any]:
    """A raw ``|hom(source, target)|`` count request — the primitive
    the request service exposes directly (Lemma 4 work without the
    determinacy pipeline around it)."""
    return {
        "id": str(task_id),
        "kind": "hom-count",
        "source": structure_to_dict(source),
        "target": structure_to_dict(target),
    }


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
@dataclass
class DecodedTask:
    """A validated task with its query payloads materialized.

    ``query``/``views``/``container`` carry the determinacy payloads;
    ``source``/``target`` carry the structures of a ``hom-count`` task
    (whose ``query`` is ``None``).
    """

    id: str
    kind: str
    record: Dict[str, Any]
    query: Any
    views: Tuple[Any, ...] = ()
    container: Optional[ConjunctiveQuery] = None
    witness: bool = field(default=False)
    source: Optional[Structure] = None
    target: Optional[Structure] = None
    #: Per-task wall-clock deadline (``{"deadline_ms": …}`` in the
    #: envelope); ``None`` defers to the session default.
    deadline_ms: Optional[float] = None

    def seed(self) -> int:
        """The deterministic RNG seed for any randomized step."""
        return task_seed(self.record)


def encode_task(record: Dict[str, Any]) -> str:
    """Canonical JSONL line for a task record (validates first)."""
    decode_task(record)  # validation only
    return canonical_json(record)


def decode_task(line: "str | Dict[str, Any]") -> DecodedTask:
    """Parse and validate one task line (or already-parsed record)."""
    if isinstance(line, str):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise BatchCodecError(f"invalid JSON task line: {exc}") from exc
    else:
        record = line
    if not isinstance(record, dict):
        raise BatchCodecError(f"task must be a JSON object, got {type(record).__name__}")

    kind = record.get("kind")
    if kind not in VALID_KINDS:
        raise BatchCodecError(
            f"unknown task kind {kind!r}; expected one of {VALID_KINDS}")
    task_id = record.get("id")
    if not isinstance(task_id, str) or not task_id:
        raise BatchCodecError(f"task needs a non-empty string 'id', got {task_id!r}")

    deadline_ms = record.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) \
                or not isinstance(deadline_ms, (int, float)) \
                or deadline_ms <= 0:
            raise BatchCodecError(
                f"task {task_id}: 'deadline_ms' must be a positive "
                f"number, got {deadline_ms!r}")
        deadline_ms = float(deadline_ms)

    if kind == "hom-count":
        payloads = {}
        for label in ("source", "target"):
            payload = record.get(label)
            try:
                payloads[label] = structure_from_dict(payload)
            except (SerializationError, AttributeError, TypeError) as exc:
                raise BatchCodecError(
                    f"task {task_id}: bad {label} payload: {exc}") from exc
        return DecodedTask(
            id=task_id,
            kind=kind,
            record=record,
            query=None,
            source=payloads["source"],
            target=payloads["target"],
            deadline_ms=deadline_ms,
        )

    expected = _QUERY_TYPES[kind]
    try:
        query = from_dict(record.get("query"))
    except SerializationError as exc:
        raise BatchCodecError(f"task {task_id}: bad query payload: {exc}") from exc
    _require_type(task_id, "query", query, expected)

    views: Tuple[Any, ...] = ()
    container: Optional[ConjunctiveQuery] = None
    if kind == "containment":
        try:
            container = from_dict(record.get("container"))
        except SerializationError as exc:
            raise BatchCodecError(
                f"task {task_id}: bad container payload: {exc}") from exc
        _require_type(task_id, "container", container, expected)
    else:
        raw_views = record.get("views", [])
        if not isinstance(raw_views, list):
            raise BatchCodecError(f"task {task_id}: 'views' must be a list")
        decoded: List[Any] = []
        for position, payload in enumerate(raw_views):
            try:
                view = from_dict(payload)
            except SerializationError as exc:
                raise BatchCodecError(
                    f"task {task_id}: bad view #{position}: {exc}") from exc
            _require_type(task_id, f"view #{position}", view, expected)
            decoded.append(view)
        views = tuple(decoded)

    return DecodedTask(
        id=task_id,
        kind=kind,
        record=record,
        query=query,
        views=views,
        container=container,
        witness=bool(record.get("witness", False)),
        deadline_ms=deadline_ms,
    )


def task_seed(record: Dict[str, Any]) -> int:
    """Stable content hash of a task — the seed for randomized steps.

    Uses CRC32 of the canonical JSON so the same task gets the same
    randomness in every process on every machine (Python's built-in
    ``hash`` is salted per process and useless here).
    """
    return zlib.crc32(canonical_json(record).encode("utf-8"))


def _require_type(task_id: str, label: str, value, expected: type) -> None:
    if not isinstance(value, expected):
        raise BatchCodecError(
            f"task {task_id}: {label} must decode to {expected.__name__}, "
            f"got {type(value).__name__}")
