"""The tiered, sharded hom store (schema v3).

:class:`~repro.batch.cache.SQLiteHomStore` (schema v2) is one WAL
file: every lookup is a synchronous disk probe behind one service
lock, every record an eager write, and N resident replicas cannot
share state without queueing on a single writer.  This module is the
scale-out replacement — one store object, three tiers:

1. **Memory tier** (:class:`MemoryTier`) — a bounded LRU dict keyed by
   ``(table, canonical_key, target_hash)``.  Hot lookups are answered
   with zero I/O; hit/miss/eviction counters surface as
   ``store.tier.*`` in the obs registry.
2. **Shard tier** — ``shards`` SQLite files under one directory,
   hash-partitioned on the first bytes of the source's
   :func:`~repro.structures.canonical.canonical_key` (``crc32`` of the
   key prefix, deterministic across processes and hash seeds).  Each
   shard carries the v2 table layout stamped ``PRAGMA user_version=3``
   and is opened lazily — a batch worker touches only the shards its
   keys hash into (``store.shard.opens`` counts real opens).  The
   self-healing corruption path is per shard: a damaged shard file is
   quarantined and rebuilt while its siblings keep serving.
3. **Write-behind buffer** — records are queued per shard and
   published in one ``INSERT OR IGNORE`` transaction per shard when a
   shard's queue reaches ``flush_every`` rows, when
   ``flush_interval_s`` has elapsed since the last flush, on
   :meth:`flush` and on :meth:`close`.  The request path never waits
   on a per-record commit.

Layout on disk::

    <path>/                     # the store is a directory
        meta.json               # {"schema_version": 3, "shards": N}
        shard-000.sqlite        # v2 tables, user_version=3
        shard-001.sqlite
        ...

Migration: opening a ``path`` that is an existing **v2 single file**
performs the one-shot v2→v3 migration — the file is moved aside to
``<path>.v2-backup``, the shard directory is created at ``path``, and
every row is re-published into its shard (recency order preserved, so
``preload`` keeps serving the most recently recorded rows first).
Legacy (pre-v2) and future-versioned files are refused with
:class:`~repro.batch.cache.StoreFormatError`, exactly like the
single-file store.

Tooling (``repro cache merge|compact|warm-pack``) is built on the
row-level surface both store classes share: :meth:`iter_rows` /
:meth:`record_row` move answers between stores without decoding any
source structure (the canonical key *is* the identity), and
:func:`export_warm_pack` / :func:`import_warm_pack` ship a compact
JSONL pack of the most recently recorded answers that
``repro serve start --preload-pack`` feeds into a fresh replica's
store tiers.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import zlib
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple, TypeVar

from repro.errors import ReproError
from repro.faults.inject import should_inject
from repro.structures.canonical import canonical_key
from repro.structures.serialization import (
    SerializationError,
    structure_to_dict,
)
from repro.structures.structure import Structure
from repro.batch.cache import (
    _COUNTS,
    _EXISTS,
    _SCHEMA,
    SQLiteHomStore,
    StoreFormatError,
    _digest,
    _is_corruption,
)
from repro.batch.tasks import canonical_json

_T = TypeVar("_T")

SCHEMA_VERSION_V3 = 3
DEFAULT_SHARDS = 8
DEFAULT_MEMORY_TIER = 8192
DEFAULT_FLUSH_EVERY = 512
DEFAULT_FLUSH_INTERVAL_S = 2.0

META_NAME = "meta.json"
_SHARD_NAME = "shard-{:03d}.sqlite"

# Warm-pack line kinds: a target line introduces the next target index,
# count/exists lines reference targets by that index.
_PACK_FORMAT = "repro-warm-pack"
_PACK_VERSION = 1
_PACK_TABLE_TAGS = {_COUNTS: "c", _EXISTS: "e"}
_PACK_TAG_TABLES = {tag: table for table, tag in _PACK_TABLE_TAGS.items()}


def shard_of(key: bytes, shards: int) -> int:
    """The shard a canonical key hashes into.

    Canonical keys are ``repr`` text, so their leading bytes share long
    common prefixes within a workload — partitioning on the raw prefix
    would pile everything into one shard.  ``crc32`` over the first 64
    bytes mixes the prefix into a uniform bucket and is deterministic
    across processes, platforms and hash seeds (unlike ``hash()``).
    """
    if shards <= 1:
        return 0
    return zlib.crc32(key[:64]) % shards


class MemoryTier:
    """The in-process LRU tier: a bounded dict of answered lookups.

    Values are stored as the decimal/flag text the SQLite tables hold,
    so a tier hit and a shard hit are indistinguishable to callers.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries")

    def __init__(self, capacity: int = DEFAULT_MEMORY_TIER):
        self.capacity = max(1, capacity)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Tuple, str]" = OrderedDict()

    def get(self, key: Tuple) -> Optional[str]:
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Tuple, value: str) -> None:
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            entries[key] = value
            return
        entries[key] = value
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"MemoryTier(entries={len(self._entries)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions})")


class TieredHomStore:
    """Memory tier + hash-partitioned SQLite shards + write-behind.

    Implements the same duck-typed store protocol as
    :class:`~repro.batch.cache.SQLiteHomStore` (``lookup``/``record``,
    ``lookup_exists``/``record_exists``, ``preload``, ``flush``,
    ``close``, ``clear``, ``stats``), so the engine, the session and
    every CLI verb treat the two interchangeably.

    ``path`` is a directory (created on first open).  An existing v2
    single file at ``path`` is migrated in one shot (see module docs).
    ``shards`` fixes the partition count at creation; reopening adopts
    the count recorded in ``meta.json`` and refuses a contradicting
    explicit value — resharding is ``repro cache merge`` into a fresh
    store, never a silent rehash that would orphan every existing row.
    """

    def __init__(self, path: str, shards: Optional[int] = None,
                 memory_tier: int = DEFAULT_MEMORY_TIER,
                 flush_every: int = DEFAULT_FLUSH_EVERY,
                 flush_interval_s: float = DEFAULT_FLUSH_INTERVAL_S):
        self.path = path
        self.flush_every = max(1, flush_every)
        self.flush_interval_s = flush_interval_s
        self.lookups = 0
        self.lookup_hits = 0
        self.inserts = 0
        self.corruptions = 0
        self.retries = 0
        self.flush_batches = 0
        self.flush_rows = 0
        self.shard_opens = 0
        self.tier = MemoryTier(memory_tier)
        # (json, sha256) per target Structure; None = unserializable.
        self._target_cache: Dict[Structure,
                                 Optional[Tuple[str, str]]] = {}
        self._owner_pid = os.getpid()
        migrate_from: Optional[str] = None
        if os.path.isdir(path):
            self.shards = self._adopt_meta(path, shards)
        elif os.path.exists(path):
            # A regular file where the shard directory should be: the
            # one-shot v2→v3 migration (or a refusal, for legacy and
            # future formats — _migrate_source_store raises for those).
            try:
                migrate_from = self._displace_v2_file(path)
            except FileNotFoundError:
                # A sibling process won the displace race and is
                # building the directory; adopt its layout instead.
                if not os.path.isdir(path):
                    raise
                self.shards = self._adopt_meta(path, shards)
            if migrate_from is not None:
                self.shards = (shards if shards is not None
                               else DEFAULT_SHARDS)
                self._create_dir(path, self.shards)
        else:
            self.shards = shards if shards is not None else DEFAULT_SHARDS
            self._create_dir(path, self.shards)
        if self.shards < 1:
            raise ReproError(f"shards must be >= 1, got {self.shards}")
        self._connections: Dict[int, sqlite3.Connection] = {}
        self._file_seen = [False] * self.shards
        self._pending: List[Dict[str, List[Tuple[bytes, str, str]]]] = [
            {_COUNTS: [], _EXISTS: []} for _ in range(self.shards)]
        self._pending_targets: List[Dict[str, str]] = [
            {} for _ in range(self.shards)]
        self._pending_count: List[int] = [0] * self.shards
        self._last_flush = time.monotonic()
        if migrate_from is not None:
            self._migrate_source_store(migrate_from)

    # ------------------------------------------------------------------
    # Layout: meta file, shard files, migration
    # ------------------------------------------------------------------
    @staticmethod
    def _meta_path(path: str) -> str:
        return os.path.join(path, META_NAME)

    def shard_path(self, index: int) -> str:
        return os.path.join(self.path, _SHARD_NAME.format(index))

    @classmethod
    def _adopt_meta(cls, path: str, shards: Optional[int]) -> int:
        meta = cls._read_meta(path)
        if meta is None:
            # No meta.json.  Either this directory is not a store at
            # all — refuse before touching it — or a sibling process
            # just created it and has not published meta.json yet (a
            # fleet of batch workers all opening one fresh store).
            # The publish is an atomic os.replace, so poll briefly for
            # it to land; if nobody publishes, claim the layout
            # ourselves — every opener of a fresh store was asked for
            # the same partitioning, and the claim is idempotent.
            if any(not cls._is_store_entry(name)
                   for name in os.listdir(path)):
                raise StoreFormatError(
                    f"{path} is a directory but has no {META_NAME}; not "
                    f"a sharded hom store (schema v3)")
            deadline = time.monotonic() + 2.0
            while meta is None and time.monotonic() < deadline:
                time.sleep(0.02)
                meta = cls._read_meta(path)
            if meta is None:
                cls._write_meta(
                    path, shards if shards is not None else DEFAULT_SHARDS)
                meta = cls._read_meta(path)
            if meta is None:
                raise StoreFormatError(
                    f"{path} is a directory but has no {META_NAME}; not "
                    f"a sharded hom store (schema v3)")
        version = meta.get("schema_version")
        if version != SCHEMA_VERSION_V3:
            raise StoreFormatError(
                f"sharded hom store {path} has schema version {version}, "
                f"this build expects {SCHEMA_VERSION_V3}")
        recorded = meta.get("shards")
        if not isinstance(recorded, int) or recorded < 1:
            raise StoreFormatError(
                f"{cls._meta_path(path)} carries an invalid shard count "
                f"{recorded!r}")
        if shards is not None and shards != recorded:
            raise StoreFormatError(
                f"store {path} is partitioned into {recorded} shards; "
                f"opening it with shards={shards} would rehash every key "
                f"away from its rows — use 'repro cache merge' into a "
                f"fresh store to reshard")
        return recorded

    @classmethod
    def _read_meta(cls, path: str) -> Optional[Dict[str, object]]:
        """The parsed meta.json, or ``None`` when it does not exist
        (yet — creation publishes it atomically, so a reader never
        sees a partial file; garbage is a format error, not a race)."""
        try:
            with open(cls._meta_path(path), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreFormatError(
                f"cannot read {cls._meta_path(path)}: {exc}")

    @classmethod
    def _write_meta(cls, path: str, shards: int) -> None:
        meta = {"schema_version": SCHEMA_VERSION_V3, "shards": shards}
        temp = cls._meta_path(path) + f".tmp-{os.getpid()}"
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, sort_keys=True)
            handle.write("\n")
        os.replace(temp, cls._meta_path(path))

    @staticmethod
    def _is_store_entry(name: str) -> bool:
        """Directory entries a (possibly mid-creation) store may hold;
        anything else means the directory belongs to someone else."""
        return (name == META_NAME or name.startswith(META_NAME + ".tmp-")
                or name.startswith("shard-"))

    @classmethod
    def _create_dir(cls, path: str, shards: int) -> None:
        os.makedirs(path, exist_ok=True)
        cls._write_meta(path, shards)

    @staticmethod
    def _displace_v2_file(path: str) -> str:
        """Move the single-file store aside so the directory can take
        its path.  The backup is kept — migration is additive."""
        backup = f"{path}.v2-backup"
        suffix = 0
        while os.path.exists(backup):
            suffix += 1
            backup = f"{path}.v2-backup.{suffix}"
        os.replace(path, backup)
        for sidecar in ("-wal", "-shm"):
            try:
                os.replace(path + sidecar, backup + sidecar)
            except OSError:
                pass
        return backup

    def _migrate_source_store(self, source_path: str) -> None:
        """Publish every row of the displaced v2 file into its shard.

        Opening the backup through :class:`SQLiteHomStore` reuses the
        v2 version guard verbatim: a legacy (pre-canonical-key) or
        future-versioned file raises :class:`StoreFormatError` here,
        before the new directory has served a single lookup.
        """
        with SQLiteHomStore(source_path) as legacy:
            for table in (_COUNTS, _EXISTS):
                for src_key, target_json, value in legacy.iter_rows(table):
                    self.record_row(table, src_key, target_json, value)
        self.flush()

    # ------------------------------------------------------------------
    # Connection lifecycle (per shard, fork-safe)
    # ------------------------------------------------------------------
    def _ensure_pid(self) -> None:
        """Drop handles and queues inherited across a ``fork``.

        Sharing one SQLite handle across processes is undefined
        behaviour; the parent's pending rows belong to the parent (it
        will flush them itself), so a child starts from clean queues.
        The memory tier survives — its entries are answers, not
        handles.
        """
        pid = os.getpid()
        if pid == self._owner_pid:
            return
        self._owner_pid = pid
        self._connections = {}
        self._file_seen = [False] * self.shards
        self._pending = [{_COUNTS: [], _EXISTS: []}
                         for _ in range(self.shards)]
        self._pending_targets = [{} for _ in range(self.shards)]
        self._pending_count = [0] * self.shards

    def ensure_shards(self) -> None:
        """Materialize every shard file (schema included) up front.

        Lazy creation is right for readers, but a fleet of writers
        starting on an empty directory would all pay (and contend on)
        schema DDL for their first flush; creating the files once,
        before handing the directory out, keeps the write path to pure
        row inserts.
        """
        self._ensure_pid()
        for index in range(self.shards):
            self._guarded(index, lambda: self._connect(index, create=True),
                          None)

    def _connect(self, index: int,
                 create: bool = False) -> Optional[sqlite3.Connection]:
        """The live connection for one shard, or ``None`` when the
        shard file does not exist and ``create`` is False (a read of a
        never-written shard must not materialize an empty file)."""
        connection = self._connections.get(index)
        if connection is not None:
            return connection
        path = self.shard_path(index)
        if not create and not self._file_seen[index]:
            if not os.path.exists(path):
                return None
            self._file_seen[index] = True
        # check_same_thread=False for the same reason as the v2 store:
        # the request service serializes access under its engine lock.
        connection = sqlite3.connect(path, timeout=30.0,
                                     check_same_thread=False)
        try:
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            self._check_shard_version(connection, path)
            with connection:
                for statement in _SCHEMA:
                    connection.execute(statement)
                connection.execute(
                    f"PRAGMA user_version={SCHEMA_VERSION_V3}")
        except sqlite3.DatabaseError:
            try:
                connection.close()
            except sqlite3.Error:
                pass
            raise
        self._connections[index] = connection
        self._file_seen[index] = True
        self.shard_opens += 1
        return connection

    @staticmethod
    def _check_shard_version(connection: sqlite3.Connection,
                             path: str) -> None:
        version = connection.execute("PRAGMA user_version").fetchone()[0]
        if version in (SCHEMA_VERSION_V3, 0):
            # 0 = fresh file this open is about to stamp.
            return
        connection.close()
        raise StoreFormatError(
            f"shard file {path} has schema version {version}, this build "
            f"expects {SCHEMA_VERSION_V3}; a v2 single-file store belongs "
            f"at the store path itself (it is migrated on open), not "
            f"inside the shard directory")

    # ------------------------------------------------------------------
    # Self-healing (per shard)
    # ------------------------------------------------------------------
    def _guarded(self, index: int, operation: Callable[[], _T],
                 default: _T) -> _T:
        """Run one shard operation with the v2 store's healing contract,
        scoped to a single shard: contention degrades to ``default``,
        corruption quarantines *that shard's* file, rebuilds it and
        retries once — every sibling shard keeps serving untouched."""
        for attempt in (0, 1):
            try:
                return operation()
            except sqlite3.DatabaseError as exc:
                if _is_corruption(exc):
                    self._heal(index)
                    if attempt == 0:
                        self.retries += 1
                        continue
                    return default
                if isinstance(exc, sqlite3.OperationalError):
                    return default
                raise
        return default

    def _heal(self, index: int) -> None:
        self.corruptions += 1
        connection = self._connections.pop(index, None)
        self._file_seen[index] = False
        if connection is not None:
            try:
                connection.close()
            except sqlite3.Error:
                pass
        path = self.shard_path(index)
        stamp = int(time.time())
        destination = f"{path}.corrupt-{stamp}"
        suffix = 0
        while os.path.exists(destination):
            suffix += 1
            destination = f"{path}.corrupt-{stamp}.{suffix}"
        try:
            os.replace(path, destination)
        except OSError:
            return
        for sidecar in ("-wal", "-shm"):
            try:
                os.replace(path + sidecar, destination + sidecar)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Target serialization (memoized per structure)
    # ------------------------------------------------------------------
    def _target_entry(self, target: Structure
                      ) -> Optional[Tuple[str, str]]:
        entry = self._target_cache.get(target)
        if entry is not None or target in self._target_cache:
            return entry
        try:
            text = canonical_json(structure_to_dict(target))
            entry = (text, _digest(text))
        except SerializationError:
            entry = None
        if len(self._target_cache) > 4096:
            self._target_cache.clear()
        self._target_cache[target] = entry
        return entry

    # ------------------------------------------------------------------
    # Store protocol (consumed by HomEngine)
    # ------------------------------------------------------------------
    def lookup(self, component: Structure, leaf: Structure) -> Optional[int]:
        value = self._lookup(_COUNTS, component, leaf)
        return None if value is None else int(value)

    def record(self, component: Structure, leaf: Structure,
               count: int) -> None:
        self._record(_COUNTS, component, leaf, str(count))

    def lookup_exists(self, source: Structure,
                      target: Structure) -> Optional[bool]:
        value = self._lookup(_EXISTS, source, target)
        return None if value is None else value == "1"

    def record_exists(self, source: Structure, target: Structure,
                      result: bool) -> None:
        self._record(_EXISTS, source, target, "1" if result else "0")

    def _lookup(self, table: str, source: Structure,
                target: Structure) -> Optional[str]:
        entry = self._target_entry(target)
        if entry is None:
            return None
        self._ensure_pid()
        self.lookups += 1
        key = canonical_key(source)
        target_hash = entry[1]
        value = self.tier.get((table, key, target_hash))
        if value is not None:
            self.lookup_hits += 1
            return value
        index = shard_of(key, self.shards)

        def probe() -> Optional[Tuple[str]]:
            if should_inject("store.lookup"):
                raise sqlite3.DatabaseError(
                    "database disk image is malformed (injected)")
            connection = self._connect(index)
            if connection is None:
                return None
            return connection.execute(
                f"SELECT value FROM {table} WHERE src=? AND target=?",
                (key, target_hash),
            ).fetchone()

        row = self._guarded(index, probe, None)
        if row is None:
            return None
        self.lookup_hits += 1
        self.tier.put((table, key, target_hash), row[0])
        return row[0]

    def _record(self, table: str, source: Structure, target: Structure,
                value: str) -> None:
        # The hottest write path in the system (every fresh engine
        # answer lands here), hand-inlined: target entry, LRU insert
        # and shard enqueue are spelled out instead of delegated —
        # the per-record Python call overhead is what the record
        # benchmark measures against the single-file store.
        entry = self._target_cache.get(target)
        if entry is None:
            if target in self._target_cache:
                return  # memoized as unserializable
            entry = self._target_entry(target)
            if entry is None:
                return
        if os.getpid() != self._owner_pid:
            self._ensure_pid()
        key = canonical_key(source)
        target_hash = entry[1]
        # Read-allocate policy: the tier fills from lookups, not from
        # records.  The process that computed this answer already holds
        # it in its engine memo, so write-allocating here would spend
        # tier capacity (and per-record time) on rows the owner never
        # reads back; a sibling process pulls them into its own tier on
        # first SQL hit instead.
        index = zlib.crc32(key[:64]) % self.shards if self.shards > 1 else 0
        self._pending[index][table].append((key, target_hash, value))
        targets = self._pending_targets[index]
        if target_hash not in targets:
            targets[target_hash] = entry[0]
        count = self._pending_count[index] = self._pending_count[index] + 1
        if count >= self.flush_every:
            self._flush_shard(index)
        elif not count & 63 and (time.monotonic() - self._last_flush
                                 >= self.flush_interval_s):
            # Interval flushes only need coarse timing; polling the
            # clock every 64th queued row keeps it off the per-record
            # cost while still bounding write-behind staleness.
            self.flush()

    def record_row(self, table: str, src_key: bytes, target_json: str,
                   value: str) -> None:
        """Queue one raw row (merge/import path — no Structures)."""
        self._ensure_pid()
        target_hash = _digest(target_json)
        self.tier.put((table, src_key, target_hash), value)
        index = shard_of(src_key, self.shards)
        self._pending[index][table].append((src_key, target_hash, value))
        targets = self._pending_targets[index]
        if target_hash not in targets:
            targets[target_hash] = target_json
        count = self._pending_count[index] = self._pending_count[index] + 1
        if count >= self.flush_every:
            self._flush_shard(index)

    def flush(self) -> None:
        """Publish every queued row, one transaction per dirty shard."""
        self._ensure_pid()
        for index in range(self.shards):
            self._flush_shard(index)
        self._last_flush = time.monotonic()

    def _flush_shard(self, index: int) -> None:
        pending = self._pending[index]
        targets = self._pending_targets[index]
        if not pending[_COUNTS] and not pending[_EXISTS] and not targets:
            return
        self._pending[index] = {_COUNTS: [], _EXISTS: []}
        self._pending_targets[index] = {}
        self._pending_count[index] = 0
        rows = len(pending[_COUNTS]) + len(pending[_EXISTS])

        def publish() -> None:
            connection = self._connect(index, create=True)
            with connection:
                if targets:
                    connection.executemany(
                        "INSERT OR IGNORE INTO targets VALUES (?, ?)",
                        list(targets.items()))
                for table, table_rows in pending.items():
                    if table_rows:
                        connection.executemany(
                            f"INSERT OR IGNORE INTO {table} "
                            f"VALUES (?, ?, ?)",
                            table_rows)
            self.inserts += rows
            self.flush_batches += 1
            self.flush_rows += rows

        self._guarded(index, publish, None)

    # ------------------------------------------------------------------
    # Warm start / bulk row access
    # ------------------------------------------------------------------
    def preload(self, engine, limit: int = 2048) -> int:
        """Seed an engine memo with up to ``limit`` stored counts,
        most recently recorded first (per shard — shard files carry no
        global clock, and recency within a shard is its rowid order)."""
        from repro.structures.serialization import structure_from_dict

        self.flush()
        targets: Dict[str, Optional[Structure]] = {}
        seeded = 0
        for index in range(self.shards):
            if seeded >= limit:
                break
            remaining = limit - seeded

            def fetch() -> List[Tuple[bytes, str, str]]:
                connection = self._connect(index)
                if connection is None:
                    return []
                return connection.execute(
                    f"SELECT h.src, t.json, h.value FROM {_COUNTS} h "
                    f"JOIN targets t ON t.hash = h.target "
                    f"ORDER BY h.rowid DESC LIMIT ?",
                    (remaining,),
                ).fetchall()

            for src_key, target_json, value in self._guarded(index, fetch, []):
                if target_json not in targets:
                    try:
                        targets[target_json] = structure_from_dict(
                            json.loads(target_json))
                    except (SerializationError, ValueError):
                        targets[target_json] = None
                leaf = targets[target_json]
                if leaf is None:
                    continue
                engine.seed_count_key(bytes(src_key), leaf, int(value))
                seeded += 1
        return seeded

    def iter_rows(self, table: str, newest_first: bool = False,
                  limit: Optional[int] = None
                  ) -> Iterator[Tuple[bytes, str, str]]:
        """Yield ``(src_key, target_json, value)`` rows (flushed first).

        Shard order is fixed (0..N-1); within a shard, rowid order —
        ascending by default, descending with ``newest_first``.
        """
        self.flush()
        order = "DESC" if newest_first else "ASC"
        emitted = 0
        for index in range(self.shards):
            if limit is not None and emitted >= limit:
                return
            remaining = -1 if limit is None else limit - emitted

            def fetch() -> List[Tuple[bytes, str, str]]:
                connection = self._connect(index)
                if connection is None:
                    return []
                return connection.execute(
                    f"SELECT h.src, t.json, h.value FROM {table} h "
                    f"JOIN targets t ON t.hash = h.target "
                    f"ORDER BY h.rowid {order} LIMIT ?",
                    (remaining,),
                ).fetchall()

            for src_key, target_json, value in self._guarded(index, fetch, []):
                yield bytes(src_key), target_json, value
                emitted += 1

    # ------------------------------------------------------------------
    # Introspection / maintenance / lifecycle
    # ------------------------------------------------------------------
    def _shard_table_len(self, index: int, table: str) -> int:
        def count() -> int:
            connection = self._connect(index)
            if connection is None:
                return 0
            return int(connection.execute(
                f"SELECT COUNT(*) FROM {table}").fetchone()[0])

        return self._guarded(index, count, 0)

    def counts_len(self) -> int:
        self._ensure_pid()
        return sum(self._shard_table_len(i, _COUNTS)
                   for i in range(self.shards))

    def exists_len(self) -> int:
        self._ensure_pid()
        return sum(self._shard_table_len(i, _EXISTS)
                   for i in range(self.shards))

    def __len__(self) -> int:
        return self.counts_len() + self.exists_len()

    def clear(self) -> int:
        """Delete every persisted answer (``repro cache flush``)."""
        self._ensure_pid()
        self._pending = [{_COUNTS: [], _EXISTS: []}
                         for _ in range(self.shards)]
        self._pending_targets = [{} for _ in range(self.shards)]
        self._pending_count = [0] * self.shards
        self.tier.clear()
        removed = 0
        for index in range(self.shards):
            before = (self._shard_table_len(index, _COUNTS)
                      + self._shard_table_len(index, _EXISTS))

            def wipe() -> int:
                connection = self._connect(index)
                if connection is None:
                    return 0
                with connection:
                    for table in (_COUNTS, _EXISTS, "targets"):
                        connection.execute(f"DELETE FROM {table}")
                return before

            removed += self._guarded(index, wipe, 0)
        return removed

    def compact(self) -> Dict[str, int]:
        """VACUUM every materialized shard; returns byte sizes."""
        self.flush()
        before = after = 0
        for index in range(self.shards):
            path = self.shard_path(index)
            if not os.path.exists(path):
                continue
            before += os.path.getsize(path)

            def vacuum() -> None:
                connection = self._connect(index, create=True)
                connection.execute("VACUUM")

            self._guarded(index, vacuum, None)
            after += os.path.getsize(path)
        return {"bytes_before": before, "bytes_after": after}

    def info(self) -> Dict[str, object]:
        """The ``repro cache info`` report: per-shard row counts and
        file sizes, schema version, memory-tier occupancy — plus the
        legacy ``counts``/``exists`` totals."""
        self._ensure_pid()
        shard_files: List[Dict[str, object]] = []
        counts = exists = 0
        for index in range(self.shards):
            path = self.shard_path(index)
            shard_counts = self._shard_table_len(index, _COUNTS)
            shard_exists = self._shard_table_len(index, _EXISTS)
            counts += shard_counts
            exists += shard_exists
            shard_files.append({
                "index": index,
                "path": path,
                "counts": shard_counts,
                "exists": shard_exists,
                "bytes": os.path.getsize(path)
                if os.path.exists(path) else 0,
            })
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION_V3,
            "shards": self.shards,
            "counts": counts,
            "exists": exists,
            "memory_tier": {"capacity": self.tier.capacity,
                            "entries": len(self.tier)},
            "shard_files": shard_files,
        }

    def stats(self) -> Dict[str, int]:
        return {
            "counts": self.counts_len(),
            "exists": self.exists_len(),
            "lookups": self.lookups,
            "lookup_hits": self.lookup_hits,
            "inserts": self.inserts,
            "corruptions": self.corruptions,
            "retries": self.retries,
            "tier_hits": self.tier.hits,
            "tier_misses": self.tier.misses,
            "tier_evictions": self.tier.evictions,
            "tier_entries": len(self.tier),
            "flush_batches": self.flush_batches,
            "flush_rows": self.flush_rows,
            "shard_opens": self.shard_opens,
            "shards": self.shards,
        }

    def close(self) -> None:
        self.flush()
        if self._owner_pid == os.getpid():
            for connection in self._connections.values():
                try:
                    connection.close()
                except sqlite3.Error:
                    pass
        self._connections = {}

    def __enter__(self) -> "TieredHomStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"TieredHomStore(path={self.path!r}, shards={self.shards}, "
                f"tier={len(self.tier)}/{self.tier.capacity}, "
                f"hits={self.lookup_hits}/{self.lookups})")


# ----------------------------------------------------------------------
# Opening the right store for a path
# ----------------------------------------------------------------------
def open_store(path: str, shards: Optional[int] = None,
               memory_tier: Optional[int] = None,
               flush_every: Optional[int] = None):
    """The store object a ``store_path`` (plus knobs) denotes.

    * an existing **directory** is a sharded v3 store (the knobs may
      refine tier capacity; an explicit mismatched shard count is
      refused by the meta guard);
    * any path with ``shards``/``memory_tier`` set opts into the v3
      layout — an existing v2 file at that path is migrated in one
      shot;
    * otherwise the legacy single-file v2 store, byte-compatible with
      every pre-existing deployment.
    """
    if os.path.isdir(path) or shards is not None or memory_tier is not None:
        knobs: Dict[str, object] = {"shards": shards}
        if memory_tier is not None:
            knobs["memory_tier"] = memory_tier
        if flush_every is not None:
            knobs["flush_every"] = flush_every
        return TieredHomStore(path, **knobs)
    if flush_every is not None:
        return SQLiteHomStore(path, flush_every=flush_every)
    return SQLiteHomStore(path)


# ----------------------------------------------------------------------
# Tooling: merge, warm packs
# ----------------------------------------------------------------------
def copy_rows(source, destination) -> int:
    """Copy every persisted row from one store into another.

    ``INSERT OR IGNORE`` semantics: rows already present in the
    destination win (the values are exact answers, so colliding rows
    are identical anyway).  Returns the number of rows processed.
    """
    moved = 0
    for table in (_COUNTS, _EXISTS):
        for src_key, target_json, value in source.iter_rows(table):
            destination.record_row(table, src_key, target_json, value)
            moved += 1
    destination.flush()
    return moved


def export_warm_pack(store, path: str,
                     limit: Optional[int] = None) -> int:
    """Write the most recently recorded answers as a compact JSONL
    warm-start pack.

    Line 1 is the header; each distinct target appears once (assigned
    ascending indices in order of first use) and every row references
    its target by index — a pack of thousands of counts over a handful
    of targets stays small enough to ship to a cold replica.  Returns
    the number of answer rows written.
    """
    targets: Dict[str, int] = {}
    rows = 0
    with open(path, "w", encoding="utf-8") as sink:
        sink.write(json.dumps({"format": _PACK_FORMAT,
                               "version": _PACK_VERSION},
                              sort_keys=True) + "\n")
        for table in (_COUNTS, _EXISTS):
            remaining = None if limit is None else limit - rows
            if remaining is not None and remaining <= 0:
                break
            for src_key, target_json, value in store.iter_rows(
                    table, newest_first=True, limit=remaining):
                index = targets.get(target_json)
                if index is None:
                    index = len(targets)
                    targets[target_json] = index
                    sink.write(json.dumps(
                        {"k": "t", "json": target_json}) + "\n")
                sink.write(json.dumps(
                    {"k": _PACK_TABLE_TAGS[table], "s": src_key.hex(),
                     "t": index, "v": value}) + "\n")
                rows += 1
    return rows


def import_warm_pack(store, path: str) -> int:
    """Load a warm-start pack into a store's tiers.

    Feeding the *store* (not the engine memo) means the engine's first
    probe for each packed key is a store hit — ``engine.store.hits``
    rises, which is the observable a warm replica is deployed for.
    Returns the number of answer rows imported.
    """
    targets: List[str] = []
    rows = 0
    with open(path, "r", encoding="utf-8") as source:
        header_line = source.readline()
        try:
            header = json.loads(header_line) if header_line.strip() else {}
        except json.JSONDecodeError:
            header = {}
        if header.get("format") != _PACK_FORMAT:
            raise ReproError(
                f"{path} is not a repro warm pack (missing/foreign header)")
        if header.get("version") != _PACK_VERSION:
            raise ReproError(
                f"warm pack {path} has version {header.get('version')!r}, "
                f"this build expects {_PACK_VERSION}")
        for line_number, line in enumerate(source, start=2):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
                kind = payload["k"]
                if kind == "t":
                    targets.append(payload["json"])
                    continue
                table = _PACK_TAG_TABLES[kind]
                src_key = bytes.fromhex(payload["s"])
                target_json = targets[payload["t"]]
                value = str(payload["v"])
            except (KeyError, IndexError, TypeError, ValueError,
                    json.JSONDecodeError) as exc:
                raise ReproError(
                    f"warm pack {path} line {line_number} is malformed: "
                    f"{exc}")
            store.record_row(table, src_key, target_json, value)
            rows += 1
    store.flush()
    return rows
