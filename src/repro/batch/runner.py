"""The parallel batch evaluator.

Turns a stream of task lines (:mod:`repro.batch.tasks`) into a stream
of result lines, optionally sharded across worker processes::

    from repro.batch import runner
    for line in runner.iter_results(open("tasks.jsonl"), workers=4,
                                    cache_path="homcache.sqlite"):
        print(line)

Guarantees
----------
* **Deterministic ordering** — results come out in task order no matter
  how many workers ran them (chunked ``Pool.imap`` preserves order).
* **Deterministic content** — randomized steps (witness construction)
  are seeded from a content hash of the task, and every record is
  serialized canonically, so ``--workers 4`` output is byte-identical
  to ``--workers 1`` output.
* **Fault isolation** — a task that raises a library error produces an
  ``{"ok": false, "error": ...}`` record; the batch keeps going.

Workers are plain ``multiprocessing`` processes (``fork`` start method
when the platform has it, so they inherit the loaded library for free).
Each worker owns a private :class:`~repro.session.SolverSession`
whose engine is attached to the shared on-disk store
(:mod:`repro.batch.cache`), and warm-starts its in-memory memo from
that store, so hom counts are computed once per machine rather than
once per process.  The long-running request service
(:mod:`repro.service`) reuses :func:`evaluate_line` with *its* session,
so batch mode and serving mode produce byte-identical records.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import sys
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.errors import ReproError
from repro.faults.budget import BudgetExceeded, use_budget
from repro.faults.inject import (
    FaultPlan,
    install_fault_plan,
    should_inject,
)
from repro.obs.metrics import merge_counter_snapshots
from repro.obs.trace import span
from repro.batch.tasks import DecodedTask, canonical_json, decode_task
from repro.core.decision import decide_bag_determinacy
from repro.core.pathdet import decide_path_determinacy
from repro.hom.containment import is_contained_set
from repro.hom.engine import HomEngine
from repro.session import SolverSession
from repro.ucq.analysis import linear_certificate

DEFAULT_CHUNK_SIZE = 8
DEFAULT_PRELOAD = 2048
DEFAULT_MAX_RETRIES = 2
# Base of the jittered exponential backoff between chunk retries.
# Timing only — results are pure, so the jitter never touches bytes.
_RETRY_BASE_DELAY = 0.05

# What a dying (or hung) worker pool surfaces as: a worker killed
# mid-task breaks the whole pool; a result() timeout is treated the
# same way because a hung worker holds its pool slot forever.
_WORKER_DEATH = (BrokenProcessPool, FuturesTimeout)

Context = Union[SolverSession, HomEngine]


def _as_session(context: Context) -> SolverSession:
    """Adopt the legacy bare-engine calling convention into a session."""
    if isinstance(context, SolverSession):
        return context
    return SolverSession(engine=context)


# ----------------------------------------------------------------------
# Single-task evaluation
# ----------------------------------------------------------------------
def evaluate_task(task: DecodedTask, context: Context) -> Dict:
    """The result record (without envelope) for one decoded task.

    ``context`` is the :class:`~repro.session.SolverSession` the task
    runs under (a bare :class:`~repro.hom.engine.HomEngine` is adopted
    for backward compatibility).
    """
    session = _as_session(context)
    if task.kind == "decide-cq":
        result = decide_bag_determinacy(list(task.views), task.query,
                                        session=session)
        record = result.to_record()
        if task.witness and not result.determined:
            pair = result.witness(rng=random.Random(task.seed()))
            record["witness"] = pair.to_record(pair.verify(session.engine))
        return record
    if task.kind == "containment":
        return {"contained": is_contained_set(task.query, task.container,
                                              session=session)}
    if task.kind == "hom-count":
        # Counts routinely exceed 64-bit range; decimal text keeps the
        # record safe for non-Python JSON consumers (same convention as
        # witness query answers).
        return {"count": str(session.count(task.source, task.target))}
    if task.kind == "decide-path":
        result = decide_path_determinacy(list(task.views), task.query)
        record = {
            "determined": result.determined,
            "reachable": sorted(".".join(node) for node in result.reachable),
        }
        if result.certificate is not None:
            record["certificate"] = [
                {"view": ".".join(step.view.letters),
                 "sign": step.sign,
                 "target": ".".join(step.target.letters)}
                for step in result.certificate
            ]
        return record
    if task.kind == "certify-ucq":
        certificate = linear_certificate(list(task.views), task.query)
        record = {"certified": certificate is not None}
        if certificate is not None:
            record["coefficients"] = [str(c) for c in certificate.coefficients]
        return record
    raise ReproError(f"unhandled task kind {task.kind!r}")  # pragma: no cover


def evaluate_envelope(line: str, context: Context) -> Dict:
    """The full result record for one task line; never raises on
    library errors — they become ``{"ok": false}`` records."""
    session = _as_session(context)
    task_id, kind = None, None
    try:
        with span("parse"):
            task = decode_task(line)
        task_id, kind = task.id, task.kind
        with span("count"), \
                use_budget(session.budget_for(task.deadline_ms)):
            record = evaluate_task(task, session)
    except BudgetExceeded as exc:
        # Before the generic ReproError arm: a tripped budget is a
        # *structured* refusal (the operator set the bound), not an
        # opaque failure — the record carries the partial stats.
        session.record_task(ok=False, budget_exceeded=True)
        return {
            "id": task_id,
            "kind": kind,
            "ok": False,
            "error": f"BudgetExceeded: {exc}",
            "error_kind": "budget-exceeded",
            "budget": exc.to_record(),
        }
    except ReproError as exc:
        session.record_task(ok=False)
        return {
            "id": task_id,
            "kind": kind,
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
        }
    session.record_task(ok=True)
    envelope: Dict = {"id": task.id, "kind": task.kind, "ok": True}
    envelope.update(record)
    return envelope


def evaluate_line(line: str, context: Context) -> str:
    """One canonical result line for one task line (see
    :func:`evaluate_envelope`, which the request service consumes
    directly to avoid re-parsing its own output)."""
    return canonical_json(evaluate_envelope(line, context))


# ----------------------------------------------------------------------
# Worker pool plumbing
# ----------------------------------------------------------------------
_WORKER_SESSION: Optional[SolverSession] = None
_WORKER_LAST_METRICS: Dict[str, float] = {}


def _init_worker(cache_path: Optional[str], preload: int,
                 fault_spec: Optional[Dict] = None,
                 shards: Optional[int] = None,
                 memory_tier: Optional[int] = None) -> None:
    global _WORKER_SESSION, _WORKER_LAST_METRICS
    if fault_spec is not None:
        # The plan travels as its JSON spec (counters are per-process;
        # only the scheduling-independent task_ids triggers are
        # deterministic across worker layouts — the chaos lane keys
        # worker kills by task id for exactly that reason).
        install_fault_plan(FaultPlan(fault_spec))
    # With a sharded store, each worker's shard connections open
    # lazily on first touch — a worker only ever opens the shard
    # files its keys hash into.
    if cache_path is None:
        shards = memory_tier = None
    _WORKER_SESSION = SolverSession(store_path=cache_path, preload=preload,
                                    shards=shards, memory_tier=memory_tier)
    _WORKER_LAST_METRICS = {}


def _evaluate_chunk(lines: List[str]) -> tuple:
    """``(result lines, metrics delta)`` for one chunk.

    The delta is this worker's monotonic counter movement since its
    previous chunk (cumulative snapshots would double-count when the
    parent sums them), so the parent can merge per-worker registries
    into one run summary without any worker-lifetime rendezvous.
    """
    global _WORKER_LAST_METRICS
    session = _WORKER_SESSION
    if session is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("batch worker used before initialization")
    for line in lines:
        # The ``worker.chunk`` fault point: a poison task kills its
        # worker outright — no exception, no cleanup — exactly like a
        # segfault or the OOM killer.  ``os._exit`` (not sys.exit)
        # so no handler downstream can soften the crash.
        if should_inject("worker.chunk", key=_line_id(line)):
            os._exit(86)
    results = [evaluate_line(line, session) for line in lines]
    session.flush()
    current = session.metrics.counters_snapshot()
    delta = {name: value - _WORKER_LAST_METRICS.get(name, 0)
             for name, value in current.items()
             if value != _WORKER_LAST_METRICS.get(name, 0)}
    _WORKER_LAST_METRICS = current
    return results, delta


def _chunks(lines: Iterable[str], size: int) -> Iterator[List[str]]:
    chunk: List[str] = []
    for line in lines:
        if not line.strip():
            continue
        chunk.append(line)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])


def _quarantine_record(line: str) -> str:
    """The deterministic error record of a quarantined poison task.

    Carries no timestamps or attempt counts — byte-identical across
    runs, worker counts and retry schedules, so quarantined output
    diffs clean against itself.
    """
    payload = None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        pass
    task_id = payload.get("id") if isinstance(payload, dict) else None
    kind = payload.get("kind") if isinstance(payload, dict) else None
    return canonical_json({
        "id": task_id if isinstance(task_id, str) else None,
        "kind": kind if isinstance(kind, str) else None,
        "ok": False,
        "error": "WorkerCrash: task repeatedly killed or hung its "
                 "worker process",
        "quarantined": True,
    })


class _PoolSupervisor:
    """Owns the worker pool and every recovery path around it.

    A worker killed mid-task (OOM killer, segfault, injected
    ``worker.chunk`` fault) breaks the *whole*
    :class:`~concurrent.futures.ProcessPoolExecutor` — every in-flight
    future fails, and which chunk did the killing is unknowable from
    the parent.  The supervisor's contract on top of that blunt
    failure mode:

    * the pool is torn down and rebuilt (``batch.worker.restarts``);
    * the chunk whose result was being awaited is re-run in isolation,
      up to ``max_retries`` times with jittered exponential backoff
      (transient deaths — a worker OOM-killed under memory pressure —
      succeed on retry and count ``batch.chunk.retries``);
    * a chunk that *keeps* dying is bisected until the poison task is
      a chunk of one, which is quarantined as a deterministic error
      record (``batch.tasks.quarantined``) — the batch completes;
    * every other chunk is resubmitted unchanged, so non-quarantined
      results stay byte-identical to a fault-free run;
    * with ``chunk_timeout`` set, a *hung* worker is treated exactly
      like a dead one (the pool is killed; a task that keeps hanging
      is quarantined) — without it a hang waits forever, matching the
      pre-supervision contract.
    """

    def __init__(self, workers: int, cache_path: Optional[str],
                 preload: int, fault_spec: Optional[Dict],
                 max_retries: int, chunk_timeout: Optional[float],
                 metrics_sink: Optional[Dict[str, float]],
                 shards: Optional[int] = None,
                 memory_tier: Optional[int] = None):
        self.workers = workers
        self.cache_path = cache_path
        self.preload = preload
        self.fault_spec = fault_spec
        self.shards = shards
        self.memory_tier = memory_tier
        self.max_retries = max(0, max_retries)
        self.chunk_timeout = chunk_timeout
        self.metrics_sink = metrics_sink
        self.executor: Optional[ProcessPoolExecutor] = None
        self._spawn()

    def _spawn(self) -> None:
        self.executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=(self.cache_path, self.preload, self.fault_spec,
                      self.shards, self.memory_tier),
        )

    def _note(self, name: str, value: int = 1) -> None:
        if self.metrics_sink is not None:
            merge_counter_snapshots(self.metrics_sink, {name: value})

    def _restart(self) -> None:
        """Kill the (broken or hung) pool and build a fresh one."""
        executor = self.executor
        self.executor = None
        if executor is not None:
            # A hung worker never drains its call queue: terminate the
            # processes outright, then reap without waiting on them.
            processes = getattr(executor, "_processes", None) or {}
            for process in list(processes.values()):
                if process.is_alive():
                    process.terminate()
            executor.shutdown(wait=False, cancel_futures=True)
        self._note("batch.worker.restarts")
        self._spawn()

    def submit(self, chunk: List[str]):
        try:
            return self.executor.submit(_evaluate_chunk, chunk)
        except BrokenProcessPool:
            # The pool died between drains; doomed in-flight futures
            # surface at their own drain and are salvaged there.
            self._restart()
            return self.executor.submit(_evaluate_chunk, chunk)

    def drain(self, inflight: "deque") -> List[str]:
        """Resolve the oldest in-flight chunk into its result lines."""
        future, chunk = inflight.popleft()
        try:
            results, delta = future.result(timeout=self.chunk_timeout)
        except _WORKER_DEATH:
            self._restart()
            # Every sibling future died with the pool: remember their
            # chunks, resolve the head chunk in isolation, then refill
            # the window in order — ordering (and therefore bytes)
            # survives the crash.
            salvaged = [entry[1] for entry in inflight]
            inflight.clear()
            results = self._run_isolated(chunk, attempts_spent=1)
            for sibling in salvaged:
                inflight.append((self.submit(sibling), sibling))
            return results
        if self.metrics_sink is not None:
            merge_counter_snapshots(self.metrics_sink, delta)
        return results

    def _run_isolated(self, chunk: List[str],
                      attempts_spent: int = 0) -> List[str]:
        """Run one suspect chunk alone: retry, then bisect, then
        quarantine.  ``attempts_spent`` credits a failure the chunk
        already suffered in the shared pool."""
        for attempt in range(attempts_spent, self.max_retries + 1):
            if attempt:
                _backoff(attempt)
            try:
                results, delta = self.executor.submit(
                    _evaluate_chunk, chunk).result(timeout=self.chunk_timeout)
            except _WORKER_DEATH:
                self._restart()
                continue
            if attempt:
                self._note("batch.chunk.retries")
            if self.metrics_sink is not None:
                merge_counter_snapshots(self.metrics_sink, delta)
            return results
        if len(chunk) == 1:
            self._note("batch.tasks.quarantined")
            return [_quarantine_record(chunk[0])]
        middle = len(chunk) // 2
        return (self._run_isolated(chunk[:middle])
                + self._run_isolated(chunk[middle:]))

    def shutdown(self) -> None:
        if self.executor is not None:
            self.executor.shutdown(wait=True, cancel_futures=True)
            self.executor = None


def _backoff(attempt: int) -> None:
    """Jittered exponential backoff before retry ``attempt`` (1-based).

    Full jitter on a doubling base: transient resource pressure (the
    usual honest cause of a worker death) gets time to clear, and
    parallel batches don't re-stampede in lockstep.  Timing only —
    never part of the bytes.
    """
    delay = _RETRY_BASE_DELAY * (1 << min(attempt - 1, 6))
    time.sleep(delay * (0.5 + random.random() / 2))


# ----------------------------------------------------------------------
# Batch drivers
# ----------------------------------------------------------------------
def iter_results(
    lines: Iterable[str],
    workers: int = 1,
    cache_path: Optional[str] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    preload: int = DEFAULT_PRELOAD,
    session: Optional[SolverSession] = None,
    metrics_sink: Optional[Dict[str, float]] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    fault_plan: Optional[Dict] = None,
    chunk_timeout: Optional[float] = None,
    shards: Optional[int] = None,
    memory_tier: Optional[int] = None,
) -> Iterator[str]:
    """Evaluate task lines, yielding result lines in task order.

    ``workers <= 1`` runs inline (no subprocesses); otherwise a pool of
    ``workers`` processes shards the stream in chunks of ``chunk_size``
    tasks.  ``cache_path`` names the shared persistent hom-count store
    (a directory — or ``shards``/``memory_tier`` set — selects the
    sharded tiered store; each worker opens only the shard files its
    keys hash into); ``preload`` bounds how many stored counts each
    worker seeds into its in-memory memo at startup.  An explicit ``session`` (inline
    mode only — worker processes own their sessions) evaluates the
    stream under caller-owned state: the request service passes its
    resident session here so memo and store stay warm across streams.
    ``metrics_sink`` (a dict) receives the merged monotonic metric
    movement of the run — per-worker registry deltas summed under the
    namespaced schema (:mod:`repro.obs`).

    Fault tolerance (DESIGN.md §14): a chunk whose worker dies is
    retried up to ``max_retries`` times with backoff, then bisected to
    quarantine the poison task (see :class:`_PoolSupervisor`);
    ``chunk_timeout`` (seconds) additionally treats a hung worker as a
    dead one.  ``fault_plan`` (a :class:`~repro.faults.inject.FaultPlan`
    spec dict) installs a deterministic fault plan in this process and
    in every worker — the chaos lane's handle.
    """
    chunk_size = max(1, chunk_size)
    previous_plan = None
    if fault_plan is not None:
        previous_plan = install_fault_plan(FaultPlan(fault_plan))
    if workers <= 1:
        scoped = session
        if session is not None:
            if cache_path is not None:
                raise ReproError(
                    "iter_results: pass either session= or cache_path=, "
                    "not both (the session already owns its store)")
        else:
            if cache_path is None:
                shards = memory_tier = None
            scoped = SolverSession(store_path=cache_path, preload=preload,
                                   shards=shards, memory_tier=memory_tier)
        before = (scoped.metrics.counters_snapshot()
                  if metrics_sink is not None else {})
        try:
            for chunk in _chunks(lines, chunk_size):
                for line in chunk:
                    yield evaluate_line(line, scoped)
                scoped.flush()
        finally:
            if metrics_sink is not None:
                after = scoped.metrics.counters_snapshot()
                merge_counter_snapshots(metrics_sink, {
                    name: value - before.get(name, 0)
                    for name, value in after.items()
                    if value != before.get(name, 0)})
            if scoped is not session:
                scoped.close()
            if fault_plan is not None:
                install_fault_plan(previous_plan)
        return
    if session is not None:
        raise ReproError(
            "iter_results: session= requires workers <= 1 (worker "
            "processes cannot share one in-memory session)")

    # ProcessPoolExecutor rather than multiprocessing.Pool: a worker
    # killed mid-task (OOM, segfault) raises BrokenProcessPool out of
    # result() — Pool would silently lose the job and hang the batch.
    # The supervisor owns restart / retry / bisect / quarantine.
    supervisor = _PoolSupervisor(workers, cache_path, preload, fault_plan,
                                 max_retries, chunk_timeout, metrics_sink,
                                 shards=shards, memory_tier=memory_tier)
    try:
        # Bounded in-flight window: submitting everything up front
        # would buffer an arbitrarily large task stream in memory.
        # Yielding the *oldest* pending chunk first keeps results in
        # task order while at most `max_inflight` chunks are queued.
        max_inflight = max(2, workers * 4)
        inflight: "deque" = deque()

        for chunk in _chunks(lines, chunk_size):
            inflight.append((supervisor.submit(chunk), chunk))
            if len(inflight) >= max_inflight:
                yield from supervisor.drain(inflight)
        while inflight:
            yield from supervisor.drain(inflight)
    finally:
        supervisor.shutdown()
        if fault_plan is not None:
            install_fault_plan(previous_plan)


def run_batch(
    input_path: str,
    output_path: str,
    workers: int = 1,
    cache_path: Optional[str] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    preload: int = DEFAULT_PRELOAD,
    resume: bool = False,
    max_retries: int = DEFAULT_MAX_RETRIES,
    fault_plan: Optional[Dict] = None,
    chunk_timeout: Optional[float] = None,
    shards: Optional[int] = None,
    memory_tier: Optional[int] = None,
) -> Dict[str, int]:
    """File-level driver behind ``repro batch run``.

    Streams JSONL from ``input_path`` (``-`` = stdin) to ``output_path``
    (``-`` = stdout).  With ``resume``, task ids already present in the
    output file are skipped and fresh results are appended — so an
    interrupted batch continues where it stopped.  Returns a summary:
    ``{"tasks", "skipped", "written", "errors", "quarantined",
    "retries", "worker_restarts", "metrics"}`` — the ``metrics`` block
    is the merged per-worker registry movement (namespaced counter
    deltas summed across the pool).  ``max_retries``/``fault_plan``/
    ``chunk_timeout`` are the supervision knobs of
    :func:`iter_results`.
    """
    done = set()
    if resume and output_path != "-":
        _truncate_torn_tail(output_path)
        done = _completed_ids(output_path)

    if input_path == "-":
        raw_lines: Iterable[str] = sys.stdin
    else:
        raw_lines = open(input_path, "r", encoding="utf-8")

    summary: Dict[str, object] = {"tasks": 0, "skipped": 0,
                                  "written": 0, "errors": 0,
                                  "quarantined": 0}
    metrics: Dict[str, float] = {}

    def pending() -> Iterator[str]:
        for line in raw_lines:
            if not line.strip():
                continue
            summary["tasks"] += 1
            if done and _line_id(line) in done:
                summary["skipped"] += 1
                continue
            yield line

    if output_path == "-":
        sink = sys.stdout
    else:
        sink = open(output_path, "a" if done else "w", encoding="utf-8")
    try:
        for result in iter_results(pending(), workers=workers,
                                   cache_path=cache_path,
                                   chunk_size=chunk_size, preload=preload,
                                   metrics_sink=metrics,
                                   max_retries=max_retries,
                                   fault_plan=fault_plan,
                                   chunk_timeout=chunk_timeout,
                                   shards=shards, memory_tier=memory_tier):
            sink.write(result + "\n")
            summary["written"] += 1
            if '"ok":false' in result:
                summary["errors"] += 1
            if '"quarantined":true' in result:
                summary["quarantined"] += 1
    finally:
        if sink is not sys.stdout:
            sink.close()
        if raw_lines is not sys.stdin:
            raw_lines.close()
    summary["retries"] = int(metrics.get("batch.chunk.retries", 0))
    summary["worker_restarts"] = int(metrics.get("batch.worker.restarts", 0))
    summary["metrics"] = metrics
    return summary


def _line_id(line: str) -> Optional[str]:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    if isinstance(payload, dict):
        identifier = payload.get("id")
        if isinstance(identifier, str):
            return identifier
    return None


def _truncate_torn_tail(output_path: str) -> None:
    """Drop a partial final line left by a run killed mid-write.

    Without this, appending a fresh result right after the torn
    fragment would fuse the two into one permanently unparseable line.
    """
    try:
        handle = open(output_path, "rb+")
    except FileNotFoundError:
        return
    with handle:
        size = handle.seek(0, os.SEEK_END)
        if size == 0:
            return
        handle.seek(-1, os.SEEK_END)
        if handle.read(1) == b"\n":
            return
        # Scan backwards in blocks for the last newline; everything
        # after it is the torn fragment.
        position = size
        block = 4096
        while position > 0:
            step = min(block, position)
            position -= step
            handle.seek(position)
            data = handle.read(step)
            newline = data.rfind(b"\n")
            if newline != -1:
                handle.truncate(position + newline + 1)
                _fsync(handle)
                return
        handle.truncate(0)
        _fsync(handle)


def _fsync(handle) -> None:
    """Force a truncation to disk before results are appended after it.

    Without the sync, a crash between truncate and the first append
    could resurrect the torn fragment from the page cache's past —
    fused mid-line with fresh output.
    """
    handle.flush()
    try:
        os.fsync(handle.fileno())
    except OSError:  # pragma: no cover - e.g. fsync-less filesystems
        pass


def _completed_ids(output_path: str) -> set:
    """Task ids already answered in an existing output file."""
    completed = set()
    try:
        with open(output_path, "r", encoding="utf-8") as handle:
            for line in handle:
                identifier = _line_id(line)
                if identifier is not None:
                    completed.add(identifier)
    except FileNotFoundError:
        pass
    return completed
