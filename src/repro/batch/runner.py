"""The parallel batch evaluator.

Turns a stream of task lines (:mod:`repro.batch.tasks`) into a stream
of result lines, optionally sharded across worker processes::

    from repro.batch import runner
    for line in runner.iter_results(open("tasks.jsonl"), workers=4,
                                    cache_path="homcache.sqlite"):
        print(line)

Guarantees
----------
* **Deterministic ordering** — results come out in task order no matter
  how many workers ran them (chunked ``Pool.imap`` preserves order).
* **Deterministic content** — randomized steps (witness construction)
  are seeded from a content hash of the task, and every record is
  serialized canonically, so ``--workers 4`` output is byte-identical
  to ``--workers 1`` output.
* **Fault isolation** — a task that raises a library error produces an
  ``{"ok": false, "error": ...}`` record; the batch keeps going.

Workers are plain ``multiprocessing`` processes (``fork`` start method
when the platform has it, so they inherit the loaded library for free).
Each worker owns a private :class:`~repro.session.SolverSession`
whose engine is attached to the shared on-disk store
(:mod:`repro.batch.cache`), and warm-starts its in-memory memo from
that store, so hom counts are computed once per machine rather than
once per process.  The long-running request service
(:mod:`repro.service`) reuses :func:`evaluate_line` with *its* session,
so batch mode and serving mode produce byte-identical records.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import sys
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.errors import ReproError
from repro.obs.metrics import merge_counter_snapshots
from repro.obs.trace import span
from repro.batch.tasks import DecodedTask, canonical_json, decode_task
from repro.core.decision import decide_bag_determinacy
from repro.core.pathdet import decide_path_determinacy
from repro.hom.containment import is_contained_set
from repro.hom.engine import HomEngine
from repro.session import SolverSession
from repro.ucq.analysis import linear_certificate

DEFAULT_CHUNK_SIZE = 8
DEFAULT_PRELOAD = 2048

Context = Union[SolverSession, HomEngine]


def _as_session(context: Context) -> SolverSession:
    """Adopt the legacy bare-engine calling convention into a session."""
    if isinstance(context, SolverSession):
        return context
    return SolverSession(engine=context)


# ----------------------------------------------------------------------
# Single-task evaluation
# ----------------------------------------------------------------------
def evaluate_task(task: DecodedTask, context: Context) -> Dict:
    """The result record (without envelope) for one decoded task.

    ``context`` is the :class:`~repro.session.SolverSession` the task
    runs under (a bare :class:`~repro.hom.engine.HomEngine` is adopted
    for backward compatibility).
    """
    session = _as_session(context)
    if task.kind == "decide-cq":
        result = decide_bag_determinacy(list(task.views), task.query,
                                        session=session)
        record = result.to_record()
        if task.witness and not result.determined:
            pair = result.witness(rng=random.Random(task.seed()))
            record["witness"] = pair.to_record(pair.verify(session.engine))
        return record
    if task.kind == "containment":
        return {"contained": is_contained_set(task.query, task.container,
                                              session=session)}
    if task.kind == "hom-count":
        # Counts routinely exceed 64-bit range; decimal text keeps the
        # record safe for non-Python JSON consumers (same convention as
        # witness query answers).
        return {"count": str(session.count(task.source, task.target))}
    if task.kind == "decide-path":
        result = decide_path_determinacy(list(task.views), task.query)
        record = {
            "determined": result.determined,
            "reachable": sorted(".".join(node) for node in result.reachable),
        }
        if result.certificate is not None:
            record["certificate"] = [
                {"view": ".".join(step.view.letters),
                 "sign": step.sign,
                 "target": ".".join(step.target.letters)}
                for step in result.certificate
            ]
        return record
    if task.kind == "certify-ucq":
        certificate = linear_certificate(list(task.views), task.query)
        record = {"certified": certificate is not None}
        if certificate is not None:
            record["coefficients"] = [str(c) for c in certificate.coefficients]
        return record
    raise ReproError(f"unhandled task kind {task.kind!r}")  # pragma: no cover


def evaluate_envelope(line: str, context: Context) -> Dict:
    """The full result record for one task line; never raises on
    library errors — they become ``{"ok": false}`` records."""
    session = _as_session(context)
    task_id, kind = None, None
    try:
        with span("parse"):
            task = decode_task(line)
        task_id, kind = task.id, task.kind
        with span("count"):
            record = evaluate_task(task, session)
    except ReproError as exc:
        session.record_task(ok=False)
        return {
            "id": task_id,
            "kind": kind,
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
        }
    session.record_task(ok=True)
    envelope: Dict = {"id": task.id, "kind": task.kind, "ok": True}
    envelope.update(record)
    return envelope


def evaluate_line(line: str, context: Context) -> str:
    """One canonical result line for one task line (see
    :func:`evaluate_envelope`, which the request service consumes
    directly to avoid re-parsing its own output)."""
    return canonical_json(evaluate_envelope(line, context))


# ----------------------------------------------------------------------
# Worker pool plumbing
# ----------------------------------------------------------------------
_WORKER_SESSION: Optional[SolverSession] = None
_WORKER_LAST_METRICS: Dict[str, float] = {}


def _init_worker(cache_path: Optional[str], preload: int) -> None:
    global _WORKER_SESSION, _WORKER_LAST_METRICS
    _WORKER_SESSION = SolverSession(store_path=cache_path, preload=preload)
    _WORKER_LAST_METRICS = {}


def _evaluate_chunk(lines: List[str]) -> tuple:
    """``(result lines, metrics delta)`` for one chunk.

    The delta is this worker's monotonic counter movement since its
    previous chunk (cumulative snapshots would double-count when the
    parent sums them), so the parent can merge per-worker registries
    into one run summary without any worker-lifetime rendezvous.
    """
    global _WORKER_LAST_METRICS
    session = _WORKER_SESSION
    if session is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("batch worker used before initialization")
    results = [evaluate_line(line, session) for line in lines]
    session.flush()
    current = session.metrics.counters_snapshot()
    delta = {name: value - _WORKER_LAST_METRICS.get(name, 0)
             for name, value in current.items()
             if value != _WORKER_LAST_METRICS.get(name, 0)}
    _WORKER_LAST_METRICS = current
    return results, delta


def _chunks(lines: Iterable[str], size: int) -> Iterator[List[str]]:
    chunk: List[str] = []
    for line in lines:
        if not line.strip():
            continue
        chunk.append(line)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])


# ----------------------------------------------------------------------
# Batch drivers
# ----------------------------------------------------------------------
def iter_results(
    lines: Iterable[str],
    workers: int = 1,
    cache_path: Optional[str] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    preload: int = DEFAULT_PRELOAD,
    session: Optional[SolverSession] = None,
    metrics_sink: Optional[Dict[str, float]] = None,
) -> Iterator[str]:
    """Evaluate task lines, yielding result lines in task order.

    ``workers <= 1`` runs inline (no subprocesses); otherwise a pool of
    ``workers`` processes shards the stream in chunks of ``chunk_size``
    tasks.  ``cache_path`` names the shared persistent hom-count store;
    ``preload`` bounds how many stored counts each worker seeds into
    its in-memory memo at startup.  An explicit ``session`` (inline
    mode only — worker processes own their sessions) evaluates the
    stream under caller-owned state: the request service passes its
    resident session here so memo and store stay warm across streams.
    ``metrics_sink`` (a dict) receives the merged monotonic metric
    movement of the run — per-worker registry deltas summed under the
    namespaced schema (:mod:`repro.obs`).
    """
    chunk_size = max(1, chunk_size)
    if workers <= 1:
        scoped = session
        if session is not None:
            if cache_path is not None:
                raise ReproError(
                    "iter_results: pass either session= or cache_path=, "
                    "not both (the session already owns its store)")
        else:
            scoped = SolverSession(store_path=cache_path, preload=preload)
        before = (scoped.metrics.counters_snapshot()
                  if metrics_sink is not None else {})
        try:
            for chunk in _chunks(lines, chunk_size):
                for line in chunk:
                    yield evaluate_line(line, scoped)
                scoped.flush()
        finally:
            if metrics_sink is not None:
                after = scoped.metrics.counters_snapshot()
                merge_counter_snapshots(metrics_sink, {
                    name: value - before.get(name, 0)
                    for name, value in after.items()
                    if value != before.get(name, 0)})
            if scoped is not session:
                scoped.close()
        return
    if session is not None:
        raise ReproError(
            "iter_results: session= requires workers <= 1 (worker "
            "processes cannot share one in-memory session)")

    # ProcessPoolExecutor rather than multiprocessing.Pool: a worker
    # killed mid-task (OOM, segfault) raises BrokenProcessPool out of
    # result() — Pool would silently lose the job and hang the batch.
    executor = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(cache_path, preload),
    )
    try:
        # Bounded in-flight window: submitting everything up front
        # would buffer an arbitrarily large task stream in memory.
        # Yielding the *oldest* pending chunk first keeps results in
        # task order while at most `max_inflight` chunks are queued.
        max_inflight = max(2, workers * 4)
        inflight: "deque" = deque()

        def drain_oldest() -> Iterator[str]:
            results, delta = inflight.popleft().result()
            if metrics_sink is not None:
                merge_counter_snapshots(metrics_sink, delta)
            return results

        for chunk in _chunks(lines, chunk_size):
            inflight.append(executor.submit(_evaluate_chunk, chunk))
            if len(inflight) >= max_inflight:
                yield from drain_oldest()
        while inflight:
            yield from drain_oldest()
    finally:
        executor.shutdown(wait=True, cancel_futures=True)


def run_batch(
    input_path: str,
    output_path: str,
    workers: int = 1,
    cache_path: Optional[str] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    preload: int = DEFAULT_PRELOAD,
    resume: bool = False,
) -> Dict[str, int]:
    """File-level driver behind ``repro batch run``.

    Streams JSONL from ``input_path`` (``-`` = stdin) to ``output_path``
    (``-`` = stdout).  With ``resume``, task ids already present in the
    output file are skipped and fresh results are appended — so an
    interrupted batch continues where it stopped.  Returns a summary:
    ``{"tasks", "skipped", "written", "errors", "metrics"}`` — the
    ``metrics`` block is the merged per-worker registry movement
    (namespaced counter deltas summed across the pool).
    """
    done = set()
    if resume and output_path != "-":
        _truncate_torn_tail(output_path)
        done = _completed_ids(output_path)

    if input_path == "-":
        raw_lines: Iterable[str] = sys.stdin
    else:
        raw_lines = open(input_path, "r", encoding="utf-8")

    summary: Dict[str, object] = {"tasks": 0, "skipped": 0,
                                  "written": 0, "errors": 0}
    metrics: Dict[str, float] = {}

    def pending() -> Iterator[str]:
        for line in raw_lines:
            if not line.strip():
                continue
            summary["tasks"] += 1
            if done and _line_id(line) in done:
                summary["skipped"] += 1
                continue
            yield line

    if output_path == "-":
        sink = sys.stdout
    else:
        sink = open(output_path, "a" if done else "w", encoding="utf-8")
    try:
        for result in iter_results(pending(), workers=workers,
                                   cache_path=cache_path,
                                   chunk_size=chunk_size, preload=preload,
                                   metrics_sink=metrics):
            sink.write(result + "\n")
            summary["written"] += 1
            if '"ok":false' in result:
                summary["errors"] += 1
    finally:
        if sink is not sys.stdout:
            sink.close()
        if raw_lines is not sys.stdin:
            raw_lines.close()
    summary["metrics"] = metrics
    return summary


def _line_id(line: str) -> Optional[str]:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    if isinstance(payload, dict):
        identifier = payload.get("id")
        if isinstance(identifier, str):
            return identifier
    return None


def _truncate_torn_tail(output_path: str) -> None:
    """Drop a partial final line left by a run killed mid-write.

    Without this, appending a fresh result right after the torn
    fragment would fuse the two into one permanently unparseable line.
    """
    try:
        handle = open(output_path, "rb+")
    except FileNotFoundError:
        return
    with handle:
        size = handle.seek(0, os.SEEK_END)
        if size == 0:
            return
        handle.seek(-1, os.SEEK_END)
        if handle.read(1) == b"\n":
            return
        # Scan backwards in blocks for the last newline; everything
        # after it is the torn fragment.
        position = size
        block = 4096
        while position > 0:
            step = min(block, position)
            position -= step
            handle.seek(position)
            data = handle.read(step)
            newline = data.rfind(b"\n")
            if newline != -1:
                handle.truncate(position + newline + 1)
                return
        handle.truncate(0)


def _completed_ids(output_path: str) -> set:
    """Task ids already answered in an existing output file."""
    completed = set()
    try:
        with open(output_path, "r", encoding="utf-8") as handle:
            for line in handle:
                identifier = _line_id(line)
                if identifier is not None:
                    completed.add(identifier)
    except FileNotFoundError:
        pass
    return completed
