"""The persistent on-disk homomorphism store.

:class:`~repro.hom.engine.HomEngine` memoizes ``|hom(component, leaf)|``
counts and Chandra–Merlin existence probes per process; a batch run
over thousands of instances drawn from a small component pool recomputes
the same answers in every fresh process.  This module adds the missing
layer: an SQLite-backed store that the engine consults on in-memory
misses (see ``HomEngine.store``), so each answer is computed **once per
machine**, not once per process.

Layout (schema version 2, ``PRAGMA user_version``)
--------------------------------------------------
``targets``     ``hash -> canonical JSON`` of every distinct counting
                target (stored once, referenced by hash).
``hom_counts``  exact counts; ``hom_exists`` existence verdicts.  Both
                are keyed by

* ``src``    — the source's
  :func:`~repro.structures.canonical.canonical_key` byte string: a
  *complete* isomorphism invariant, identical in every process for
  every member of the iso class;
* ``target`` — the target's hash.

A lookup is one primary-key probe.  The pre-canonical format keyed
rows by a WL-invariant digest and scanned the bucket with pairwise
``find_isomorphism`` calls; the canonical key removed both the scan
and the need to store source payloads at all — which also means
sources whose constants fall outside the JSON wire format persist fine
now (only the *target* still needs a JSON form).  Old-format store
files are detected through ``user_version`` and refused with
:class:`StoreFormatError` instead of silently missing every key.

Counts are stored as decimal text: hom counts routinely exceed 64-bit
range and SQLite integers would silently lose them.

Concurrency: writes are buffered and flushed with ``INSERT OR IGNORE``
under WAL journaling, so concurrent batch workers sharing one store
file never corrupt it and at worst recompute an answer another worker
was about to publish.

Self-healing: the store is a cache, so a damaged file is never worth
failing a batch over.  Any corruption SQLite reports ("database disk
image is malformed", "file is not a database") quarantines the bad
file to ``<path>.corrupt-<ts>``, recreates the schema in a fresh file
and retries the failed operation once; engines keep serving from their
in-memory memo throughout.  The ``corruptions``/``retries`` counters
surface in :meth:`SQLiteHomStore.stats` (and from there in the obs
registry as ``store.corruptions``/``store.retries``).
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

_T = TypeVar("_T")

from repro.errors import ReproError
from repro.faults.inject import should_inject
from repro.structures.canonical import canonical_key
from repro.structures.serialization import (
    SerializationError,
    structure_from_dict,
    structure_to_dict,
)
from repro.structures.structure import Structure
from repro.batch.tasks import canonical_json

SCHEMA_VERSION = 2

_COUNTS = "hom_counts"
_EXISTS = "hom_exists"

_SCHEMA = (
    """
    CREATE TABLE IF NOT EXISTS targets (
        hash TEXT PRIMARY KEY,
        json TEXT NOT NULL
    )
    """,
    f"""
    CREATE TABLE IF NOT EXISTS {_COUNTS} (
        src    BLOB NOT NULL,
        target TEXT NOT NULL,
        value  TEXT NOT NULL,
        PRIMARY KEY (src, target)
    )
    """,
    f"""
    CREATE TABLE IF NOT EXISTS {_EXISTS} (
        src    BLOB NOT NULL,
        target TEXT NOT NULL,
        value  TEXT NOT NULL,
        PRIMARY KEY (src, target)
    )
    """,
)


class StoreFormatError(ReproError):
    """A store file whose on-disk schema this version cannot serve."""


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# The messages SQLite reports for a damaged file.  ``DatabaseError``
# raised as the *base* class is corruption too ("database disk image is
# malformed" surfaces that way); its OperationalError subclass usually
# means contention, which has its own (skip, don't heal) handling.
_CORRUPTION_MARKERS = ("malformed", "not a database", "corrupt")


def _is_corruption(exc: sqlite3.Error) -> bool:
    """Is this SQLite error a damaged file (as opposed to contention)?"""
    if not isinstance(exc, sqlite3.DatabaseError):
        return False
    if type(exc) is sqlite3.DatabaseError:
        return True
    message = str(exc).lower()
    return any(marker in message for marker in _CORRUPTION_MARKERS)


class SQLiteHomStore:
    """Persistent hom-count / hom-existence store for HomEngine.

    Implements the duck-typed store protocol the engine expects:
    ``lookup``/``record`` for exact counts,
    ``lookup_exists``/``record_exists`` for Chandra–Merlin probes,
    plus ``flush()``/``close()``.

    The schema is validated eagerly at construction (fail fast on
    old-format files), then the connection is re-opened lazily *per
    process* (keyed on ``os.getpid``) so a store object created before
    a ``fork`` never shares an SQLite handle with its children —
    sharing one is undefined behaviour.
    """

    def __init__(self, path: str, flush_every: int = 64):
        self.path = path
        self.flush_every = max(1, flush_every)
        self.lookups = 0
        self.lookup_hits = 0
        self.inserts = 0
        self.corruptions = 0
        self.retries = 0
        self._pending: Dict[str, List[Tuple[bytes, str, str]]] = {
            _COUNTS: [], _EXISTS: [],
        }
        self._pending_targets: List[Tuple[str, str]] = []
        self._json_cache: Dict[Structure, Optional[str]] = {}
        self._connection: Optional[sqlite3.Connection] = None
        self._owner_pid: Optional[int] = None
        # Migration guard runs before any lookup (fail fast on legacy
        # files) — on a short-lived connection, so a store constructed
        # before a fork still holds no SQLite handle (children must
        # never inherit one; see _connect).  A corrupt file heals here
        # instead of poisoning every later operation.
        self._guarded(lambda: self._connect().close(), None)
        self._connection = None
        self._owner_pid = None

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._connection is None or self._owner_pid != pid:
            # check_same_thread=False: the request service shares one
            # store across its pool threads with all access serialized
            # under the service's engine lock, which is the contract
            # sqlite3 requires for cross-thread handles.  Batch workers
            # are single-threaded processes and are unaffected.
            connection = sqlite3.connect(self.path, timeout=30.0,
                                         check_same_thread=False)
            try:
                connection.execute("PRAGMA journal_mode=WAL")
                connection.execute("PRAGMA synchronous=NORMAL")
                self._check_version(connection)
                with connection:
                    for statement in _SCHEMA:
                        connection.execute(statement)
                    connection.execute(f"PRAGMA user_version={SCHEMA_VERSION}")
            except sqlite3.DatabaseError:
                # Don't leak an open handle to a file _heal may be
                # about to quarantine (_check_version closes its own).
                try:
                    connection.close()
                except sqlite3.Error:
                    pass
                raise
            self._connection = connection
            self._owner_pid = pid
            self._pending = {_COUNTS: [], _EXISTS: []}
            self._pending_targets = []
        return self._connection

    @staticmethod
    def _check_version(connection: sqlite3.Connection) -> None:
        """Refuse store files this schema version cannot serve.

        ``user_version`` 0 is ambiguous: both a brand-new file and a
        pre-versioning (PR 2 era) store report it, so the presence of
        the old tables is what distinguishes a legacy store — its rows
        are keyed by WL-digest buckets that canonical-key lookups would
        silently never hit.
        """
        version = connection.execute("PRAGMA user_version").fetchone()[0]
        if version == SCHEMA_VERSION:
            return
        if version == 0:
            legacy = connection.execute(
                "SELECT name FROM pragma_table_info(?) WHERE name='inv'",
                (_COUNTS,),
            ).fetchone()
            if legacy is None:
                return  # fresh (or at least inv-free) file: adopt it
            connection.close()
            raise StoreFormatError(
                "hom store uses the pre-canonical-key layout (rows keyed "
                "by invariant digests); its keys cannot be served by this "
                "version — delete the file and let the store rebuild, or "
                "re-run the batch that produced it")
        connection.close()
        raise StoreFormatError(
            f"hom store has schema version {version}, this build expects "
            f"{SCHEMA_VERSION}; refusing to read keys that would silently "
            f"never match")

    # ------------------------------------------------------------------
    # Self-healing
    # ------------------------------------------------------------------
    def _guarded(self, operation: Callable[[], _T], default: _T) -> _T:
        """Run one store operation with self-healing.

        Contention (:class:`sqlite3.OperationalError`) degrades to
        ``default`` — the existing never-block-the-batch contract.
        Corruption quarantines the damaged file, recreates the schema
        and retries the operation once; a second failure degrades to
        ``default`` too, so callers keep serving from the in-memory
        memo no matter what is on disk.
        """
        for attempt in (0, 1):
            try:
                return operation()
            except sqlite3.DatabaseError as exc:
                if _is_corruption(exc):
                    self._heal()
                    if attempt == 0:
                        self.retries += 1
                        continue
                    return default
                if isinstance(exc, sqlite3.OperationalError):
                    return default
                raise
        return default

    def _heal(self) -> None:
        """Drop the live connection and quarantine the corrupt file.

        The next ``_connect()`` recreates the schema in a fresh file.
        Queued writes and the serialization memo stay valid — they
        describe answers, not the damaged bytes.
        """
        self.corruptions += 1
        connection, self._connection = self._connection, None
        self._owner_pid = None
        if connection is not None:
            try:
                connection.close()
            except sqlite3.Error:
                pass
        stamp = int(time.time())
        destination = f"{self.path}.corrupt-{stamp}"
        suffix = 0
        while os.path.exists(destination):
            suffix += 1
            destination = f"{self.path}.corrupt-{stamp}.{suffix}"
        try:
            os.replace(self.path, destination)
        except OSError:
            # Already quarantined (or never written) — recreating the
            # schema is still the right next step.
            return
        for sidecar in ("-wal", "-shm"):
            try:
                os.replace(self.path + sidecar, destination + sidecar)
            except OSError:
                pass

    def close(self) -> None:
        self.flush()
        if self._connection is not None and self._owner_pid == os.getpid():
            self._connection.close()
        self._connection = None
        self._owner_pid = None

    def __enter__(self) -> "SQLiteHomStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Serialization (memoized per structure; None = not serializable)
    # ------------------------------------------------------------------
    def _structure_json(self, structure: Structure) -> Optional[str]:
        if structure in self._json_cache:
            return self._json_cache[structure]
        try:
            text: Optional[str] = canonical_json(structure_to_dict(structure))
        except SerializationError:
            text = None
        if len(self._json_cache) > 4096:
            self._json_cache.clear()
        self._json_cache[structure] = text
        return text

    # ------------------------------------------------------------------
    # Store protocol (consumed by HomEngine)
    # ------------------------------------------------------------------
    def lookup(self, component: Structure, leaf: Structure) -> Optional[int]:
        """The stored count, matching ``component`` up to isomorphism."""
        value = self._lookup(_COUNTS, component, leaf)
        return None if value is None else int(value)

    def record(self, component: Structure, leaf: Structure, count: int) -> None:
        """Queue a freshly computed count for persistence."""
        self._record(_COUNTS, component, leaf, str(count))

    def lookup_exists(self, source: Structure,
                      target: Structure) -> Optional[bool]:
        """The stored Chandra–Merlin verdict, up to source isomorphism."""
        value = self._lookup(_EXISTS, source, target)
        return None if value is None else value == "1"

    def record_exists(self, source: Structure, target: Structure,
                      result: bool) -> None:
        self._record(_EXISTS, source, target, "1" if result else "0")

    def _lookup(self, table: str, source: Structure,
                target: Structure) -> Optional[str]:
        target_json = self._structure_json(target)
        if target_json is None:
            return None
        self.lookups += 1

        def probe() -> Optional[Tuple[str]]:
            # Inside the guarded operation so an injected corruption
            # exercises the same heal-and-retry path a real one does.
            if should_inject("store.lookup"):
                raise sqlite3.DatabaseError(
                    "database disk image is malformed (injected)")
            return self._connect().execute(
                f"SELECT value FROM {table} WHERE src=? AND target=?",
                (canonical_key(source), _digest(target_json)),
            ).fetchone()

        row = self._guarded(probe, None)
        if row is None:
            return None
        self.lookup_hits += 1
        return row[0]

    def _record(self, table: str, source: Structure, target: Structure,
                value: str) -> None:
        target_json = self._structure_json(target)
        if target_json is None:
            return
        target_hash = _digest(target_json)
        self._pending_targets.append((target_hash, target_json))
        self._pending[table].append((canonical_key(source), target_hash, value))
        if sum(len(rows) for rows in self._pending.values()) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Publish queued answers; contention drops the batch, not data."""
        if not any(self._pending.values()) and not self._pending_targets:
            return
        pending, self._pending = self._pending, {_COUNTS: [], _EXISTS: []}
        pending_targets, self._pending_targets = self._pending_targets, []

        def publish() -> None:
            connection = self._connect()
            with connection:
                connection.executemany(
                    "INSERT OR IGNORE INTO targets VALUES (?, ?)",
                    pending_targets,
                )
                for table, rows in pending.items():
                    if rows:
                        connection.executemany(
                            f"INSERT OR IGNORE INTO {table} VALUES (?, ?, ?)",
                            rows,
                        )
            self.inserts += sum(len(rows) for rows in pending.values())

        # Contention default: another worker holds the write lock past
        # the busy timeout; the answers stay correct in memory and will
        # be recomputed (or published by that worker) — never block the
        # batch.  Corruption heals and republishes the detached batch.
        self._guarded(publish, None)

    # ------------------------------------------------------------------
    # Warm start / introspection
    # ------------------------------------------------------------------
    def preload(self, engine, limit: int = 2048) -> int:
        """Seed an engine's in-memory memo from the store.

        Reads up to ``limit`` stored ``(src_key, target, count)`` rows
        — most recently recorded first (descending rowid), so a bounded
        preload keeps the answers the workload touched last — and
        pushes them through
        :meth:`~repro.hom.engine.HomEngine.seed_count_key`: the
        canonical key *is* the memo key, so no source structure is
        decoded (or stored) at all.  Returns the number of counts
        seeded; rows whose target no longer decodes are skipped.
        """
        def fetch() -> List[Tuple[bytes, str, str]]:
            return self._connect().execute(
                f"SELECT h.src, t.json, h.value"
                f" FROM {_COUNTS} h JOIN targets t ON t.hash = h.target"
                f" ORDER BY h.rowid DESC LIMIT ?",
                (limit,),
            ).fetchall()

        rows = self._guarded(fetch, [])
        targets: Dict[str, Optional[Structure]] = {}
        seeded = 0
        for src_key, target_json, value in rows:
            if target_json not in targets:
                targets[target_json] = self._decode(target_json)
            leaf = targets[target_json]
            if leaf is None:
                continue
            engine.seed_count_key(bytes(src_key), leaf, int(value))
            seeded += 1
        return seeded

    @staticmethod
    def _decode(text: str) -> Optional[Structure]:
        try:
            return structure_from_dict(json.loads(text))
        except (SerializationError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Row-level surface (cache merge / warm-pack / v3 migration)
    # ------------------------------------------------------------------
    def iter_rows(self, table: str, newest_first: bool = False,
                  limit: Optional[int] = None):
        """Yield ``(src_key, target_json, value)`` rows of one table.

        Pending rows are flushed first so the iteration sees every
        recorded answer.  ``newest_first`` walks descending rowid —
        the order warm packs are exported in.
        """
        self.flush()
        order = "DESC" if newest_first else "ASC"

        def fetch() -> List[Tuple[bytes, str, str]]:
            return self._connect().execute(
                f"SELECT h.src, t.json, h.value"
                f" FROM {table} h JOIN targets t ON t.hash = h.target"
                f" ORDER BY h.rowid {order} LIMIT ?",
                (-1 if limit is None else limit,),
            ).fetchall()

        for src_key, target_json, value in self._guarded(fetch, []):
            yield bytes(src_key), target_json, value

    def record_row(self, table: str, src_key: bytes, target_json: str,
                   value: str) -> None:
        """Queue one raw row (merge/import path — no Structures)."""
        target_hash = _digest(target_json)
        self._pending_targets.append((target_hash, target_json))
        self._pending[table].append((src_key, target_hash, value))
        if sum(len(rows) for rows in self._pending.values()) >= self.flush_every:
            self.flush()

    def compact(self) -> Dict[str, int]:
        """VACUUM the store file; returns byte sizes before/after."""
        self.flush()
        before = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        self._guarded(lambda: self._connect().execute("VACUUM"), None)
        after = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        return {"bytes_before": before, "bytes_after": after}

    def info(self) -> Dict[str, object]:
        """The ``repro cache info`` report for a single-file store."""
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "shards": 1,
            "counts": self.counts_len(),
            "exists": self.exists_len(),
            "memory_tier": None,
            "shard_files": [{
                "index": 0,
                "path": self.path,
                "counts": self.counts_len(),
                "exists": self.exists_len(),
                "bytes": os.path.getsize(self.path)
                if os.path.exists(self.path) else 0,
            }],
        }

    def clear(self) -> int:
        """Delete every persisted answer (``repro cache flush``).

        Drops pending (unflushed) rows too — flushing them after a
        clear would resurrect part of the cache the operator just
        asked to empty.  Returns the number of deleted rows.
        """
        self._pending = {_COUNTS: [], _EXISTS: []}
        self._pending_targets = []

        def wipe() -> int:
            removed = len(self)
            connection = self._connect()
            with connection:
                for table in (_COUNTS, _EXISTS, "targets"):
                    connection.execute(f"DELETE FROM {table}")
            return removed

        return self._guarded(wipe, 0)

    def counts_len(self) -> int:
        return self._table_len(_COUNTS)

    def exists_len(self) -> int:
        return self._table_len(_EXISTS)

    def _table_len(self, table: str) -> int:
        def count() -> int:
            row = self._connect().execute(
                f"SELECT COUNT(*) FROM {table}").fetchone()
            return int(row[0])

        return self._guarded(count, 0)

    def __len__(self) -> int:
        return self.counts_len() + self.exists_len()

    def stats(self) -> Dict[str, int]:
        return {
            "counts": self.counts_len(),
            "exists": self.exists_len(),
            "lookups": self.lookups,
            "lookup_hits": self.lookup_hits,
            "inserts": self.inserts,
            "corruptions": self.corruptions,
            "retries": self.retries,
        }

    def __repr__(self) -> str:
        return (f"SQLiteHomStore(path={self.path!r}, entries={len(self)}, "
                f"hits={self.lookup_hits}/{self.lookups})")
