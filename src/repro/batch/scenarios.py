"""Randomized scenario families for stress tests and benchmarks.

A *scenario* is a JSONL file of task records (:mod:`repro.batch.tasks`)
drawn from a seeded RNG — the workload shape the related pod-function
reproductions validate against: large families of instances at
controllable sizes, reproducible from ``(kind, count, seed)`` alone.

The CQ families are assembled from a small pool of connected components
(paths, cycles, and seeded random connected graphs), mirroring the
benchmark workloads: the same component shows up in many instances, so
the canonical-component memo and the persistent store both get the hit
patterns production traffic would produce.

All constants the generators emit are JSON-safe (ints and strings), so
every generated instance round-trips the wire format exactly.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, TextIO

from repro.errors import ReproError
from repro.queries.cq import ConjunctiveQuery, cq_from_structure
from repro.queries.path import PathQuery
from repro.queries.ucq import UnionOfBooleanCQs
from repro.structures.generators import (
    cycle_structure,
    grid_structure,
    path_structure,
    random_connected_structure,
)
from repro.structures.operations import sum_with_multiplicities
from repro.structures.schema import Schema
from repro.batch.tasks import (
    canonical_json,
    make_containment_task,
    make_decision_task,
    make_hom_count_task,
    make_path_task,
    make_ucq_task,
)

SCENARIO_KINDS = ("cq", "cq-witness", "containment", "path", "ucq", "dense",
                  "hom", "mixed")


def component_pool(rng: random.Random, extra: int = 3) -> List:
    """The component pool a scenario draws from: the fixed 7 shapes the
    benchmarks use, plus ``extra`` seeded random connected graphs."""
    pool = [
        path_structure(["R"]),
        path_structure(["R", "R"]),
        path_structure(["S"]),
        path_structure(["R", "S"]),
        path_structure(["S", "R"]),
        cycle_structure(3),
        cycle_structure(4),
    ]
    schema = Schema({"R": 2, "S": 2})
    for _ in range(extra):
        pool.append(random_connected_structure(
            schema, size=rng.randint(2, 4), extra_density=0.15, rng=rng))
    return pool


def _random_cq(rng: random.Random, pool, max_components: int) -> ConjunctiveQuery:
    pieces = [
        (rng.randint(1, 2), rng.choice(pool))
        for _ in range(rng.randint(1, max_components))
    ]
    return cq_from_structure(sum_with_multiplicities(pieces))


# ----------------------------------------------------------------------
# Families
# ----------------------------------------------------------------------
def generate_decision_tasks(
    count: int,
    seed: int = 0,
    n_views: int = 6,
    max_components: int = 2,
    witness: bool = False,
) -> List[Dict]:
    """``decide-cq`` instances over the shared component pool."""
    rng = random.Random(seed)
    pool = component_pool(rng)
    tasks = []
    for index in range(count):
        views = [_random_cq(rng, pool, max_components)
                 for _ in range(rng.randint(1, n_views))]
        query = _random_cq(rng, pool, max_components)
        tasks.append(make_decision_task(
            f"cq-{index:05d}", views, query, witness=witness))
    return tasks


def generate_containment_tasks(
    count: int,
    seed: int = 0,
    max_components: int = 2,
) -> List[Dict]:
    """Chandra–Merlin containment probes between pool-built CQs."""
    rng = random.Random(seed)
    pool = component_pool(rng)
    tasks = []
    for index in range(count):
        query = _random_cq(rng, pool, max_components)
        if rng.random() < 0.5:
            # A pair that is contained by construction: conjoining more
            # atoms onto the query can only shrink its models.
            extra = cq_from_structure(rng.choice(pool))
            extra = extra.rename_variables(
                {v: f"w{index}_{v}" for v in sorted(extra.variables())})
            container = query
            # Not .conjoin(): that would keep the query's (narrower)
            # declared schema and reject the extra CQ's relations.
            query = ConjunctiveQuery(
                list(query.atoms) + list(extra.atoms),
                extra_variables=query.extra_variables | extra.extra_variables,
            )
        else:
            container = _random_cq(rng, pool, max_components)
        tasks.append(make_containment_task(
            f"ct-{index:05d}", query, container))
    return tasks


def generate_path_tasks(
    count: int,
    seed: int = 0,
    alphabet: str = "ABCD",
    max_length: int = 6,
) -> List[Dict]:
    """Theorem 1 path instances: random words plus subword views."""
    rng = random.Random(seed)
    letters = list(alphabet)
    tasks = []
    for index in range(count):
        length = rng.randint(1, max_length)
        word = [rng.choice(letters) for _ in range(length)]
        query = PathQuery(tuple(word))
        views = []
        for _ in range(rng.randint(1, 4)):
            if rng.random() < 0.6 and length > 1:
                start = rng.randrange(length)
                stop = rng.randint(start + 1, length)
                views.append(PathQuery(tuple(word[start:stop])))
            else:
                views.append(PathQuery(tuple(
                    rng.choice(letters)
                    for _ in range(rng.randint(1, max_length)))))
        tasks.append(make_path_task(f"pq-{index:05d}", views, query))
    return tasks


def generate_ucq_tasks(
    count: int,
    seed: int = 0,
    max_disjuncts: int = 3,
) -> List[Dict]:
    """Linear-certificate instances in the Example 3 shape: unions of
    small unary/binary CQs, with overlapping views so rational
    certificates actually exist for a fraction of instances."""
    rng = random.Random(seed)
    base = [
        ConjunctiveQuery([("P", ("x",))]),
        ConjunctiveQuery([("R", ("x",))]),
        ConjunctiveQuery([("S", ("x",))]),
        ConjunctiveQuery([("P", ("x",)), ("R", ("x",))]),
        ConjunctiveQuery([("E", ("x", "y"))]),
        ConjunctiveQuery([("E", ("x", "y")), ("E", ("y", "z"))]),
    ]

    def random_ucq() -> UnionOfBooleanCQs:
        picks = rng.sample(base, rng.randint(1, max_disjuncts))
        return UnionOfBooleanCQs(picks)

    tasks = []
    for index in range(count):
        query = random_ucq()
        views = [random_ucq() for _ in range(rng.randint(1, 4))]
        if rng.random() < 0.5:
            # Plant a certificate: include the query itself among the
            # views (possibly widened), so q = 1·v_i is in the span.
            views.append(query.union(random_ucq())
                         if rng.random() < 0.5 else query)
        tasks.append(make_ucq_task(f"uq-{index:05d}", views, query))
    return tasks


def _dense_component(rng: random.Random, width: int, length: int):
    """One dense-but-tree-like connected source: a grid (bounded
    treewidth = min(rows, cols)) or a long chained join (a path of
    alternating binary atoms, treewidth 1)."""
    if rng.random() < 0.5:
        return grid_structure(rng.randint(2, width), rng.randint(2, length),
                              horizontal="R", vertical="S")
    letters = [rng.choice(("R", "S"))
               for _ in range(rng.randint(width, width * length))]
    return path_structure(letters)


def generate_dense_tasks(
    count: int,
    seed: int = 0,
    n_views: int = 4,
    width: int = 3,
    length: int = 4,
) -> List[Dict]:
    """``decide-cq`` instances over grid-like and chained-join sources.

    The shapes the tree-decomposition DP backend exists for: many
    variables, bounded treewidth (``width`` caps grid rows and seeds
    chain lengths), dense constraint graphs.  A slice of the views is
    the query itself, so a fraction of instances is determined by
    construction and the rewriting side gets exercised too.
    """
    width = max(2, width)
    length = max(2, length)
    rng = random.Random(seed)
    tasks = []
    for index in range(count):
        query = cq_from_structure(_dense_component(rng, width, length))
        views = []
        for _ in range(rng.randint(1, n_views)):
            if rng.random() < 0.3:
                views.append(query)
            else:
                views.append(
                    cq_from_structure(_dense_component(rng, width, length)))
        tasks.append(make_decision_task(f"dn-{index:05d}", views, query))
    return tasks


def generate_hom_tasks(
    count: int,
    seed: int = 0,
    max_components: int = 3,
    max_target_size: int = 5,
) -> List[Dict]:
    """Raw ``hom-count`` requests: pool-assembled sources into seeded
    random connected targets — the primitive workload of the request
    service (and a direct stress of the canonical-component memo, since
    sources repeat pool components across tasks)."""
    rng = random.Random(seed)
    pool = component_pool(rng)
    schema = Schema({"R": 2, "S": 2})
    tasks = []
    for index in range(count):
        pieces = [
            (rng.randint(1, 2), rng.choice(pool))
            for _ in range(rng.randint(1, max_components))
        ]
        source = sum_with_multiplicities(pieces)
        target = random_connected_structure(
            schema, size=rng.randint(2, max_target_size),
            extra_density=0.3, rng=rng)
        tasks.append(make_hom_count_task(f"hc-{index:05d}", source, target))
    return tasks


_FAMILIES: Dict[str, Callable[..., List[Dict]]] = {
    "cq": generate_decision_tasks,
    "containment": generate_containment_tasks,
    "path": generate_path_tasks,
    "ucq": generate_ucq_tasks,
    "dense": generate_dense_tasks,
    "hom": generate_hom_tasks,
}


def generate_scenario(kind: str, count: int, seed: int = 0, **knobs) -> List[Dict]:
    """The ``count`` task records of scenario ``(kind, seed)``.

    ``kind`` is one of :data:`SCENARIO_KINDS`; ``mixed`` interleaves the
    five base families round-robin (each family keeps its own id space,
    so mixed scenarios stay resumable).
    """
    if count < 0:
        raise ReproError(f"scenario count must be >= 0, got {count}")
    if kind == "cq-witness":
        return generate_decision_tasks(count, seed, witness=True, **knobs)
    if kind == "mixed":
        if knobs:
            # The four sub-families take different knobs; silently
            # dropping them would hand back a default-shaped workload.
            raise ReproError(
                f"scenario kind 'mixed' does not accept family knobs "
                f"(got {sorted(knobs)}); generate the families "
                f"separately to tune them")
        order = ("cq", "containment", "path", "ucq", "dense")
        per_kind = {name: count // len(order) for name in order}
        for name in order[: count % len(order)]:
            per_kind[name] += 1
        tasks: List[Dict] = []
        streams = {
            name: _FAMILIES[name](per_kind[name], seed=seed + offset)
            for offset, name in enumerate(order)
        }
        cursors = {name: 0 for name in order}
        for index in range(count):
            name = order[index % len(order)]
            while cursors[name] >= len(streams[name]):
                name = order[(order.index(name) + 1) % len(order)]
            tasks.append(streams[name][cursors[name]])
            cursors[name] += 1
        return tasks
    family = _FAMILIES.get(kind)
    if family is None:
        raise ReproError(
            f"unknown scenario kind {kind!r}; expected one of {SCENARIO_KINDS}")
    return family(count, seed=seed, **knobs)


def write_scenario(tasks: Iterable[Dict], sink: TextIO) -> int:
    """Write task records as JSONL; returns the number written.

    Records from this module's generators are valid by construction,
    so this skips :func:`~repro.batch.tasks.encode_task`'s decode
    round-trip (which would re-parse every query payload purely for
    validation — a 2x cost on large scenario files).  Externally built
    records should go through ``encode_task`` instead.
    """
    written = 0
    for record in tasks:
        sink.write(canonical_json(record) + "\n")
        written += 1
    return written
