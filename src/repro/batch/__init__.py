"""Parallel batch evaluation over families of determinacy instances.

The throughput-oriented face of the library: where :mod:`repro.core`
answers one instance fast, this package answers *many* — sharded across
worker processes, backed by a persistent on-disk hom-count store, and
reproducible byte-for-byte regardless of worker count.

* :mod:`repro.batch.tasks` — the serializable task codec (JSONL).
* :mod:`repro.batch.scenarios` — seeded random instance families.
* :mod:`repro.batch.cache` — the SQLite hom-count store the engine
  consults across processes.
* :mod:`repro.batch.runner` — chunked multiprocessing evaluation with
  deterministic result ordering and resume support.

CLI: ``repro batch gen`` / ``repro batch run`` / ``repro batch cache``.
"""

from repro.batch.cache import SQLiteHomStore
from repro.batch.runner import evaluate_task, iter_results, run_batch
from repro.batch.scenarios import SCENARIO_KINDS, generate_scenario, write_scenario
from repro.batch.tasks import (
    BatchCodecError,
    DecodedTask,
    decode_task,
    encode_task,
    make_containment_task,
    make_decision_task,
    make_hom_count_task,
    make_path_task,
    make_ucq_task,
    task_seed,
)

__all__ = [
    "BatchCodecError",
    "DecodedTask",
    "SCENARIO_KINDS",
    "SQLiteHomStore",
    "decode_task",
    "encode_task",
    "evaluate_task",
    "generate_scenario",
    "iter_results",
    "make_containment_task",
    "make_decision_task",
    "make_hom_count_task",
    "make_path_task",
    "make_ucq_task",
    "run_batch",
    "task_seed",
    "write_scenario",
]
