"""Isomorphism testing for finite relational structures.

The basis ``W`` of Definition 27 is a set of *isomorphism classes* of
connected components, so deduplication needs a reliable isomorphism
test.  We use the classic two-stage approach:

1. **Color refinement** (1-dimensional Weisfeiler–Leman adapted to
   relational structures): iteratively refine a coloring of the domain
   by the multiset of (relation, position, colors-of-co-occurring
   constants) signatures.  The stable coloring is an isomorphism
   invariant and usually shatters the domain completely on the small
   structures this library manipulates (query components).
2. **Backtracking** over color-compatible bijections, verifying that
   facts map exactly onto facts.

:func:`invariant_key` is a cheap hashable invariant used to bucket
structures before the quadratic pairwise tests (DESIGN.md §6.4).

The stable coloring itself is computed once, on the interned integer
form, by :mod:`repro.structures.canonical` — the same refinement that
seeds the canonical labeling — and mapped back to constants here.  The
pairwise backtracking test below is deliberately *independent* of the
canonical-labeling search: it is the ground truth the canonical keys
are property-tested against (``tests/test_canonical.py``).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Hashable, List, Optional, Tuple

from repro.structures.canonical import wl_colors
from repro.structures.interned import interned
from repro.structures.structure import Structure

Constant = Hashable


def refine_colors(structure: Structure) -> Dict[Constant, int]:
    """Stable coloring of the domain under 1-WL-style refinement.

    Colors are small integers; equal colors mean "not yet
    distinguished".  Isolated elements all receive the same color.
    Color ids are isomorphism-invariant ranks (derived from sorted
    signatures on the interned form), so two isomorphic structures
    color corresponding constants identically.  Callers get a fresh
    dict each time; the underlying coloring is memoized per structure.
    """
    inter = interned(structure)
    colors = wl_colors(inter)
    return {inter.table.constant(i): color
            for i, color in enumerate(colors)}


@lru_cache(maxsize=8192)
def invariant_key(structure: Structure) -> Tuple:
    """A hashable isomorphism invariant (not complete, but cheap).

    Equal structures always get equal keys; different keys certify
    non-isomorphism.  Combines domain size, per-relation fact counts and
    the color histogram of the stable refinement.  Memoized per
    structure — the component basis and the dedup buckets probe the
    same components repeatedly.  (The engine memo and the SQLite store
    moved on to the *complete* invariant,
    :func:`repro.structures.canonical.canonical_key`; this cheap key
    remains the bucketing front of the pairwise oracle.)
    """
    colors = refine_colors(structure)
    histogram = tuple(sorted(
        (color, count)
        for color, count in _histogram(colors).items()
    ))
    fact_counts = tuple(sorted(
        (name, structure.count_facts(name)) for name in structure.relations_used()
    ))
    return (len(structure.domain()), fact_counts, histogram)


def _histogram(colors: Dict[Constant, int]) -> Dict[int, int]:
    hist: Dict[int, int] = {}
    for color in colors.values():
        hist[color] = hist.get(color, 0) + 1
    return hist


def find_isomorphism(
    left: Structure, right: Structure
) -> Optional[Dict[Constant, Constant]]:
    """An isomorphism ``left -> right`` or ``None``.

    An isomorphism is a bijection on domains mapping the fact set of
    ``left`` exactly onto the fact set of ``right``.
    """
    if len(left.domain()) != len(right.domain()):
        return None
    if len(left.facts()) != len(right.facts()):
        return None
    for name in left.relations_used() | right.relations_used():
        if left.count_facts(name) != right.count_facts(name):
            return None

    left_colors = refine_colors(left)
    right_colors = refine_colors(right)
    if sorted(_histogram(left_colors).values()) != sorted(_histogram(right_colors).values()):
        return None
    # Color ids are canonical (derived from sorted signatures), so they
    # must match exactly, not just as histograms.
    if _histogram(left_colors) != _histogram(right_colors):
        return None

    left_domain = sorted(left.domain(), key=lambda c: (left_colors[c], repr(c)))
    right_by_color: Dict[int, List[Constant]] = {}
    for constant, color in right_colors.items():
        right_by_color.setdefault(color, []).append(constant)

    assignment: Dict[Constant, Constant] = {}
    used: set = set()

    left_facts_by_constant: Dict[Constant, List] = {c: [] for c in left.domain()}
    for fact in left.facts():
        for term in set(fact.terms):
            left_facts_by_constant[term].append(fact)

    def consistent(constant: Constant) -> bool:
        """Check all left-facts whose terms are fully assigned."""
        for fact in left_facts_by_constant[constant]:
            if all(t in assignment for t in fact.terms):
                image = tuple(assignment[t] for t in fact.terms)
                if image not in right.tuples(fact.relation):
                    return False
        return True

    def backtrack(index: int) -> bool:
        if index == len(left_domain):
            return _image_is_exact(left, right, assignment)
        constant = left_domain[index]
        for candidate in right_by_color.get(left_colors[constant], []):
            if candidate in used:
                continue
            assignment[constant] = candidate
            used.add(candidate)
            if consistent(constant) and backtrack(index + 1):
                return True
            used.discard(candidate)
            del assignment[constant]
        return False

    if not backtrack(0):
        return None
    return dict(assignment)


def _image_is_exact(left: Structure, right: Structure,
                    assignment: Dict[Constant, Constant]) -> bool:
    """With equal fact counts, an injective homomorphism is onto the
    fact set iff the mapped facts are pairwise distinct — which they
    are, the map being injective.  Nullary facts still need a check in
    both directions."""
    for fact in left.facts():
        image = tuple(assignment[t] for t in fact.terms)
        if image not in right.tuples(fact.relation):
            return False
    return True


def are_isomorphic(left: Structure, right: Structure) -> bool:
    """Isomorphism test (paper treats isomorphic structures as equal)."""
    if invariant_key(left) != invariant_key(right):
        return False
    return find_isomorphism(left, right) is not None


def dedupe_up_to_isomorphism(structures) -> List[Structure]:
    """Keep one representative per isomorphism class, preserving first
    occurrence order.  Buckets by :func:`invariant_key` first so the
    pairwise tests only run within buckets."""
    buckets: Dict[Tuple, List[Structure]] = {}
    representatives: List[Structure] = []
    for structure in structures:
        key = invariant_key(structure)
        bucket = buckets.setdefault(key, [])
        if not any(find_isomorphism(structure, seen) is not None for seen in bucket):
            bucket.append(structure)
            representatives.append(structure)
    return representatives
