"""Relational schemas.

A schema (paper Section 2.1) is a finite set of relational symbols, each
with a fixed arity.  A schema is *n-ary* when every relation has arity
at most ``n``; *binary* schemas (every arity exactly 2) are the home of
path queries (Section 3).

Schemas are immutable and hashable; structures and queries carry one and
validate their atoms against it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.errors import SchemaError


class RelationSymbol:
    """A named relation with a fixed arity.

    >>> R = RelationSymbol('R', 2)
    >>> R.name, R.arity
    ('R', 2)
    """

    __slots__ = ("name", "arity")

    def __init__(self, name: str, arity: int):
        if not name or not isinstance(name, str):
            raise SchemaError(f"relation name must be a non-empty string, got {name!r}")
        if not isinstance(arity, int) or arity < 0:
            raise SchemaError(f"arity of {name!r} must be a non-negative int, got {arity!r}")
        self.name = name
        self.arity = arity

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSymbol):
            return NotImplemented
        return self.name == other.name and self.arity == other.arity

    def __hash__(self) -> int:
        return hash((self.name, self.arity))

    def __repr__(self) -> str:
        return f"RelationSymbol({self.name!r}, {self.arity})"

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class Schema:
    """An immutable finite set of relation symbols keyed by name.

    >>> schema = Schema({'R': 2, 'S': 2, 'H': 0})
    >>> schema.arity('R')
    2
    >>> schema.is_binary()
    False
    >>> Schema({'A': 2, 'B': 2}).is_binary()
    True
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: Mapping[str, int] | Iterable[RelationSymbol]):
        table: Dict[str, RelationSymbol] = {}
        if isinstance(relations, Mapping):
            symbols: Iterable[RelationSymbol] = (
                RelationSymbol(name, arity) for name, arity in relations.items()
            )
        else:
            symbols = relations
        for symbol in symbols:
            if not isinstance(symbol, RelationSymbol):
                raise SchemaError(f"expected RelationSymbol, got {symbol!r}")
            existing = table.get(symbol.name)
            if existing is not None and existing.arity != symbol.arity:
                raise SchemaError(
                    f"relation {symbol.name!r} declared with arities "
                    f"{existing.arity} and {symbol.arity}"
                )
            table[symbol.name] = symbol
        self._relations = dict(sorted(table.items()))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def arity(self, name: str) -> int:
        """Arity of relation ``name``; raises :class:`SchemaError` if unknown."""
        symbol = self._relations.get(name)
        if symbol is None:
            raise SchemaError(f"unknown relation {name!r} (schema has {sorted(self._relations)})")
        return symbol.arity

    def symbol(self, name: str) -> RelationSymbol:
        symbol = self._relations.get(name)
        if symbol is None:
            raise SchemaError(f"unknown relation {name!r} (schema has {sorted(self._relations)})")
        return symbol

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def names(self) -> Tuple[str, ...]:
        """Relation names in sorted order (deterministic iteration)."""
        return tuple(self._relations)

    def symbols(self) -> Tuple[RelationSymbol, ...]:
        return tuple(self._relations.values())

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    # ------------------------------------------------------------------
    # Shape predicates
    # ------------------------------------------------------------------
    def max_arity(self) -> int:
        """The ``n`` for which this schema is n-ary (0 for empty schema)."""
        return max((s.arity for s in self), default=0)

    def is_binary(self) -> bool:
        """True when every relation has arity exactly 2 (path-query home)."""
        return len(self) > 0 and all(s.arity == 2 for s in self)

    def has_nullary(self) -> bool:
        """True when some relation has arity 0 (Appendix-A reduction uses these)."""
        return any(s.arity == 0 for s in self)

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def union(self, other: "Schema") -> "Schema":
        """Merge two schemas; arities must agree on shared names."""
        return Schema(list(self.symbols()) + list(other.symbols()))

    def restrict(self, names: Iterable[str]) -> "Schema":
        """Sub-schema containing only the given relation names."""
        wanted = set(names)
        missing = wanted - set(self._relations)
        if missing:
            raise SchemaError(f"cannot restrict to unknown relations {sorted(missing)}")
        return Schema([s for s in self if s.name in wanted])

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(tuple(self._relations.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{s.name!r}: {s.arity}" for s in self)
        return f"Schema({{{inner}}})"


def binary_schema(letters: Iterable[str]) -> Schema:
    """Convenience: the binary schema over the given relation names.

    Path queries (Section 3) live over such schemas; the letters double
    as the alphabet of the word encoding.

    >>> binary_schema('AB').names()
    ('A', 'B')
    """
    return Schema({letter: 2 for letter in letters})
