"""Multisets (bags), the answer type of queries under bag semantics.

The paper (Section 2.1) defines a multiset as a mapping ``Y -> N`` and
query answers as multisets of tuples.  :class:`Multiset` is a thin,
immutable-by-convention wrapper over a ``dict`` that implements exactly
the operators the paper uses: union (pointwise ``+``), difference,
multiplicity lookup, and equality as equality of mappings (ignoring
zero-multiplicity entries).

We keep this hand-rolled rather than using :class:`collections.Counter`
because (a) ``Counter`` equality treats missing and zero keys
inconsistently across operations, and (b) we want negative
multiplicities to be a hard error — a bag never contains an element a
negative number of times.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, Iterator, Mapping, Tuple, TypeVar

from repro.errors import StructureError

T = TypeVar("T", bound=Hashable)


class Multiset(Generic[T]):
    """A finite multiset with non-negative integer multiplicities.

    >>> m = Multiset({'a': 2, 'b': 1})
    >>> m['a']
    2
    >>> m['missing']
    0
    >>> (m + Multiset({'a': 1})).multiplicity('a')
    3
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[T, int] | Iterable[T] = ()):
        data: Dict[T, int] = {}
        if isinstance(counts, Mapping):
            items = counts.items()
            for element, multiplicity in items:
                if not isinstance(multiplicity, int):
                    raise StructureError(
                        f"multiplicity of {element!r} must be an int, "
                        f"got {type(multiplicity).__name__}"
                    )
                if multiplicity < 0:
                    raise StructureError(
                        f"negative multiplicity {multiplicity} for {element!r}"
                    )
                if multiplicity > 0:
                    data[element] = data.get(element, 0) + multiplicity
        else:
            for element in counts:
                data[element] = data.get(element, 0) + 1
        self._counts = data

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def multiplicity(self, element: T) -> int:
        """Number of occurrences of ``element`` (0 when absent)."""
        return self._counts.get(element, 0)

    def __getitem__(self, element: T) -> int:
        return self.multiplicity(element)

    def __contains__(self, element: T) -> bool:
        return element in self._counts

    def support(self) -> frozenset:
        """The underlying set: elements with multiplicity > 0."""
        return frozenset(self._counts)

    def total(self) -> int:
        """Total number of occurrences, counted with multiplicity."""
        return sum(self._counts.values())

    def __len__(self) -> int:
        """Number of *distinct* elements."""
        return len(self._counts)

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __iter__(self) -> Iterator[T]:
        """Iterate over distinct elements (use :meth:`items` for counts)."""
        return iter(self._counts)

    def items(self) -> Iterable[Tuple[T, int]]:
        return self._counts.items()

    def elements(self) -> Iterator[T]:
        """Iterate over elements *with* multiplicity."""
        for element, multiplicity in self._counts.items():
            for _ in range(multiplicity):
                yield element

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "Multiset[T]") -> "Multiset[T]":
        """Multiset union: ``(X + Y)[a] = X[a] + Y[a]`` (paper Sec. 2.1)."""
        if not isinstance(other, Multiset):
            return NotImplemented
        merged = dict(self._counts)
        for element, multiplicity in other.items():
            merged[element] = merged.get(element, 0) + multiplicity
        return Multiset(merged)

    def __sub__(self, other: "Multiset[T]") -> "Multiset[T]":
        """Truncated difference: multiplicities floor at zero."""
        if not isinstance(other, Multiset):
            return NotImplemented
        result: Dict[T, int] = {}
        for element, multiplicity in self._counts.items():
            remaining = multiplicity - other.multiplicity(element)
            if remaining > 0:
                result[element] = remaining
        return Multiset(result)

    def scale(self, factor: int) -> "Multiset[T]":
        """Multiply every multiplicity by a non-negative ``factor``."""
        if factor < 0:
            raise StructureError(f"cannot scale a multiset by {factor}")
        if factor == 0:
            return Multiset()
        return Multiset({e: m * factor for e, m in self._counts.items()})

    def union_max(self, other: "Multiset[T]") -> "Multiset[T]":
        """Pointwise maximum (the 'set-style' union)."""
        merged = dict(self._counts)
        for element, multiplicity in other.items():
            merged[element] = max(merged.get(element, 0), multiplicity)
        return Multiset(merged)

    def intersection(self, other: "Multiset[T]") -> "Multiset[T]":
        """Pointwise minimum."""
        result: Dict[T, int] = {}
        for element, multiplicity in self._counts.items():
            m = min(multiplicity, other.multiplicity(element))
            if m > 0:
                result[element] = m
        return Multiset(result)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._counts == other._counts

    def __le__(self, other: "Multiset[T]") -> bool:
        """Sub-multiset test."""
        return all(m <= other.multiplicity(e) for e, m in self._counts.items())

    def __lt__(self, other: "Multiset[T]") -> bool:
        return self <= other and self != other

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{e!r}: {m}" for e, m in sorted(
            self._counts.items(), key=lambda item: repr(item[0])))
        return f"Multiset({{{inner}}})"

    def as_set_semantics(self) -> frozenset:
        """Collapse to set semantics (forget multiplicities)."""
        return self.support()
