"""Lazy structure expressions: formal sums, products and powers.

Step 2 of Lemma 40 builds ``s⁽²⁾ = Σ_i T^i s⁽¹⁾_i`` with ``T`` larger
than every entry of an evaluation matrix, and Step 3 raises it to
powers up to ``k-1``.  Materializing these structures is hopeless (the
domain of ``(Σ T^i s_i)^{k-1}`` has ``(Σ T^i |s_i|)^{k-1}`` elements),
but *hom counts into them* are cheap thanks to Lemma 4:

* ``|hom(A, B + C)| = |hom(A, B)| + |hom(A, C)|``   (A connected),
* ``|hom(A, t·B)|   = t · |hom(A, B)|``             (A connected),
* ``|hom(A, B × C)| = |hom(A, B)| · |hom(A, C)|``   (any A),
* ``|hom(A, B^t)|   = |hom(A, B)|^t``               (any A).

A :class:`StructureExpression` is an immutable tree of
:class:`LeafExpression`, :class:`SumExpression` (with non-negative
integer coefficients), :class:`ProductExpression` and
:class:`PowerExpression`.  The hom-counting visitor lives in
:mod:`repro.hom.count`; this module only knows the shape, the domain
size, the schema, and how to materialize small expressions for
cross-checking.

Sum nodes refuse operands whose schema contains used 0-ary relations,
mirroring :func:`repro.structures.operations.disjoint_union`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import StructureError
from repro.structures.schema import Schema
from repro.structures.operations import (
    power,
    product,
    sum_structures,
    unit_structure,
)
from repro.structures.structure import Structure


class StructureExpression:
    """Abstract base of the expression algebra.

    Supports ``+`` (formal disjoint union), ``*`` (formal product),
    ``int * expr`` (scalar multiple) and ``expr ** n`` (power).
    """

    def schema(self) -> Schema:
        raise NotImplementedError

    def domain_size(self) -> int:
        """Size of the (virtual) domain; may be astronomically large."""
        raise NotImplementedError

    def materialize(self, max_domain: int = 100_000) -> Structure:
        """Build the concrete structure; raises when the domain would
        exceed ``max_domain`` elements."""
        size = self.domain_size()
        if size > max_domain:
            raise StructureError(
                f"refusing to materialize a structure with {size} domain "
                f"elements (limit {max_domain})"
            )
        return self._materialize()

    def _materialize(self) -> Structure:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Operator sugar
    # ------------------------------------------------------------------
    def __add__(self, other: "StructureExpression") -> "StructureExpression":
        return SumExpression([(1, self), (1, as_expression(other))])

    def __mul__(self, other: "StructureExpression") -> "StructureExpression":
        return ProductExpression([self, as_expression(other)])

    def __rmul__(self, coefficient: int) -> "StructureExpression":
        if not isinstance(coefficient, int):
            return NotImplemented
        return SumExpression([(coefficient, self)])

    def __pow__(self, exponent: int) -> "StructureExpression":
        return PowerExpression(self, exponent)

    # Subclasses implement value equality.
    def key(self) -> Tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructureExpression):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class LeafExpression(StructureExpression):
    """A concrete structure as an expression leaf."""

    __slots__ = ("structure",)

    def __init__(self, structure: Structure):
        if not isinstance(structure, Structure):
            raise StructureError(f"leaf must wrap a Structure, got {structure!r}")
        self.structure = structure

    def schema(self) -> Schema:
        return self.structure.schema

    def domain_size(self) -> int:
        return len(self.structure.domain())

    def _materialize(self) -> Structure:
        return self.structure

    def key(self) -> Tuple:
        return ("leaf", self.structure)

    def __repr__(self) -> str:
        return f"LeafExpression({self.structure!r})"


class SumExpression(StructureExpression):
    """A formal sum ``Σ aᵢ·eᵢ`` with non-negative integer coefficients."""

    __slots__ = ("terms",)

    def __init__(self, terms: Sequence[Tuple[int, StructureExpression]]):
        normalized: List[Tuple[int, StructureExpression]] = []
        for coefficient, expr in terms:
            if not isinstance(coefficient, int) or coefficient < 0:
                raise StructureError(
                    f"sum coefficients must be non-negative ints, got {coefficient!r}"
                )
            expr = as_expression(expr)
            _reject_nullary_expr(expr, "SumExpression")
            if coefficient > 0:
                normalized.append((coefficient, expr))
        self.terms = tuple(normalized)

    def schema(self) -> Schema:
        merged = Schema({})
        for _, expr in self.terms:
            merged = merged.union(expr.schema())
        return merged

    def domain_size(self) -> int:
        return sum(c * e.domain_size() for c, e in self.terms)

    def _materialize(self) -> Structure:
        parts: List[Structure] = []
        for coefficient, expr in self.terms:
            concrete = expr._materialize()
            parts.extend([concrete] * coefficient)
        return sum_structures(parts)

    def key(self) -> Tuple:
        return ("sum", tuple((c, e.key()) for c, e in self.terms))

    def __repr__(self) -> str:
        inner = " + ".join(f"{c}*{e!r}" for c, e in self.terms)
        return f"SumExpression({inner})"


class ProductExpression(StructureExpression):
    """A formal product ``e₁ × e₂ × ...`` (empty product = unit)."""

    __slots__ = ("factors", "_schema")

    def __init__(self, factors: Sequence[StructureExpression],
                 schema: Optional[Schema] = None):
        self.factors = tuple(as_expression(f) for f in factors)
        if not self.factors and schema is None:
            raise StructureError("empty product needs an explicit schema")
        self._schema = schema

    def schema(self) -> Schema:
        if self._schema is not None:
            return self._schema
        merged = Schema({})
        for factor in self.factors:
            merged = merged.union(factor.schema())
        return merged

    def domain_size(self) -> int:
        size = 1
        for factor in self.factors:
            size *= factor.domain_size()
        return size

    def _materialize(self) -> Structure:
        if not self.factors:
            return unit_structure(self.schema())
        result = self.factors[0]._materialize()
        for factor in self.factors[1:]:
            result = product(result, factor._materialize())
        return result

    def key(self) -> Tuple:
        return ("product", tuple(f.key() for f in self.factors), self._schema)

    def __repr__(self) -> str:
        inner = " x ".join(repr(f) for f in self.factors)
        return f"ProductExpression({inner})"


class PowerExpression(StructureExpression):
    """``e^t``; ``e^0`` is the all-loops unit over the base schema."""

    __slots__ = ("base", "exponent")

    def __init__(self, base: StructureExpression, exponent: int):
        if not isinstance(exponent, int) or exponent < 0:
            raise StructureError(f"exponent must be a non-negative int, got {exponent!r}")
        self.base = as_expression(base)
        self.exponent = exponent

    def schema(self) -> Schema:
        return self.base.schema()

    def domain_size(self) -> int:
        if self.exponent == 0:
            return 1
        return self.base.domain_size() ** self.exponent

    def _materialize(self) -> Structure:
        return power(self.base._materialize(), self.exponent, schema=self.schema())

    def key(self) -> Tuple:
        return ("power", self.base.key(), self.exponent)

    def __repr__(self) -> str:
        return f"PowerExpression({self.base!r}, {self.exponent})"


def as_expression(value: Structure | StructureExpression) -> StructureExpression:
    """Coerce a concrete structure into a leaf; pass expressions through."""
    if isinstance(value, StructureExpression):
        return value
    if isinstance(value, Structure):
        return LeafExpression(value)
    raise StructureError(f"cannot interpret {value!r} as a structure expression")


def scaled_sum(terms: Sequence[Tuple[int, Structure | StructureExpression]]) -> SumExpression:
    """Convenience for ``Σ aᵢ·sᵢ`` (Definition 47 vector -> structure)."""
    return SumExpression([(c, as_expression(s)) for c, s in terms])


def _reject_nullary_expr(expr: StructureExpression, where: str) -> None:
    schema = expr.schema()
    for symbol in schema:
        if symbol.arity == 0:
            raise StructureError(
                f"{where} is undefined over schemas with 0-ary relations "
                f"(found {symbol.name!r})"
            )


def materialize_or_none(expr: StructureExpression, max_domain: int = 5000) -> Optional[Structure]:
    """Materialize when small enough, else ``None`` (used by tests and
    the witness verifier's direct-count cross-check)."""
    try:
        return expr.materialize(max_domain=max_domain)
    except StructureError:
        return None
