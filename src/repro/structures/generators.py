"""Structure generators: standard families and random structures.

Used throughout the test suite, the benchmark workload generators, the
randomized refuter (:mod:`repro.core.refuter`) and the Step 1
distinguisher search of Lemma 40 (:mod:`repro.core.goodbasis`).
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.errors import StructureError
from repro.structures.schema import Schema
from repro.structures.structure import Fact, Structure


def path_structure(letters: Sequence[str], schema: Optional[Schema] = None) -> Structure:
    """The frozen body of the path query ``letters``: a simple directed
    path ``0 -R1-> 1 -R2-> 2 ...``.

    >>> path_structure(['A', 'B']).count_facts()
    2
    """
    facts = [Fact(letter, (i, i + 1)) for i, letter in enumerate(letters)]
    domain = range(len(letters) + 1)
    return Structure(facts, schema=schema, domain=domain)


def cycle_structure(length: int, relation: str = "R",
                    schema: Optional[Schema] = None) -> Structure:
    """A directed cycle of the given length (length 1 = a loop)."""
    if length < 1:
        raise StructureError("cycle length must be >= 1")
    facts = [Fact(relation, (i, (i + 1) % length)) for i in range(length)]
    return Structure(facts, schema=schema)


def clique_structure(size: int, relation: str = "R", loops: bool = False,
                     schema: Optional[Schema] = None) -> Structure:
    """The complete directed graph on ``size`` vertices."""
    if size < 1:
        raise StructureError("clique size must be >= 1")
    facts = [
        Fact(relation, (i, j))
        for i in range(size)
        for j in range(size)
        if loops or i != j
    ]
    return Structure(facts, schema=schema, domain=range(size))


def star_structure(rays: int, relation: str = "R",
                   schema: Optional[Schema] = None) -> Structure:
    """A center with ``rays`` out-edges."""
    if rays < 0:
        raise StructureError("rays must be >= 0")
    facts = [Fact(relation, ("c", i)) for i in range(rays)]
    domain: List = ["c", *range(rays)]
    return Structure(facts, schema=schema, domain=domain)


def grid_structure(rows: int, cols: int, horizontal: str = "H",
                   vertical: str = "V") -> Structure:
    """A rows×cols grid with horizontal and vertical edge relations."""
    if rows < 1 or cols < 1:
        raise StructureError("grid dimensions must be >= 1")
    facts = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                facts.append(Fact(horizontal, ((r, c), (r, c + 1))))
            if r + 1 < rows:
                facts.append(Fact(vertical, ((r, c), (r + 1, c))))
    domain = [(r, c) for r in range(rows) for c in range(cols)]
    return Structure(facts, domain=domain)


def loop_structure(relations: Iterable[str], constant="a") -> Structure:
    """A single vertex carrying a loop for each given binary relation."""
    facts = [Fact(name, (constant, constant)) for name in relations]
    return Structure(facts, domain=[constant])


def random_structure(
    schema: Schema,
    size: int,
    density: float = 0.3,
    rng: Optional[random.Random] = None,
    ensure_nonempty: bool = False,
) -> Structure:
    """A random structure on ``size`` elements.

    Each potential fact is kept with probability ``density``.  0-ary
    relations are included with the same probability.  With
    ``ensure_nonempty`` a random fact is forced when the draw produced
    none (useful for distinguisher searches).
    """
    if size < 0:
        raise StructureError("size must be >= 0")
    if not 0.0 <= density <= 1.0:
        raise StructureError("density must be in [0, 1]")
    rng = rng or random.Random()
    domain = list(range(size))
    facts: List[Fact] = []
    candidates: List[Fact] = []
    for symbol in schema:
        if symbol.arity == 0:
            candidates.append(Fact(symbol.name, ()))
            continue
        for combo in _tuples(domain, symbol.arity):
            candidates.append(Fact(symbol.name, combo))
    for fact in candidates:
        if rng.random() < density:
            facts.append(fact)
    if ensure_nonempty and not facts and candidates:
        facts.append(rng.choice(candidates))
    return Structure(facts, schema=schema, domain=domain)


def random_connected_structure(
    schema: Schema,
    size: int,
    extra_density: float = 0.2,
    rng: Optional[random.Random] = None,
) -> Structure:
    """A random *connected* structure: a random spanning tree of facts
    plus extra random facts.  Requires a relation of arity >= 2."""
    rng = rng or random.Random()
    binary = [s for s in schema if s.arity >= 2]
    if not binary:
        raise StructureError("need a relation of arity >= 2 to connect elements")
    domain = list(range(size))
    facts: List[Fact] = []
    for index in range(1, size):
        other = rng.randrange(index)
        symbol = rng.choice(binary)
        terms = [rng.choice([index, other]) for _ in range(symbol.arity)]
        terms[0], terms[1] = other, index
        facts.append(Fact(symbol.name, tuple(terms)))
    extra = random_structure(schema, size, density=extra_density, rng=rng)
    merged = Structure(facts, schema=schema, domain=domain).union(extra)
    return merged


def enumerate_structures(
    schema: Schema, max_size: int, relations: Optional[Sequence[str]] = None
) -> Iterator[Structure]:
    """Exhaustively enumerate structures with domain {0..n-1}, n <=
    ``max_size`` (all subsets of the possible facts).

    The count explodes quickly; callers bound it.  Used as the last
    resort of the Lemma 43 distinguisher search and by the brute-force
    refuter on tiny schemas.
    """
    names = list(relations) if relations is not None else list(schema.names())
    for size in range(max_size + 1):
        domain = list(range(size))
        candidates: List[Fact] = []
        for name in names:
            arity = schema.arity(name)
            if arity == 0:
                candidates.append(Fact(name, ()))
            else:
                candidates.extend(Fact(name, combo) for combo in _tuples(domain, arity))
        for mask in range(1 << len(candidates)):
            facts = [candidates[i] for i in range(len(candidates)) if mask >> i & 1]
            yield Structure(facts, schema=schema, domain=domain)


def _tuples(domain: Sequence, arity: int) -> Iterator[tuple]:
    if arity == 0:
        yield ()
        return
    for head in domain:
        for tail in _tuples(domain, arity - 1):
            yield (head, *tail)
