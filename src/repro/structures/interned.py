"""Interned integer-term representation of structures.

Every hot path of the library bottoms out in ``|hom(A, B)|`` counts
over :class:`~repro.structures.structure.Structure` objects whose
constants are arbitrary hashable Python values — strings, ints and the
deeply nested tuples that tagging, products and frozen CQ bodies
produce.  Each candidate-set probe, each DP table key and each
forward-checking prune then pays tuple/str hashing and rich
comparisons.  This module fixes the representation once:

* :class:`InternTable` — a bijection ``constant ↔ dense int`` in
  deterministic first-seen order, so two processes interning the same
  structure agree on every index;
* :class:`InternedStructure` — the structure over those ints: facts as
  per-relation sorted tuples of int rows, the domain as the contiguous
  range ``0..n-1`` with the *active* constants occupying ``0..n_active``
  and the isolated elements (constants in no fact, which the counting
  layers turn into ``|dom|`` factors) packed at the tail.

The interned form is what the compiled engine
(:mod:`repro.hom.engine`), the tree-decomposition DP
(:mod:`repro.hom.dpcount`), the canonical labeling
(:mod:`repro.structures.canonical`) and the wire format
(:mod:`repro.structures.serialization`) all compile from; it is built
once per structure and memoized (:func:`interned`), exactly like the
stable colorings and component splits before it.

Determinism: the intern order is first-seen over facts sorted by
``(relation, repr-of-terms)``, then isolated elements sorted by
``repr`` — independent of ``PYTHONHASHSEED`` and of the insertion
order of the original fact set, which the batch subsystem's
byte-for-byte output comparisons rely on.

Because every interned domain is the contiguous range ``0..n-1``, a
*set of values* has a second natural representation: one Python int
used as a machine-word bitset, bit ``v`` set iff value ``v`` is in the
set.  Intersection is ``&``, emptiness is ``== 0``, cardinality is
``int.bit_count`` — each a single C-level operation instead of a hash
walk.  The helpers below (:func:`mask_of`, :func:`iter_bits`,
:func:`bit_indices`) are the shared vocabulary of the bit-parallel
counting kernels (:mod:`repro.hom.engine`, :mod:`repro.hom.dpcount`);
:attr:`InternedStructure.key_bits` is the per-value field width those
kernels use to pack whole assignments into single int keys.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Hashable, List, Tuple

from repro.structures.structure import Structure

Constant = Hashable


def mask_of(values) -> int:
    """The bitset of an iterable of dense ints (bit ``v`` ⇔ ``v`` in)."""
    mask = 0
    for value in values:
        mask |= 1 << value
    return mask


def iter_bits(mask: int):
    """Yield the set bit indices of ``mask`` in ascending order.

    The deterministic candidate-iteration order of the bit-parallel
    kernels: independent of hash seeds and of how the mask was built.
    """
    while mask:
        low = mask & -mask
        mask ^= low
        yield low.bit_length() - 1


def bit_indices(mask: int) -> List[int]:
    """:func:`iter_bits` materialized (ascending list of set bits)."""
    return list(iter_bits(mask))


class InternTable:
    """A dense, append-only ``constant ↔ int`` bijection.

    Indices are assigned in first-:meth:`intern` order, so a table
    filled deterministically is itself deterministic.
    """

    __slots__ = ("_index", "_constants")

    def __init__(self):
        self._index: Dict[Constant, int] = {}
        self._constants: List[Constant] = []

    def intern(self, constant: Constant) -> int:
        """The index of ``constant``, assigning the next one if new."""
        index = self._index.get(constant)
        if index is None:
            index = len(self._constants)
            self._index[constant] = index
            self._constants.append(constant)
        return index

    def index(self, constant: Constant) -> int:
        """The existing index of ``constant`` (KeyError when absent)."""
        return self._index[constant]

    def constant(self, index: int) -> Constant:
        """The constant stored at ``index``."""
        return self._constants[index]

    def constants(self) -> Tuple[Constant, ...]:
        """All constants, in index order."""
        return tuple(self._constants)

    def __len__(self) -> int:
        return len(self._constants)

    def __contains__(self, constant: Constant) -> bool:
        return constant in self._index

    def __repr__(self) -> str:
        return f"InternTable({len(self._constants)} constants)"


class InternedStructure:
    """A structure compiled onto dense integer terms.

    Attributes
    ----------
    table:
        The :class:`InternTable` mapping indices back to the original
        constants (the wire format ships it once per structure).
    relations:
        ``{relation: (row, row, ...)}`` — every fact as a tuple of int
        terms, rows sorted per relation (deterministic, and the
        column-wise candidate sets of the engine build straight off
        it).  Nullary facts appear as the single empty row ``()``.
    arities:
        ``{relation: arity}`` for every relation with at least one fact.
    n_active:
        Number of constants appearing in at least one fact; they occupy
        indices ``0..n_active-1``.
    n:
        Total domain size.  Indices ``n_active..n-1`` are the isolated
        elements, preserved so frozen bodies keep their ``|dom|``
        factors.
    key_bits:
        Field width for packing one value of this domain into an int
        key (``max(1, n.bit_length())``): ``Σ value_i << (i·key_bits)``
        is injective over tuples of values, the packed-key layout of
        the columnar DP tables.
    active_mask:
        The bitset of the active indices, ``(1 << n_active) - 1``.
    """

    __slots__ = ("table", "relations", "arities", "n_active", "n",
                 "key_bits", "active_mask", "wl_cache")

    def __init__(self, structure: Structure):
        # Lazily filled by canonical.wl_colors: the stable full-domain
        # coloring is probed repeatedly (invariant keys, iso tests) and
        # riding on this object inherits the intern layer's lifetime.
        self.wl_cache = None
        table = InternTable()
        grouped: Dict[str, List[Tuple[int, ...]]] = {}
        arities: Dict[str, int] = {}
        # First-seen interning over a deterministic fact order: facts
        # live in a frozenset, whose iteration order is hash-dependent.
        ordered = sorted(structure.facts(),
                         key=lambda f: (f.relation, tuple(map(repr, f.terms))))
        for fact in ordered:
            row = tuple(table.intern(term) for term in fact.terms)
            grouped.setdefault(fact.relation, []).append(row)
            arities[fact.relation] = len(row)
        self.n_active = len(table)
        for constant in sorted(structure.isolated_elements(), key=repr):
            table.intern(constant)
        self.table = table
        self.n = len(table)
        self.key_bits = max(1, self.n.bit_length())
        self.active_mask = (1 << self.n_active) - 1
        self.relations: Dict[str, Tuple[Tuple[int, ...], ...]] = {
            name: tuple(sorted(rows)) for name, rows in grouped.items()
        }
        self.arities = arities

    def iter_facts(self):
        """All ``(relation, int_row)`` pairs, in deterministic order."""
        for name in sorted(self.relations):
            for row in self.relations[name]:
                yield name, row

    def isolated_indices(self) -> range:
        """The tail block of indices holding isolated elements."""
        return range(self.n_active, self.n)

    def __repr__(self) -> str:
        fact_count = sum(len(rows) for rows in self.relations.values())
        return (f"InternedStructure(n={self.n}, active={self.n_active}, "
                f"facts={fact_count})")


@lru_cache(maxsize=8192)
def interned(structure: Structure) -> InternedStructure:
    """The (memoized) interned form of ``structure``.

    Structures are immutable and hashable, so the compiled form is
    shared by every layer probing the same structure — the engine's
    target index, the source plan, the canonical labeling and the
    serializer all reuse one build.
    """
    return InternedStructure(structure)


def intern_stats() -> Dict[str, int]:
    """Cache counters of the shared intern layer (for ``stats()``).

    ``structures`` is the number of distinct structures compiled
    (cache misses); ``hits`` the number of times a compiled form was
    reused.
    """
    info = interned.cache_info()
    return {
        "structures": info.misses,
        "hits": info.hits,
        "cached": info.currsize,
    }
