"""Relational structures and the Section 2.2 structure algebra."""

from repro.structures.schema import RelationSymbol, Schema, binary_schema
from repro.structures.structure import EMPTY_STRUCTURE, Fact, Structure, singleton
from repro.structures.multiset import Multiset
from repro.structures.operations import (
    disjoint_union,
    power,
    product,
    product_structures,
    scalar_multiple,
    sum_structures,
    sum_with_multiplicities,
    unit_structure,
)
from repro.structures.components import (
    component_count,
    connected_components,
    is_connected,
)
from repro.structures.interned import (
    InternTable,
    InternedStructure,
    interned,
)
from repro.structures.canonical import canonical_key
from repro.structures.isomorphism import (
    are_isomorphic,
    dedupe_up_to_isomorphism,
    find_isomorphism,
    invariant_key,
    refine_colors,
)
from repro.structures.expression import (
    LeafExpression,
    PowerExpression,
    ProductExpression,
    StructureExpression,
    SumExpression,
    as_expression,
    materialize_or_none,
    scaled_sum,
)
from repro.structures.serialization import (
    SerializationError,
    dumps,
    from_dict,
    loads,
    to_dict,
)
from repro.structures.generators import (
    clique_structure,
    cycle_structure,
    enumerate_structures,
    grid_structure,
    loop_structure,
    path_structure,
    random_connected_structure,
    random_structure,
    star_structure,
)

__all__ = [
    "RelationSymbol",
    "Schema",
    "binary_schema",
    "EMPTY_STRUCTURE",
    "Fact",
    "Structure",
    "singleton",
    "Multiset",
    "disjoint_union",
    "power",
    "product",
    "product_structures",
    "scalar_multiple",
    "sum_structures",
    "sum_with_multiplicities",
    "unit_structure",
    "component_count",
    "connected_components",
    "is_connected",
    "InternTable",
    "InternedStructure",
    "interned",
    "canonical_key",
    "are_isomorphic",
    "dedupe_up_to_isomorphism",
    "find_isomorphism",
    "invariant_key",
    "refine_colors",
    "LeafExpression",
    "PowerExpression",
    "ProductExpression",
    "StructureExpression",
    "SumExpression",
    "as_expression",
    "materialize_or_none",
    "scaled_sum",
    "SerializationError",
    "dumps",
    "from_dict",
    "loads",
    "to_dict",
    "clique_structure",
    "cycle_structure",
    "enumerate_structures",
    "grid_structure",
    "loop_structure",
    "path_structure",
    "random_connected_structure",
    "random_structure",
    "star_structure",
]
