"""The structure algebra of paper Section 2.2.

Following Lovász [16] the paper uses four operations on structures:

* ``A + B`` — disjoint union (domains renamed apart first);
* ``A × B`` — product on ``dom(A) × dom(B)`` with coordinatewise facts;
* ``t·A``  — ``t``-fold disjoint union, ``0·A`` the empty structure;
* ``A^t``  — ``t``-fold product, ``A^0`` the all-loops singleton.

These operations drive the whole Theorem 3 machinery via Lemma 4 (hom
counts are additive/multiplicative along them); property tests in
``tests/test_lemma4.py`` check the identities on random inputs.

Materializing large sums/products is exponential; see
:mod:`repro.structures.expression` for the lazy counterpart used by the
witness pipeline.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import StructureError
from repro.structures.schema import Schema
from repro.structures.structure import Fact, Structure


def disjoint_union(left: Structure, right: Structure) -> Structure:
    """``A + B``: union after renaming the domains apart.

    The constants of the result are pairs ``(0, a)`` / ``(1, b)`` so the
    operation is deterministic and the two copies stay identifiable.

    Raises :class:`StructureError` when either side has 0-ary facts:
    nullary facts have no constants to rename, so "disjoint" union is
    not defined for them (and Lemma 4(1) genuinely fails there).
    """
    _reject_nullary(left, "disjoint_union")
    _reject_nullary(right, "disjoint_union")
    return left.tagged(0).union(right.tagged(1))


def sum_structures(parts: Sequence[Structure]) -> Structure:
    """Generalized ``Σ``: disjoint union of all ``parts`` (empty sum = ∅)."""
    schema = Schema({})
    facts: List[Fact] = []
    domain: List = []
    for index, part in enumerate(parts):
        _reject_nullary(part, "sum_structures")
        tagged = part.tagged(index)
        schema = schema.union(tagged.schema)
        facts.extend(tagged.facts())
        domain.extend(tagged.domain())
    return Structure(facts, schema=schema, domain=domain)


def scalar_multiple(count: int, structure: Structure) -> Structure:
    """``t·A``: ``t`` disjoint copies; ``0·A`` is the empty structure."""
    if count < 0:
        raise StructureError(f"cannot take {count} copies of a structure")
    return sum_structures([structure] * count)


def product(left: Structure, right: Structure) -> Structure:
    """``A × B`` (paper Sec. 2.2): domain is the cartesian product and
    ``R((a1,b1),...,(ak,bk))`` holds iff ``R(a⃗) ∈ A`` and ``R(b⃗) ∈ B``.

    Nullary relations are fine here: ``R() ∈ A×B`` iff in both.
    """
    schema = left.schema.union(right.schema)
    facts: List[Fact] = []
    for name in schema.names():
        arity = schema.arity(name)
        left_tuples = left.tuples(name)
        right_tuples = right.tuples(name)
        if arity == 0:
            if left_tuples and right_tuples:
                facts.append(Fact(name, ()))
            continue
        for a_terms in left_tuples:
            for b_terms in right_tuples:
                combined = tuple(zip(a_terms, b_terms))
                facts.append(Fact(name, combined))
    domain = [(a, b) for a in left.domain() for b in right.domain()]
    return Structure(facts, schema=schema, domain=domain)


def product_structures(parts: Sequence[Structure], schema: Schema | None = None) -> Structure:
    """Generalized ``Π``.  The empty product is :func:`unit_structure`
    over ``schema`` (which is then required)."""
    if not parts:
        if schema is None:
            raise StructureError("empty product needs an explicit schema")
        return unit_structure(schema)
    result = parts[0]
    for part in parts[1:]:
        result = product(result, part)
    return result


def power(structure: Structure, exponent: int, schema: Schema | None = None) -> Structure:
    """``A^t``; ``A^0`` is the all-loops singleton over the schema.

    The paper defines ``A^0`` as a singleton ``{α}`` with loops of all
    types — exactly the multiplicative unit of ``×`` up to isomorphism.
    """
    if exponent < 0:
        raise StructureError(f"cannot raise a structure to power {exponent}")
    if exponent == 0:
        return unit_structure(schema if schema is not None else structure.schema)
    return product_structures([structure] * exponent)


def unit_structure(schema: Schema) -> Structure:
    """The all-loops singleton ``{α}`` (paper: ``A^0``).

    For each relation ``R`` of arity ``k`` it contains ``R(α, ..., α)``;
    0-ary relations contribute the empty-tuple fact.
    """
    alpha = "α"
    facts = [Fact(name, (alpha,) * schema.arity(name)) for name in schema.names()]
    return Structure(facts, schema=schema, domain=[alpha])


def sum_with_multiplicities(
    terms: Iterable[tuple[int, Structure]],
) -> Structure:
    """``Σ a_i · s_i`` — the workhorse for building structures from
    vector representations (Definition 47)."""
    parts: List[Structure] = []
    for multiplicity, structure in terms:
        if multiplicity < 0:
            raise StructureError("multiplicities must be non-negative")
        parts.extend([structure] * multiplicity)
    return sum_structures(parts)


def _reject_nullary(structure: Structure, operation: str) -> None:
    for name in structure.relations_used():
        if structure.schema.arity(name) == 0:
            raise StructureError(
                f"{operation} is undefined for structures with 0-ary facts "
                f"(found {name!r}); Lemma 4(1) does not hold for them"
            )
