"""Finite relational structures (databases).

The paper (Section 2.1) defines a structure over a schema Σ as a finite
set of *facts* ``R(t1, ..., tk)`` whose terms come from a fixed infinite
set of constants; the *active domain* is the set of constants appearing
in facts.

Our :class:`Structure` follows that definition with one deliberate
extension: a structure carries an explicit ``domain`` that is a superset
of the active domain.  This keeps *isolated* elements (constants in no
fact) first-class, which matters in two places:

* frozen bodies of CQs with a variable that occurs in no atom — the
  number of homomorphisms must pick up a factor ``|dom(D)|`` per such
  variable;
* the structure products of Section 2.2, whose domain is the full
  cartesian product of domains, not just the active part.

Structures are immutable and hashable, so they can live in sets and
serve as dictionary keys (the component-basis machinery relies on it).
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import StructureError
from repro.structures.schema import Schema

Constant = Hashable


class Fact:
    """A single fact ``R(t1, ..., tk)``.

    >>> f = Fact('R', ('a', 'b'))
    >>> f.relation, f.terms
    ('R', ('a', 'b'))
    """

    __slots__ = ("relation", "terms", "_hash")

    def __init__(self, relation: str, terms: Sequence[Constant] = ()):
        if not isinstance(relation, str) or not relation:
            raise StructureError(f"relation must be a non-empty string, got {relation!r}")
        self.relation = relation
        self.terms = tuple(terms)
        # Facts live in frozensets that are themselves hashed on every
        # cache probe; caching here keeps those probes cheap — and
        # rejects unhashable terms (lists, dicts, sets) at the
        # construction site instead of at some far-away first hash.
        try:
            self._hash = hash((relation, self.terms))
        except TypeError as exc:
            bad = []
            for term in self.terms:
                try:
                    hash(term)
                except TypeError:
                    bad.append(repr(term))
            raise StructureError(
                f"fact terms must be hashable constants; "
                f"{relation!r} got {', '.join(bad)}") from exc

    @property
    def arity(self) -> int:
        return len(self.terms)

    def rename(self, mapping: Mapping[Constant, Constant]) -> "Fact":
        """Apply a constant renaming, leaving unmapped constants alone."""
        return Fact(self.relation, tuple(mapping.get(t, t) for t in self.terms))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return self.relation == other.relation and self.terms == other.terms

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Fact({self.relation!r}, {self.terms!r})"

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(map(str, self.terms))})"


class Structure:
    """An immutable finite relational structure.

    Parameters
    ----------
    facts:
        Iterable of :class:`Fact` (or ``(relation, terms)`` pairs).
    schema:
        Optional :class:`Schema`.  When omitted, the schema is inferred
        from the facts.  When given, every fact is validated against it.
    domain:
        Optional iterable of constants; must contain the active domain.
        Defaults to exactly the active domain.

    >>> D = Structure([('R', ('a', 'b')), ('R', ('b', 'c'))])
    >>> sorted(D.domain())
    ['a', 'b', 'c']
    >>> D.count_facts('R')
    2
    """

    __slots__ = ("_facts", "_domain", "_schema", "_by_relation", "_hash")

    def __init__(
        self,
        facts: Iterable[Fact | Tuple[str, Sequence[Constant]]] = (),
        schema: Optional[Schema] = None,
        domain: Optional[Iterable[Constant]] = None,
    ):
        normalized = []
        for fact in facts:
            if isinstance(fact, Fact):
                normalized.append(fact)
            else:
                relation, terms = fact
                normalized.append(Fact(relation, terms))
        fact_set: FrozenSet[Fact] = frozenset(normalized)

        inferred_arities: Dict[str, int] = {}
        for fact in fact_set:
            seen = inferred_arities.get(fact.relation)
            if seen is not None and seen != fact.arity:
                raise StructureError(
                    f"relation {fact.relation!r} used with arities {seen} and {fact.arity}"
                )
            inferred_arities[fact.relation] = fact.arity

        if schema is None:
            schema = Schema(inferred_arities)
        else:
            for name, arity in inferred_arities.items():
                if name not in schema:
                    raise StructureError(f"fact uses relation {name!r} not in schema")
                if schema.arity(name) != arity:
                    raise StructureError(
                        f"fact arity {arity} for {name!r} contradicts schema arity "
                        f"{schema.arity(name)}"
                    )

        active = {t for fact in fact_set for t in fact.terms}
        if domain is None:
            dom: FrozenSet[Constant] = frozenset(active)
        else:
            dom = frozenset(domain)
            missing = active - dom
            if missing:
                raise StructureError(
                    f"domain must contain the active domain; missing {sorted(map(repr, missing))}"
                )

        by_relation: Dict[str, FrozenSet[Tuple[Constant, ...]]] = {}
        grouped: Dict[str, set] = {}
        for fact in fact_set:
            grouped.setdefault(fact.relation, set()).add(fact.terms)
        for name, tuples in grouped.items():
            by_relation[name] = frozenset(tuples)

        self._facts = fact_set
        self._domain = dom
        self._schema = schema
        self._by_relation = by_relation
        self._hash = hash((fact_set, dom))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    def facts(self) -> FrozenSet[Fact]:
        return self._facts

    def domain(self) -> FrozenSet[Constant]:
        """The full domain (active domain plus declared isolated elements)."""
        return self._domain

    def active_domain(self) -> FrozenSet[Constant]:
        """Constants appearing in at least one fact (paper's ``dom``)."""
        return frozenset(t for fact in self._facts for t in fact.terms)

    def isolated_elements(self) -> FrozenSet[Constant]:
        """Domain elements in no fact."""
        return self._domain - self.active_domain()

    def tuples(self, relation: str) -> FrozenSet[Tuple[Constant, ...]]:
        """All tuples of the given relation (empty set when none)."""
        return self._by_relation.get(relation, frozenset())

    def has_fact(self, relation: str, terms: Sequence[Constant] = ()) -> bool:
        return tuple(terms) in self._by_relation.get(relation, frozenset())

    def count_facts(self, relation: Optional[str] = None) -> int:
        if relation is None:
            return len(self._facts)
        return len(self._by_relation.get(relation, frozenset()))

    def relations_used(self) -> FrozenSet[str]:
        return frozenset(self._by_relation)

    def __len__(self) -> int:
        """Number of facts (paper: a structure *is* a set of facts)."""
        return len(self._facts)

    def __bool__(self) -> bool:
        """A structure is falsy only when it has no facts *and* no domain."""
        return bool(self._facts) or bool(self._domain)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def rename(self, mapping: Mapping[Constant, Constant]) -> "Structure":
        """Rename constants.  The mapping must be injective on the domain."""
        image = [mapping.get(c, c) for c in self._domain]
        if len(set(image)) != len(image):
            raise StructureError("renaming must be injective on the domain")
        return Structure(
            (fact.rename(mapping) for fact in self._facts),
            schema=self._schema,
            domain=image,
        )

    def tagged(self, tag: Hashable) -> "Structure":
        """Rename every constant ``c`` to ``(tag, c)`` — used to make
        domains disjoint before unions."""
        return self.rename({c: (tag, c) for c in self._domain})

    def with_schema(self, schema: Schema) -> "Structure":
        """Re-type the structure under a (compatible, usually larger) schema."""
        return Structure(self._facts, schema=schema, domain=self._domain)

    def union(self, other: "Structure") -> "Structure":
        """Plain union of facts and domains (no renaming).

        For the paper's disjoint union ``A + B`` use
        :func:`repro.structures.operations.disjoint_union`, which
        renames first.
        """
        return Structure(
            self._facts | other._facts,
            schema=self._schema.union(other._schema),
            domain=self._domain | other._domain,
        )

    def restrict_domain(self, keep: AbstractSet[Constant]) -> "Structure":
        """Induced substructure on ``keep``."""
        kept_facts = [f for f in self._facts
                      if all(t in keep for t in f.terms)]
        return Structure(kept_facts, schema=self._schema,
                         domain=self._domain & keep)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return self._facts == other._facts and self._domain == other._domain

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        shown = ", ".join(sorted(str(f) for f in self._facts))
        iso = self.isolated_elements()
        extra = f", isolated={sorted(map(str, iso))}" if iso else ""
        return f"Structure({{{shown}}}{extra})"


EMPTY_STRUCTURE = Structure()


def singleton(constant: Constant = 0) -> Structure:
    """A one-element structure with no facts (an isolated vertex)."""
    return Structure((), domain=[constant])
