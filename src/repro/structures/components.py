"""Connected components of structures.

Two facts are connected when they share a constant; a component is a
maximal set of facts closed under that relation, together with the
constants it touches.  Isolated domain elements (constants in no fact)
each form a singleton component, and 0-ary facts each form their own
(domain-free) component — both conventions make Lemma 4(5)
``|hom(A+B, C)| = |hom(A,C)|·|hom(B,C)|`` hold verbatim for the
decompositions we produce.

The component decomposition is the backbone of the paper's Section 4:
the basis ``W`` of Definition 27 is the set of isomorphism classes of
connected components of the involved queries.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Hashable, List, Tuple

from repro.structures.structure import Fact, Structure


class _UnionFind:
    """Plain union-find with path compression (used for fact grouping)."""

    def __init__(self):
        self._parent: Dict[Hashable, Hashable] = {}

    def find(self, item: Hashable) -> Hashable:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def connected_components(structure: Structure) -> List[Structure]:
    """Split a structure into its connected components.

    Returns a list of structures (order deterministic: sorted by a
    printable key) whose disjoint union is isomorphic to the input.
    The decomposition is memoized per structure (structures are
    immutable); callers get a fresh list each time.

    >>> s = Structure([('R', ('a', 'b')), ('R', ('c', 'd'))])
    >>> len(connected_components(s))
    2
    """
    return list(_components_cached(structure))


@lru_cache(maxsize=4096)
def _components_cached(structure: Structure) -> Tuple[Structure, ...]:
    uf = _UnionFind()
    for constant in structure.domain():
        uf.find(("c", constant))
    for fact in structure.facts():
        if not fact.terms:
            continue
        anchor = ("c", fact.terms[0])
        for term in fact.terms[1:]:
            uf.union(anchor, ("c", term))

    groups: Dict[Hashable, List] = {}
    for constant in structure.domain():
        root = uf.find(("c", constant))
        groups.setdefault(root, []).append(constant)

    facts_by_root: Dict[Hashable, List[Fact]] = {root: [] for root in groups}
    nullary_facts: List[Fact] = []
    for fact in structure.facts():
        if not fact.terms:
            nullary_facts.append(fact)
            continue
        root = uf.find(("c", fact.terms[0]))
        facts_by_root[root].append(fact)

    components: List[Structure] = []
    for root, constants in groups.items():
        components.append(
            Structure(facts_by_root[root], schema=structure.schema, domain=constants)
        )
    for fact in nullary_facts:
        components.append(Structure([fact], schema=structure.schema))

    components.sort(key=_component_sort_key)
    return tuple(components)


def is_connected(structure: Structure) -> bool:
    """True when the structure has exactly one component.

    The empty structure is *not* connected (it has zero components); a
    single isolated vertex is.
    """
    return len(connected_components(structure)) == 1


def component_count(structure: Structure) -> int:
    return len(connected_components(structure))


def _component_sort_key(component: Structure):
    facts = sorted(str(f) for f in component.facts())
    return (len(component.domain()), len(facts), facts,
            sorted(map(str, component.domain())))
