"""JSON (de)serialization for structures and queries.

A determinacy checker that other tools can adopt needs a wire format:
witness pairs must be exportable, view catalogs importable.  The format
is deliberately dumb JSON:

Structure::

    {"kind": "structure",
     "schema": {"R": 2, "H": 0},
     "facts": [["R", ["a", "b"]], ["H", []]],
     "isolated": ["c"]}

Constants are serialized through :func:`encode_constant`, which keeps
strings/ints verbatim and renders tuples (products, tagged copies,
frozen variables) as nested lists with a type tag — lossless for every
constant shape the library itself produces.

Queries::

    {"kind": "cq", "free": ["x"], "atoms": [["R", ["x", "y"]]]}
    {"kind": "ucq", "disjuncts": [...]}
    {"kind": "path", "letters": ["A", "B"]}
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import ReproError
from repro.queries.cq import Atom, ConjunctiveQuery
from repro.queries.path import PathQuery
from repro.queries.ucq import UnionOfBooleanCQs
from repro.structures.schema import Schema
from repro.structures.structure import Fact, Structure


class SerializationError(ReproError):
    """Malformed payloads and unserializable constants."""


# ----------------------------------------------------------------------
# Constants
# ----------------------------------------------------------------------
def encode_constant(constant) -> Any:
    """Encode a constant losslessly into JSON-safe data."""
    if isinstance(constant, (str, int, bool)) or constant is None:
        return constant
    if isinstance(constant, tuple):
        return {"t": [encode_constant(part) for part in constant]}
    raise SerializationError(
        f"constant {constant!r} of type {type(constant).__name__} is not "
        f"JSON-serializable; rename the structure's constants first"
    )


def decode_constant(payload) -> Any:
    """Inverse of :func:`encode_constant`."""
    if isinstance(payload, dict):
        if set(payload) != {"t"}:
            raise SerializationError(f"bad constant payload {payload!r}")
        return tuple(decode_constant(part) for part in payload["t"])
    if isinstance(payload, list):
        raise SerializationError(
            f"bare lists are not valid constants: {payload!r}"
        )
    return payload


# ----------------------------------------------------------------------
# Structures
# ----------------------------------------------------------------------
def structure_to_dict(structure: Structure) -> Dict[str, Any]:
    facts: List[List[Any]] = []
    for fact in sorted(structure.facts(), key=str):
        facts.append([fact.relation, [encode_constant(t) for t in fact.terms]])
    isolated = [encode_constant(c)
                for c in sorted(structure.isolated_elements(), key=repr)]
    return {
        "kind": "structure",
        "schema": {s.name: s.arity for s in structure.schema},
        "facts": facts,
        "isolated": isolated,
    }


def structure_from_dict(payload: Dict[str, Any]) -> Structure:
    if payload.get("kind") != "structure":
        raise SerializationError(f"expected kind 'structure', got {payload.get('kind')!r}")
    try:
        schema = Schema(dict(payload.get("schema", {})))
        facts = [
            Fact(relation, tuple(decode_constant(t) for t in terms))
            for relation, terms in payload.get("facts", [])
        ]
        isolated = [decode_constant(c) for c in payload.get("isolated", [])]
    except (TypeError, ValueError, KeyError) as exc:
        raise SerializationError(f"malformed structure payload: {exc}") from exc
    active = {t for fact in facts for t in fact.terms}
    return Structure(facts, schema=schema, domain=list(active) + isolated)


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def cq_to_dict(query: ConjunctiveQuery) -> Dict[str, Any]:
    return {
        "kind": "cq",
        "free": list(query.free),
        "atoms": [
            [atom.relation, list(atom.variables)]
            for atom in sorted(query.atoms, key=str)
        ],
        "extra_variables": sorted(query.extra_variables),
    }


def cq_from_dict(payload: Dict[str, Any]) -> ConjunctiveQuery:
    if payload.get("kind") != "cq":
        raise SerializationError(f"expected kind 'cq', got {payload.get('kind')!r}")
    try:
        atoms = [Atom(relation, tuple(variables))
                 for relation, variables in payload.get("atoms", [])]
        return ConjunctiveQuery(
            atoms,
            free=tuple(payload.get("free", [])),
            extra_variables=payload.get("extra_variables", []),
        )
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"malformed cq payload: {exc}") from exc


def ucq_to_dict(query: UnionOfBooleanCQs) -> Dict[str, Any]:
    return {
        "kind": "ucq",
        "disjuncts": [cq_to_dict(d) for d in query.disjuncts],
    }


def ucq_from_dict(payload: Dict[str, Any]) -> UnionOfBooleanCQs:
    if payload.get("kind") != "ucq":
        raise SerializationError(f"expected kind 'ucq', got {payload.get('kind')!r}")
    return UnionOfBooleanCQs(
        [cq_from_dict(d) for d in payload.get("disjuncts", [])]
    )


def path_to_dict(query: PathQuery) -> Dict[str, Any]:
    return {"kind": "path", "letters": list(query.letters)}


def path_from_dict(payload: Dict[str, Any]) -> PathQuery:
    if payload.get("kind") != "path":
        raise SerializationError(f"expected kind 'path', got {payload.get('kind')!r}")
    return PathQuery(tuple(payload.get("letters", [])))


# ----------------------------------------------------------------------
# Uniform front door
# ----------------------------------------------------------------------
_ENCODERS = {
    Structure: structure_to_dict,
    ConjunctiveQuery: cq_to_dict,
    UnionOfBooleanCQs: ucq_to_dict,
    PathQuery: path_to_dict,
}

_DECODERS = {
    "structure": structure_from_dict,
    "cq": cq_from_dict,
    "ucq": ucq_from_dict,
    "path": path_from_dict,
}


def to_dict(value) -> Dict[str, Any]:
    """Serialize any supported object to a plain dict."""
    encoder = _ENCODERS.get(type(value))
    if encoder is None:
        raise SerializationError(f"cannot serialize {type(value).__name__}")
    return encoder(value)


def from_dict(payload: Dict[str, Any]):
    """Deserialize a payload produced by :func:`to_dict`."""
    if not isinstance(payload, dict):
        raise SerializationError(f"expected a dict, got {type(payload).__name__}")
    decoder = _DECODERS.get(payload.get("kind"))
    if decoder is None:
        raise SerializationError(f"unknown kind {payload.get('kind')!r}")
    return decoder(payload)


def dumps(value, **kwargs) -> str:
    """JSON text for any supported object."""
    return json.dumps(to_dict(value), sort_keys=True, **kwargs)


def loads(text: str):
    """Inverse of :func:`dumps`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return from_dict(payload)
