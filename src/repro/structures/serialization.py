"""JSON (de)serialization for structures and queries.

A determinacy checker that other tools can adopt needs a wire format:
witness pairs must be exportable, view catalogs importable.  The format
is deliberately dumb JSON.

Structure (interned wire format, v2)::

    {"kind": "structure",
     "schema": {"R": 2, "H": 0},
     "constants": ["a", "b", "c"],
     "facts": [["R", [0, 1]], ["H", []]],
     "isolated": [2]}

Each constant is encoded **once**, in the deterministic intern order of
:mod:`repro.structures.interned`; fact terms and the ``isolated`` list
are indices into ``constants``.  Tagged copies and product structures
repeat large tuple constants across many facts, so shipping the intern
table once shrinks those payloads substantially.  Constants are encoded
through :func:`encode_constant`, which keeps strings/ints verbatim and
renders tuples (products, tagged copies, frozen variables) as nested
lists with a type tag — lossless for every constant shape the library
itself produces.

The pre-interning format (terms as inline encoded constants, no
``constants`` key) is still **decoded** for compatibility with
payloads written by older versions; it is no longer emitted.

Queries::

    {"kind": "cq", "free": ["x"], "atoms": [["R", ["x", "y"]]]}
    {"kind": "ucq", "disjuncts": [...]}
    {"kind": "path", "letters": ["A", "B"]}
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import ReproError
from repro.queries.cq import Atom, ConjunctiveQuery
from repro.queries.path import PathQuery
from repro.queries.ucq import UnionOfBooleanCQs
from repro.structures.schema import Schema
from repro.structures.structure import Fact, Structure


class SerializationError(ReproError):
    """Malformed payloads and unserializable constants."""


# ----------------------------------------------------------------------
# Constants
# ----------------------------------------------------------------------
def encode_constant(constant) -> Any:
    """Encode a constant losslessly into JSON-safe data."""
    if isinstance(constant, (str, int, bool)) or constant is None:
        return constant
    if isinstance(constant, tuple):
        return {"t": [encode_constant(part) for part in constant]}
    raise SerializationError(
        f"constant {constant!r} of type {type(constant).__name__} is not "
        f"JSON-serializable; rename the structure's constants first"
    )


def decode_constant(payload) -> Any:
    """Inverse of :func:`encode_constant`."""
    if isinstance(payload, dict):
        if set(payload) != {"t"}:
            raise SerializationError(f"bad constant payload {payload!r}")
        return tuple(decode_constant(part) for part in payload["t"])
    if isinstance(payload, list):
        raise SerializationError(
            f"bare lists are not valid constants: {payload!r}"
        )
    return payload


# ----------------------------------------------------------------------
# Structures
# ----------------------------------------------------------------------
def structure_to_dict(structure: Structure) -> Dict[str, Any]:
    """Interned wire payload: the constant table once, facts as indices."""
    from repro.structures.interned import interned

    inter = interned(structure)
    constants = [encode_constant(c) for c in inter.table.constants()]
    facts: List[List[Any]] = [[relation, list(row)]
                              for relation, row in inter.iter_facts()]
    return {
        "kind": "structure",
        "schema": {s.name: s.arity for s in structure.schema},
        "constants": constants,
        "facts": facts,
        "isolated": list(inter.isolated_indices()),
    }


def structure_from_dict(payload: Dict[str, Any]) -> Structure:
    if payload.get("kind") != "structure":
        raise SerializationError(f"expected kind 'structure', got {payload.get('kind')!r}")
    if "constants" in payload:
        return _structure_from_interned_dict(payload)
    # Legacy (pre-v2) payload: terms are inline encoded constants.
    try:
        schema = Schema(dict(payload.get("schema", {})))
        facts = [
            Fact(relation, tuple(decode_constant(t) for t in terms))
            for relation, terms in payload.get("facts", [])
        ]
        isolated = [decode_constant(c) for c in payload.get("isolated", [])]
    except (TypeError, ValueError, KeyError) as exc:
        raise SerializationError(f"malformed structure payload: {exc}") from exc
    active = {t for fact in facts for t in fact.terms}
    return Structure(facts, schema=schema, domain=list(active) + isolated)


def _structure_from_interned_dict(payload: Dict[str, Any]) -> Structure:
    def at(index: Any):
        if not isinstance(index, int) or isinstance(index, bool) \
                or not 0 <= index < len(constants):
            raise SerializationError(
                f"term {index!r} is not a valid index into the "
                f"{len(constants)}-entry constant table")
        return constants[index]

    try:
        schema = Schema(dict(payload.get("schema", {})))
        constants = [decode_constant(c) for c in payload["constants"]]
        facts = [
            Fact(relation, tuple(at(i) for i in terms))
            for relation, terms in payload.get("facts", [])
        ]
        isolated = [at(i) for i in payload.get("isolated", [])]
    except (TypeError, ValueError, KeyError) as exc:
        raise SerializationError(f"malformed structure payload: {exc}") from exc
    active = {t for fact in facts for t in fact.terms}
    return Structure(facts, schema=schema, domain=list(active) + isolated)


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def cq_to_dict(query: ConjunctiveQuery) -> Dict[str, Any]:
    return {
        "kind": "cq",
        "free": list(query.free),
        "atoms": [
            [atom.relation, list(atom.variables)]
            for atom in sorted(query.atoms, key=str)
        ],
        "extra_variables": sorted(query.extra_variables),
    }


def cq_from_dict(payload: Dict[str, Any]) -> ConjunctiveQuery:
    if payload.get("kind") != "cq":
        raise SerializationError(f"expected kind 'cq', got {payload.get('kind')!r}")
    try:
        atoms = [Atom(relation, tuple(variables))
                 for relation, variables in payload.get("atoms", [])]
        return ConjunctiveQuery(
            atoms,
            free=tuple(payload.get("free", [])),
            extra_variables=payload.get("extra_variables", []),
        )
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"malformed cq payload: {exc}") from exc


def ucq_to_dict(query: UnionOfBooleanCQs) -> Dict[str, Any]:
    return {
        "kind": "ucq",
        "disjuncts": [cq_to_dict(d) for d in query.disjuncts],
    }


def ucq_from_dict(payload: Dict[str, Any]) -> UnionOfBooleanCQs:
    if payload.get("kind") != "ucq":
        raise SerializationError(f"expected kind 'ucq', got {payload.get('kind')!r}")
    return UnionOfBooleanCQs(
        [cq_from_dict(d) for d in payload.get("disjuncts", [])]
    )


def path_to_dict(query: PathQuery) -> Dict[str, Any]:
    return {"kind": "path", "letters": list(query.letters)}


def path_from_dict(payload: Dict[str, Any]) -> PathQuery:
    if payload.get("kind") != "path":
        raise SerializationError(f"expected kind 'path', got {payload.get('kind')!r}")
    return PathQuery(tuple(payload.get("letters", [])))


# ----------------------------------------------------------------------
# Uniform front door
# ----------------------------------------------------------------------
_ENCODERS = {
    Structure: structure_to_dict,
    ConjunctiveQuery: cq_to_dict,
    UnionOfBooleanCQs: ucq_to_dict,
    PathQuery: path_to_dict,
}

_DECODERS = {
    "structure": structure_from_dict,
    "cq": cq_from_dict,
    "ucq": ucq_from_dict,
    "path": path_from_dict,
}


def to_dict(value) -> Dict[str, Any]:
    """Serialize any supported object to a plain dict."""
    encoder = _ENCODERS.get(type(value))
    if encoder is None:
        raise SerializationError(f"cannot serialize {type(value).__name__}")
    return encoder(value)


def from_dict(payload: Dict[str, Any]):
    """Deserialize a payload produced by :func:`to_dict`."""
    if not isinstance(payload, dict):
        raise SerializationError(f"expected a dict, got {type(payload).__name__}")
    decoder = _DECODERS.get(payload.get("kind"))
    if decoder is None:
        raise SerializationError(f"unknown kind {payload.get('kind')!r}")
    return decoder(payload)


def dumps(value, **kwargs) -> str:
    """JSON text for any supported object."""
    return json.dumps(to_dict(value), sort_keys=True, **kwargs)


def loads(text: str):
    """Inverse of :func:`dumps`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return from_dict(payload)
