"""Canonical labeling of structures — stable byte keys per iso class.

The engine memo, the persistent SQLite store and the dedup loops all
need to answer "which isomorphism class is this component in?".  The
pre-interning answer bucketed structures by
:func:`~repro.structures.isomorphism.invariant_key` and ran *pairwise*
``find_isomorphism`` inside each bucket — per-probe cost grows with
bucket population, and a bucket's chosen representative differs between
processes, so cross-process sharing needed an iso-scan on every store
lookup.  This module computes a **canonical form** instead:

:func:`canonical_key` returns a byte string such that two structures
get the same key *iff* they are isomorphic.  The key is a pure
function of the isomorphism class — stable across constant renames,
component orderings, processes and service restarts — so it can serve
directly as a memo key, an SQLite primary key, or (later) a shard key.

Algorithm (classic individualization–refinement over the interned
form of :mod:`repro.structures.interned`):

1. **1-WL refinement** — iteratively refine a coloring of the active
   vertices by the sorted multiset of ``(relation, position,
   colors-of-row)`` incidence signatures; color ids are ranks of the
   sorted signatures, hence themselves isomorphism-invariant.
2. **Ordered-partition backtracking** — while some color class holds
   more than one vertex, individualize each member of the first such
   class in turn, re-refine, and recurse; every discrete leaf coloring
   is a candidate labeling, and the lexicographically smallest relabeled
   fact table is the canonical certificate.

Isolated elements are interchangeable, so they never enter the search;
the certificate records their count (the ``|dom|`` factor of frozen
bodies survives canonicalization).  Worst-case the search visits
``|Aut|``-many equivalent leaves (e.g. ``k!`` for a ``k``-clique) —
fine for the small connected components the library canonicalizes, and
property-tested against ``find_isomorphism`` as ground truth.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from repro.faults.budget import active_budget
from repro.structures.interned import InternedStructure, interned
from repro.structures.structure import Structure

# incidences[v] = ((relation, position, row), ...) for every occurrence
# of vertex v in a fact row.
_Incidences = Tuple[Tuple[Tuple[str, int, Tuple[int, ...]], ...], ...]


def _incidences(inter: InternedStructure, n: int) -> _Incidences:
    collected: List[List[Tuple[str, int, Tuple[int, ...]]]] = [
        [] for _ in range(n)
    ]
    for relation, row in inter.iter_facts():
        for position, term in enumerate(row):
            collected[term].append((relation, position, row))
    return tuple(tuple(entries) for entries in collected)


def _refine(n: int, incidences: _Incidences,
            colors: List[int]) -> List[int]:
    """1-WL refinement to a stable coloring; ids are signature ranks."""
    for _ in range(max(1, n)):
        signatures = []
        for vertex in range(n):
            local = sorted(
                (relation, position, tuple(colors[t] for t in row))
                for relation, position, row in incidences[vertex]
            )
            signatures.append((colors[vertex], tuple(local)))
        palette = {signature: rank for rank, signature
                   in enumerate(sorted(set(signatures)))}
        refined = [palette[signature] for signature in signatures]
        if refined == colors:
            break
        colors = refined
    return colors


def wl_colors(inter: InternedStructure) -> Tuple[int, ...]:
    """Stable 1-WL coloring over the *full* interned domain.

    Isolated elements participate (with empty signatures), matching
    the historical :func:`~repro.structures.isomorphism.refine_colors`
    contract; color ids are isomorphism-invariant ranks.  Cached on
    the interned object (iso tests and invariant keys re-probe it).
    """
    cached = inter.wl_cache
    if cached is not None:
        return cached
    n = inter.n
    colors: Tuple[int, ...] = () if n == 0 else tuple(
        _refine(n, _incidences(inter, n), [0] * n))
    inter.wl_cache = colors
    return colors


def _certificate(inter: InternedStructure,
                 position_of: List[int]) -> Tuple:
    """The relabeled fact table under a discrete labeling."""
    body = []
    for relation in sorted(inter.relations):
        rows = inter.relations[relation]
        mapped = tuple(sorted(
            tuple(position_of[t] for t in row) for row in rows))
        body.append((relation, inter.arities[relation], mapped))
    return (inter.n, inter.n - inter.n_active, tuple(body))


def _canonical_certificate(inter: InternedStructure) -> Tuple:
    n = inter.n_active
    if n == 0:
        return _certificate(inter, [])
    incidences = _incidences(inter, n)
    colors = _refine(n, incidences, [0] * n)
    best: List[Tuple] = []
    # Highly symmetric sources visit |Aut|-many leaves, each paying a
    # full refinement pass — for a clique that is seconds of work
    # before any counting kernel runs, so a deadline must reach in
    # here too.  (A trip aborts the lru_cache fill; nothing partial is
    # memoized.)
    budget = active_budget()
    nodes = 0

    def search(colors: List[int]) -> None:
        nonlocal nodes
        nodes += 1
        if not nodes & 63 and budget is not None:
            budget.charge(64)
        cells: Dict[int, List[int]] = {}
        for vertex, color in enumerate(colors):
            cells.setdefault(color, []).append(vertex)
        target = None
        for color in sorted(cells):
            if len(cells[color]) > 1:
                target = cells[color]
                break
        if target is None:
            candidate = _certificate(inter, colors)
            if not best or candidate < best[0]:
                best[:] = [candidate]
            return
        for vertex in target:
            individualized = list(colors)
            individualized[vertex] = n  # outranks every existing color
            search(_refine(n, incidences, individualized))

    search(colors)
    return best[0]


@lru_cache(maxsize=8192)
def canonical_key(structure: Structure) -> bytes:
    """The canonical byte key of ``structure``'s isomorphism class.

    Equal keys ⟺ isomorphic structures (schema is not part of the
    key, mirroring structure equality and ``find_isomorphism``, which
    compare facts and domains only).  The encoding is ``repr`` of the
    canonical certificate — deterministic across processes, hash seeds
    and Python minor versions, and directly usable as an SQLite key.

    Disconnected structures are canonicalized **per connected
    component** and combined as the sorted multiset of component
    certificates (two structures are isomorphic iff their component
    iso-class multisets agree).  Besides matching how the engine memo
    consumes keys, this keeps the labeling search from multiplying its
    branches across components — a union of color-uniform cycles costs
    the *sum* of its components' searches, not the product.
    """
    from repro.structures.components import connected_components

    components = connected_components(structure)
    if len(components) <= 1:
        certificate = _canonical_certificate(interned(structure))
    else:
        inter = interned(structure)
        certificate = (
            inter.n, inter.n - inter.n_active,
            ("components", tuple(sorted(
                _canonical_certificate(interned(component))
                for component in components))),
        )
    return repr(certificate).encode("utf-8")


def canonical_stats() -> Dict[str, int]:
    """Cache counters of the canonical-key layer (for ``stats()``).

    ``keys`` is the number of canonical labelings computed (cache
    misses); ``hits`` the number served from the memo.
    """
    info = canonical_key.cache_info()
    return {
        "keys": info.misses,
        "hits": info.hits,
        "cached": info.currsize,
    }
