"""Diophantine instances — the undecidability source of Theorem 2.

Appendix A reduces (the complement of) **Hilbert's Tenth Problem** to
boolean-UCQ bag-determinacy.  An instance is a finite set of monomials
with integer coefficients (Problem 58); it has a solution when some
assignment of naturals to the unknowns makes the polynomial vanish.

Hilbert's Tenth is undecidable, so any solver here is necessarily
bounded: :func:`solve_bounded` brute-forces assignments up to a bound —
exactly the substitution DESIGN.md §2 documents (the reduction itself
is exact; only the oracle is bounded).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.errors import QueryError


@dataclass(frozen=True)
class Monomial:
    """``c · Π x_i^{e_i}`` with integer ``c`` and natural exponents.

    >>> m = Monomial(-2, {'x': 1, 'y': 2})
    >>> m.evaluate({'x': 3, 'y': 1})
    -6
    """

    coefficient: int
    exponents: Tuple[Tuple[str, int], ...]

    def __init__(self, coefficient: int, exponents: Mapping[str, int] | Sequence = ()):
        if coefficient == 0:
            raise QueryError("monomials must have a non-zero coefficient")
        if isinstance(exponents, Mapping):
            items = exponents.items()
        else:
            items = exponents
        cleaned = []
        for variable, degree in sorted(items):
            if not isinstance(degree, int) or degree < 0:
                raise QueryError(f"degree of {variable!r} must be a natural, got {degree!r}")
            if degree > 0:
                cleaned.append((variable, degree))
        object.__setattr__(self, "coefficient", coefficient)
        object.__setattr__(self, "exponents", tuple(cleaned))

    def degree(self, variable: str) -> int:
        """``m(x)`` in the paper's notation (0 when absent)."""
        for name, d in self.exponents:
            if name == variable:
                return d
        return 0

    def variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.exponents)

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        value = self.coefficient
        for variable, degree in self.exponents:
            value *= assignment.get(variable, 0) ** degree
        return value

    def monomial_value(self, assignment: Mapping[str, int]) -> int:
        """The value *without* the coefficient: ``Π x_i^{e_i}``."""
        value = 1
        for variable, degree in self.exponents:
            value *= assignment.get(variable, 0) ** degree
        return value

    def __str__(self) -> str:
        parts = [str(self.coefficient)]
        for variable, degree in self.exponents:
            parts.append(variable if degree == 1 else f"{variable}^{degree}")
        return "·".join(parts)


@dataclass(frozen=True)
class DiophantineInstance:
    """A polynomial equation ``Σ monomials = 0`` over naturals."""

    monomials: Tuple[Monomial, ...]

    def __init__(self, monomials: Sequence[Monomial]):
        if not monomials:
            raise QueryError("an instance needs at least one monomial")
        object.__setattr__(self, "monomials", tuple(monomials))

    def variables(self) -> Tuple[str, ...]:
        names = sorted({v for m in self.monomials for v in m.variables()})
        return tuple(names)

    def positive_monomials(self) -> Tuple[Monomial, ...]:
        """``P`` in Appendix A."""
        return tuple(m for m in self.monomials if m.coefficient > 0)

    def negative_monomials(self) -> Tuple[Monomial, ...]:
        """``N`` in Appendix A."""
        return tuple(m for m in self.monomials if m.coefficient < 0)

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        return sum(m.evaluate(assignment) for m in self.monomials)

    def is_solution(self, assignment: Mapping[str, int]) -> bool:
        for variable, value in assignment.items():
            if not isinstance(value, int) or value < 0:
                raise QueryError(f"{variable!r} must be a natural, got {value!r}")
        return self.evaluate(assignment) == 0

    def __str__(self) -> str:
        return " + ".join(str(m) for m in self.monomials) + " = 0"


def solve_bounded(
    instance: DiophantineInstance,
    max_value: int,
    max_assignments: int = 2_000_000,
) -> Optional[Dict[str, int]]:
    """Brute-force a natural solution with every unknown ≤ ``max_value``.

    Returns the first solution in lexicographic order, or ``None``.

    >>> pell = DiophantineInstance([Monomial(1, {'x': 2}),
    ...                             Monomial(-2, {'y': 2})])
    >>> solve_bounded(pell, 5)
    {'x': 0, 'y': 0}
    """
    variables = instance.variables()
    checked = 0
    for values in itertools.product(range(max_value + 1), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if instance.is_solution(assignment):
            return assignment
        checked += 1
        if checked >= max_assignments:
            return None
    return None


def iter_solutions(
    instance: DiophantineInstance, max_value: int
) -> Iterator[Dict[str, int]]:
    """All bounded solutions (exhaustive below the bound)."""
    variables = instance.variables()
    for values in itertools.product(range(max_value + 1), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if instance.is_solution(assignment):
            yield assignment


# A small gallery used by examples, tests and benchmarks.
def linear_instance() -> DiophantineInstance:
    """``x - y = 0`` — solvable (any x = y)."""
    return DiophantineInstance([Monomial(1, {"x": 1}), Monomial(-1, {"y": 1})])


def pythagoras_instance() -> DiophantineInstance:
    """``x² + y² - z² = 0`` — solvable (3,4,5 among others)."""
    return DiophantineInstance([
        Monomial(1, {"x": 2}),
        Monomial(1, {"y": 2}),
        Monomial(-1, {"z": 2}),
    ])


def unsolvable_instance() -> DiophantineInstance:
    """``x² + 1 = 0`` (as ``x² + 1 - 0·…``): no natural solution.

    Encoded as ``x·x + 1 = 0`` via a constant monomial.
    """
    return DiophantineInstance([Monomial(1, {"x": 2}), Monomial(1, {})])


def fermat_like_instance() -> DiophantineInstance:
    """``x³ + y³ - z³ = 0`` — only trivial-ish solutions with zeros."""
    return DiophantineInstance([
        Monomial(1, {"x": 3}),
        Monomial(1, {"y": 3}),
        Monomial(-1, {"z": 3}),
    ])
