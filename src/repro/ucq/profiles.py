"""Structure profiles for the Appendix A reduction.

Every structure over the reduction schema ``{H/0, C/0, X_i/1}`` is,
from the queries' point of view, fully described by the numbers
``(D_H, D_C, D_{X_1}, ..., D_{X_n})`` with ``D_H, D_C ∈ {0, 1}`` — its
*profile*.  Working with profiles turns the Lemma 59–61 computations
into integer arithmetic and makes the Lemma 63 search exhaustive over
a finite box.

``Profile.to_structure()`` materializes a canonical structure, and the
tests confirm (Lemma 59/60/61) that profile arithmetic agrees with
honest homomorphism counting on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.errors import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfBooleanCQs
from repro.structures.structure import Fact, Structure
from repro.ucq.reduction import C_RELATION, H_RELATION, HilbertReduction, variable_relation


@dataclass(frozen=True)
class Profile:
    """``(D_H, D_C, {x_i: D_{X_i}})``."""

    h: int
    c: int
    unknowns: Tuple[Tuple[str, int], ...]

    def __init__(self, h: int, c: int, unknowns: Mapping[str, int]):
        if h not in (0, 1) or c not in (0, 1):
            raise QueryError("H and C are nullary: their counts are 0 or 1")
        for variable, value in unknowns.items():
            if not isinstance(value, int) or value < 0:
                raise QueryError(f"count of {variable!r} must be natural, got {value!r}")
        object.__setattr__(self, "h", h)
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "unknowns", tuple(sorted(unknowns.items())))

    def unknown(self, variable: str) -> int:
        for name, value in self.unknowns:
            if name == variable:
                return value
        return 0

    def assignment(self) -> Dict[str, int]:
        return dict(self.unknowns)

    def swapped_flags(self) -> "Profile":
        """The partner profile of Lemma 62: H and C exchanged."""
        return Profile(self.c, self.h, dict(self.unknowns))

    def to_structure(self, reduction: HilbertReduction) -> Structure:
        """A canonical structure with this profile."""
        facts = []
        if self.h:
            facts.append(Fact(H_RELATION, ()))
        if self.c:
            facts.append(Fact(C_RELATION, ()))
        domain = []
        for variable, value in self.unknowns:
            relation = variable_relation(variable)
            for index in range(value):
                element = (variable, index)
                facts.append(Fact(relation, (element,)))
                domain.append(element)
        return Structure(facts, schema=reduction.schema, domain=domain)


def count_cq_on_profile(query: ConjunctiveQuery, profile: Profile) -> int:
    """``Φ(D)`` computed from the profile.

    Each nullary atom contributes its flag; each unary ``X_i`` atom has
    its own variable, contributing an independent ``D_{X_i}`` factor.
    (This is exactly Lemma 59/60 arithmetic.)
    """
    value = 1
    for atom in query.atoms:
        if atom.relation == H_RELATION:
            value *= profile.h
        elif atom.relation == C_RELATION:
            value *= profile.c
        elif atom.relation.startswith("X_") and atom.arity == 1:
            variable = atom.relation[2:]
            value *= profile.unknown(variable)
        else:
            raise QueryError(
                f"atom {atom} is outside the reduction schema; "
                f"profile evaluation does not apply"
            )
        if value == 0:
            return 0
    return value


def count_ucq_on_profile(query: UnionOfBooleanCQs, profile: Profile) -> int:
    """``Ψ(D) = Σ_Φ Φ(D)`` on a profile."""
    return sum(count_cq_on_profile(d, profile) for d in query.disjuncts)


def view_profile_answers(
    reduction: HilbertReduction, profile: Profile
) -> Tuple[int, ...]:
    """All view answers ``(V_1(D), V_{x_1}(D), ..., V_I(D))``."""
    return tuple(
        count_ucq_on_profile(view, profile) for view in reduction.views()
    )
