"""The boolean-UCQ case (Theorem 2): reduction, profiles, analysis."""

from repro.ucq.hilbert import (
    DiophantineInstance,
    Monomial,
    fermat_like_instance,
    iter_solutions,
    linear_instance,
    pythagoras_instance,
    solve_bounded,
    unsolvable_instance,
)
from repro.ucq.reduction import (
    C_RELATION,
    H_RELATION,
    HilbertReduction,
    build_reduction,
    phi_for_monomial,
    reduction_schema,
    variable_relation,
)
from repro.ucq.profiles import (
    Profile,
    count_cq_on_profile,
    count_ucq_on_profile,
    view_profile_answers,
)
from repro.ucq.analysis import (
    LinearUCQRewriting,
    ReductionCounterexample,
    counterexample_from_solution,
    linear_certificate,
    profile_pair_agrees,
    search_reduction_counterexample,
    semidecide_reduction_determinacy,
)

__all__ = [
    "DiophantineInstance",
    "Monomial",
    "fermat_like_instance",
    "iter_solutions",
    "linear_instance",
    "pythagoras_instance",
    "solve_bounded",
    "unsolvable_instance",
    "C_RELATION",
    "H_RELATION",
    "HilbertReduction",
    "build_reduction",
    "phi_for_monomial",
    "reduction_schema",
    "variable_relation",
    "Profile",
    "count_cq_on_profile",
    "count_ucq_on_profile",
    "view_profile_answers",
    "LinearUCQRewriting",
    "ReductionCounterexample",
    "counterexample_from_solution",
    "linear_certificate",
    "profile_pair_agrees",
    "search_reduction_counterexample",
    "semidecide_reduction_determinacy",
]
