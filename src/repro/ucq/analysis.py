"""UCQ determinacy tools around the undecidable Theorem 2 territory.

Bag-determinacy of boolean UCQs is undecidable, so no complete decider
exists.  This module ships the two useful *semi*-procedures:

* **Refutation** — :func:`search_reduction_counterexample` exhausts the
  profile box of an Appendix-A reduction (equivalently: brute-forces
  the Diophantine instance, Lemma 63) and materializes a concrete
  structure pair when a solution exists;
  :func:`counterexample_from_solution` is the constructive ⇐ direction
  of Lemma 63.
* **Certification** — :func:`linear_certificate` finds coefficients
  ``λ`` with ``q(D) = Σ_j λ_j v_j(D)`` *identically*, by linear algebra
  over the isomorphism classes of disjuncts (two boolean CQs answer
  identically on every database iff their frozen bodies are isomorphic
  — Lemma 43).  This is the "q = v2 − v1" pattern of Example 3.  It is
  sound but *not* complete: failure proves nothing (Theorem 2 says it
  cannot be complete).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DecisionError
from repro.linalg.span import span_coefficients
from repro.queries.evaluation import evaluate_boolean
from repro.queries.ucq import UnionOfBooleanCQs
from repro.structures.isomorphism import find_isomorphism, invariant_key
from repro.structures.structure import Structure
from repro.ucq.hilbert import iter_solutions
from repro.ucq.profiles import Profile, view_profile_answers
from repro.ucq.reduction import HilbertReduction


# ----------------------------------------------------------------------
# Refutation via the reduction (Lemma 63)
# ----------------------------------------------------------------------
@dataclass
class ReductionCounterexample:
    """A verified pair refuting determinacy of a reduction instance."""

    solution: Dict[str, int]
    left_profile: Profile
    right_profile: Profile
    left: Structure
    right: Structure
    view_answers: Tuple[Tuple[int, int], ...]
    query_answers: Tuple[int, int]

    @property
    def ok(self) -> bool:
        views_agree = all(a == b for a, b in self.view_answers)
        return views_agree and self.query_answers[0] != self.query_answers[1]


def counterexample_from_solution(
    reduction: HilbertReduction, solution: Dict[str, int]
) -> ReductionCounterexample:
    """Lemma 63 (⇐): a Diophantine solution gives structures ``D, D'``
    with all views equal and ``q = H`` flipped."""
    if not reduction.instance.is_solution(solution):
        raise DecisionError(f"{solution!r} does not solve {reduction.instance}")
    left_profile = Profile(1, 0, solution)
    right_profile = Profile(0, 1, solution)
    left = left_profile.to_structure(reduction)
    right = right_profile.to_structure(reduction)
    view_answers = tuple(
        (evaluate_boolean(view, left), evaluate_boolean(view, right))
        for view in reduction.views()
    )
    query_answers = (
        evaluate_boolean(reduction.query, left),
        evaluate_boolean(reduction.query, right),
    )
    return ReductionCounterexample(
        solution=dict(solution),
        left_profile=left_profile,
        right_profile=right_profile,
        left=left,
        right=right,
        view_answers=view_answers,
        query_answers=query_answers,
    )


def search_reduction_counterexample(
    reduction: HilbertReduction, max_value: int
) -> Optional[ReductionCounterexample]:
    """Exhaust the bounded profile box.  By Lemma 62, any view-agreeing
    distinct pair has swapped flags and equal unknowns, so searching
    solutions of the instance is complete over the box."""
    for solution in iter_solutions(reduction.instance, max_value):
        candidate = counterexample_from_solution(reduction, solution)
        if candidate.ok:
            return candidate
    return None


def profile_pair_agrees(
    reduction: HilbertReduction, left: Profile, right: Profile
) -> bool:
    """Do all views answer identically on the two profiles?"""
    return view_profile_answers(reduction, left) == view_profile_answers(
        reduction, right
    )


def semidecide_reduction_determinacy(
    reduction: HilbertReduction, max_value: int
) -> Tuple[str, Optional[ReductionCounterexample]]:
    """``("not-determined", witness)`` when a bounded counterexample
    exists, ``("unknown", None)`` otherwise (Theorem 2: cannot do
    better in general)."""
    witness = search_reduction_counterexample(reduction, max_value)
    if witness is not None:
        return "not-determined", witness
    return "unknown", None


# ----------------------------------------------------------------------
# Certification: identical linear combinations (Example 3 pattern)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinearUCQRewriting:
    """``q(D) = Σ_j λ_j · v_j(D)`` — an identity over all databases."""

    query: UnionOfBooleanCQs
    views: Tuple[UnionOfBooleanCQs, ...]
    coefficients: Tuple[Fraction, ...]

    def evaluate(self, view_answers: Sequence[int]) -> int:
        if len(view_answers) != len(self.views):
            raise DecisionError(
                f"expected {len(self.views)} view answers, got {len(view_answers)}"
            )
        value = sum(
            (coefficient * answer
             for coefficient, answer in zip(self.coefficients, view_answers)),
            Fraction(0),
        )
        if value.denominator != 1 or value < 0:
            raise DecisionError(
                f"linear rewriting produced {value}; inconsistent view answers"
            )
        return value.numerator

    def answer_on(self, database: Structure) -> int:
        return self.evaluate([evaluate_boolean(v, database) for v in self.views])

    def explain(self) -> str:
        terms = [
            f"({coefficient})·V{j}"
            for j, coefficient in enumerate(self.coefficients)
            if coefficient != 0
        ]
        return "q(D) = " + (" + ".join(terms) if terms else "0")


def _disjunct_vectors(
    queries: Sequence[UnionOfBooleanCQs],
) -> List[Tuple[int, ...]]:
    """Vector of disjunct iso-class multiplicities for each UCQ.

    Frozen bodies are compared up to isomorphism (Lemma 43 makes this
    exactly the right equivalence for counting).
    """
    representatives: List[Structure] = []
    buckets: Dict[tuple, List[int]] = {}

    def class_index(body: Structure) -> int:
        key = invariant_key(body)
        bucket = buckets.setdefault(key, [])
        for index in bucket:
            if find_isomorphism(body, representatives[index]) is not None:
                return index
        bucket.append(len(representatives))
        representatives.append(body)
        return len(representatives) - 1

    raw: List[List[int]] = []
    for query in queries:
        counts: Dict[int, int] = {}
        for disjunct in query.disjuncts:
            index = class_index(disjunct.frozen_body())
            counts[index] = counts.get(index, 0) + 1
        raw.append(counts)

    dimension = len(representatives)
    vectors = []
    for counts in raw:
        vectors.append(tuple(counts.get(i, 0) for i in range(dimension)))
    return vectors


def linear_certificate(
    views: Sequence[UnionOfBooleanCQs],
    query: UnionOfBooleanCQs,
) -> Optional[LinearUCQRewriting]:
    """Try to express ``q`` as a rational linear combination of the
    views *as functions of the database*.

    Sound for determinacy (an identity is the strongest possible
    functional dependence); incomplete by Theorem 2.

    >>> from repro.queries.parser import parse_ucq
    >>> v1 = parse_ucq("P(x)")
    >>> v2 = parse_ucq("P(x) or R(x)")
    >>> q = parse_ucq("R(x)")
    >>> cert = linear_certificate([v1, v2], q)
    >>> cert.coefficients
    (Fraction(-1, 1), Fraction(1, 1))
    """
    vectors = _disjunct_vectors(list(views) + [query])
    view_vectors, query_vector = vectors[:-1], vectors[-1]
    coefficients = span_coefficients(view_vectors, query_vector)
    if coefficients is None:
        return None
    return LinearUCQRewriting(
        query=query,
        views=tuple(views),
        coefficients=tuple(coefficients),
    )
