"""The Appendix A reduction: Hilbert's Tenth → boolean-UCQ determinacy.

Given an instance ``I = {m_1, ..., m_k}`` over unknowns
``x_1, ..., x_n``, the reduction produces:

* schema ``Σ = {H/0, C/0, X_1/1, ..., X_n/1}`` (nullary ``H``, ``C``
  from the Segoufin–Vianu / Marcinkowski tricks, unary ``X_i`` from
  Ioannidis–Ramakrishnan);
* for each monomial ``m`` the boolean CQ ``Φ_m`` with ``m(x_i)``
  distinct ``X_i``-atoms per unknown, so that
  ``Φ_m(D) = Π_i (D_{X_i})^{m(x_i)}`` (Lemma 59 via Lemma 4(5));
* ``Ψ_P = ⋁_{m∈P} ⋁^{c(m)} (Φ_m ∧ H)`` and
  ``Ψ_N = ⋁_{m∈N} ⋁^{|c(m)|} (Φ_m ∧ C)`` — coefficients become
  disjunct multiplicities (bag-UCQ answers add!);
* views ``V = {V_1 = H ∨ C,  V_{x_i} = ∃y X_i(y),  V_I = Ψ_P ∨ Ψ_N}``
  and query ``q = H``.

Theorem 2: ``I`` has **no** natural solution  ⟺  ``V →bag q``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.queries.cq import Atom, ConjunctiveQuery
from repro.queries.ucq import UnionOfBooleanCQs
from repro.structures.schema import Schema
from repro.ucq.hilbert import DiophantineInstance, Monomial

H_RELATION = "H"
C_RELATION = "C"


def variable_relation(variable: str) -> str:
    """The unary relation name for unknown ``variable``."""
    return f"X_{variable}"


def reduction_schema(instance: DiophantineInstance) -> Schema:
    """``Σ`` of the reduction."""
    relations: Dict[str, int] = {H_RELATION: 0, C_RELATION: 0}
    for variable in instance.variables():
        relations[variable_relation(variable)] = 1
    return Schema(relations)


def phi_for_monomial(monomial: Monomial, schema: Schema) -> ConjunctiveQuery:
    """``Φ_m``: for each unknown ``x_i``, ``m(x_i)`` atoms
    ``X_i(y_{i,j})`` over *distinct* existential variables.

    Counting: each atom contributes an independent factor ``D_{X_i}``,
    so ``Φ_m(D) = Π_i (D_{X_i})^{m(x_i)}`` (Lemma 59).
    A constant monomial yields the empty conjunction (answers 1).
    """
    atoms: List[Atom] = []
    for variable, degree in monomial.exponents:
        for j in range(degree):
            atoms.append(Atom(variable_relation(variable), (f"y_{variable}_{j}",)))
    return ConjunctiveQuery(atoms, free=(), schema=schema)


@dataclass
class HilbertReduction:
    """The full output of the Appendix A construction."""

    instance: DiophantineInstance
    schema: Schema
    query: UnionOfBooleanCQs                       # q = H
    view_flag: UnionOfBooleanCQs                   # V_1 = H ∨ C
    view_unknowns: Tuple[UnionOfBooleanCQs, ...]   # V_{x_i}
    view_polynomial: UnionOfBooleanCQs             # V_I = Ψ_P ∨ Ψ_N

    def views(self) -> List[UnionOfBooleanCQs]:
        return [self.view_flag, *self.view_unknowns, self.view_polynomial]

    def all_queries(self) -> List[UnionOfBooleanCQs]:
        return [self.query, *self.views()]

    def summary(self) -> str:
        return (
            f"instance: {self.instance}\n"
            f"schema:   {self.schema!r}\n"
            f"|V_I| disjuncts: {len(self.view_polynomial.disjuncts)}"
        )


def build_reduction(instance: DiophantineInstance) -> HilbertReduction:
    """Construct ``(Σ, q, V)`` from a Diophantine instance.

    >>> from repro.ucq.hilbert import linear_instance
    >>> red = build_reduction(linear_instance())
    >>> len(red.views())
    4
    """
    schema = reduction_schema(instance)
    h_atom = ConjunctiveQuery([Atom(H_RELATION, ())], schema=schema)
    c_atom = ConjunctiveQuery([Atom(C_RELATION, ())], schema=schema)

    query = UnionOfBooleanCQs([h_atom], schema=schema)
    view_flag = UnionOfBooleanCQs([h_atom, c_atom], schema=schema)

    view_unknowns = tuple(
        UnionOfBooleanCQs(
            [ConjunctiveQuery([Atom(variable_relation(v), ("y",))], schema=schema)],
            schema=schema,
        )
        for v in instance.variables()
    )

    polynomial_disjuncts: List[ConjunctiveQuery] = []
    for monomial in instance.positive_monomials():
        phi = phi_for_monomial(monomial, schema)
        with_flag = phi.conjoin(h_atom)
        polynomial_disjuncts.extend([with_flag] * monomial.coefficient)
    for monomial in instance.negative_monomials():
        phi = phi_for_monomial(monomial, schema)
        with_flag = phi.conjoin(c_atom)
        polynomial_disjuncts.extend([with_flag] * (-monomial.coefficient))
    if not polynomial_disjuncts:
        # Degenerate instance with no monomials cannot reach here
        # (DiophantineInstance requires one), but a purely positive or
        # negative instance is fine: Ψ_N or Ψ_P is simply absent.
        raise AssertionError("unreachable: instance has at least one monomial")
    view_polynomial = UnionOfBooleanCQs(polynomial_disjuncts, schema=schema)

    return HilbertReduction(
        instance=instance,
        schema=schema,
        query=query,
        view_flag=view_flag,
        view_unknowns=view_unknowns,
        view_polynomial=view_polynomial,
    )
