"""Session-scoped solver context — the ownership layer above the engine.

Every decision procedure in the library bottoms out in the compiled
counting engine (:mod:`repro.hom.engine`).  Before this module, engine
ownership was ad hoc: a process-global ``default_engine()`` singleton,
bare ``HomEngine()`` constructions scattered through the workbench and
the batch runner, and a private ``_engine`` attribute threaded through
decision results.  None of that composes into a *request stream*: a
resident service answering thousands of tasks needs one place that owns
the engine, the persistent store, the strategy override and the memo
limits — and that can report aggregated statistics over its lifetime.

:class:`SolverSession` is that place.  One session owns:

* a :class:`~repro.hom.engine.HomEngine` (created from the session's
  configuration, or adopted from the caller);
* an optional persistent store — either an object implementing the
  engine's duck-typed store protocol, or a path to an SQLite store the
  session opens (and then closes) itself;
* the counting ``strategy`` override and the memo bounds;
* session-level counters (tasks evaluated, errors) that the batch
  runner and the request service feed.

Every decision-procedure entry point accepts ``session=``; passing the
same session across ``decide → witness → refute`` reuses every compiled
target and memoized count, and two sessions never share state.  The
legacy ``default_engine()`` singleton survives as a thin shim over the
module-level *default session* (:func:`default_session`), so existing
callers keep their behaviour while new code scopes its state
explicitly::

    with SolverSession(store_path="homs.sqlite") as session:
        result = decide_bag_determinacy(views, query, session=session)
        if not result.determined:
            pair = result.witness()        # reuses the deciding engine
        print(session.stats()["engine"]["hits"])
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ReproError
from repro.faults.budget import Budget
from repro.hom.engine import STRATEGIES, HomEngine
from repro.obs.metrics import MetricsRegistry


class SolverSession:
    """Explicit ownership of engine, store, strategy and statistics.

    Parameters
    ----------
    engine:
        Adopt an existing engine instead of building one.  The session
        then *borrows* the engine: ``close()`` flushes but never closes
        a store the caller attached.  Mutually exclusive with the
        engine-configuration knobs below.
    store:
        A store object implementing the engine's duck-typed protocol
        (``lookup``/``record``; see :class:`repro.hom.engine.HomEngine`).
        Borrowed — the caller closes it.
    store_path:
        Path to a persistent hom store, owned by the session (opened
        here, closed in :meth:`close`).  A plain file path opens the
        single-file :class:`repro.batch.cache.SQLiteHomStore`; a
        directory — or any path combined with ``shards=`` /
        ``memory_tier=`` — opens the sharded, tiered
        :class:`repro.batch.store.TieredHomStore` (migrating a v2 file
        in place; see :func:`repro.batch.store.open_store`).
    shards / memory_tier:
        Tiered-store knobs (require ``store_path``): the shard count
        for a store created at ``store_path``, and the LRU memory-tier
        capacity in entries.
    preload_pack:
        Path to a warm-start pack (``repro cache warm-pack``) whose
        rows are imported into the owned store before serving — the
        engine's first probes for packed keys become store hits.
    strategy:
        Counting-backend override, ``"auto"``/``"backtrack"``/``"dp"``.
    max_counts / max_targets:
        Memo bounds forwarded to the engine.
    preload:
        With ``store_path`` (or ``store``): seed up to this many stored
        counts into the fresh engine's memo (warm start).
    default_deadline_ms / default_max_steps:
        Per-request budget defaults (DESIGN.md §14): every task
        evaluated under this session runs inside a fresh
        :class:`~repro.faults.budget.Budget` built from these bounds
        unless the request carries its own ``deadline_ms``.  ``None``
        (the default) means unbounded — budgets cost nothing unless
        asked for.
    """

    __slots__ = ("engine", "_store", "_owns_engine", "_owns_store",
                 "metrics", "_m_tasks", "_m_task_errors",
                 "_m_budget_exceeded", "default_deadline_ms",
                 "default_max_steps", "_closed")

    def __init__(self, *, engine: Optional[HomEngine] = None,
                 store=None, store_path: Optional[str] = None,
                 shards: Optional[int] = None,
                 memory_tier: Optional[int] = None,
                 preload_pack: Optional[str] = None,
                 strategy: str = "auto",
                 max_counts: int = 16384, max_targets: int = 512,
                 preload: int = 0,
                 default_deadline_ms: Optional[float] = None,
                 default_max_steps: Optional[int] = None):
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ReproError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}")
        if default_max_steps is not None and default_max_steps <= 0:
            raise ReproError(
                f"default_max_steps must be > 0, got {default_max_steps}")
        self.default_deadline_ms = default_deadline_ms
        self.default_max_steps = default_max_steps
        if store is not None and store_path is not None:
            raise ReproError(
                "SolverSession takes either a store object or a "
                "store_path, not both")
        if store_path is None and (shards is not None
                                   or memory_tier is not None
                                   or preload_pack is not None):
            raise ReproError(
                "shards=/memory_tier=/preload_pack= configure the "
                "session-owned store and require store_path=")
        if strategy not in STRATEGIES:
            raise ReproError(
                f"unknown counting strategy {strategy!r}; "
                f"expected one of {STRATEGIES}")
        self._owns_store = False
        if store_path is not None:
            from repro.batch.store import import_warm_pack, open_store

            store = open_store(store_path, shards=shards,
                               memory_tier=memory_tier)
            self._owns_store = True
            if preload_pack is not None:
                import_warm_pack(store, preload_pack)
        self._store = store
        if engine is not None:
            # Adopted engine: its configuration wins; wiring a second
            # store or strategy under the caller's feet would be a
            # silent behaviour change, so it is refused.
            if store is not None or strategy != "auto":
                raise ReproError(
                    "cannot adopt an existing engine and also configure "
                    "store/strategy; configure the engine itself")
            self.engine = engine
            self._owns_engine = False
            self._store = engine.store
        else:
            self.engine = HomEngine(max_counts=max_counts,
                                    max_targets=max_targets,
                                    store=store, strategy=strategy)
            self._owns_engine = True
            if store is not None and preload > 0:
                seeder = getattr(store, "preload", None)
                if seeder is not None:
                    seeder(self.engine, limit=preload)
        # The session's metrics registry: request accounting lives
        # here, the engine's registry is attached (one snapshot walks
        # both), and the persistent store's counters are pulled in
        # through collectors that read whatever store is *currently*
        # attached to the engine.
        metrics = MetricsRegistry()
        self.metrics = metrics
        self._m_tasks = metrics.counter("session.tasks.evaluated")
        self._m_task_errors = metrics.counter("session.tasks.errors")
        self._m_budget_exceeded = \
            metrics.counter("session.tasks.budget_exceeded")
        metrics.register_collector(self._collect_store_counters,
                                   monotonic=True)
        metrics.register_collector(self._collect_store_gauges,
                                   monotonic=False)
        metrics.attach(self.engine.metrics)
        self._closed = False

    # Legacy attribute surface over the registry-homed counters.
    @property
    def tasks_evaluated(self) -> int:
        return self._m_tasks.value

    @property
    def task_errors(self) -> int:
        return self._m_task_errors.value

    @property
    def tasks_budget_exceeded(self) -> int:
        return self._m_budget_exceeded.value

    def _store_stats(self) -> Dict[str, int]:
        store = self.engine.store
        if store is None:
            return {}
        stats = getattr(store, "stats", None)
        return stats() if stats else {}

    # stats() key -> metric name, per kind.  The tier/flush/shard keys
    # only appear when the attached store is the tiered one; the
    # single-file store's stats simply lack them, so the mapping is
    # shared by both store classes.
    _STORE_COUNTER_METRICS = {
        "lookups": "store.lookups",
        "lookup_hits": "store.lookup_hits",
        "inserts": "store.inserts",
        "corruptions": "store.corruptions",
        "retries": "store.retries",
        "tier_hits": "store.tier.hits",
        "tier_misses": "store.tier.misses",
        "tier_evictions": "store.tier.evictions",
        "flush_batches": "store.flush.batches",
        "flush_rows": "store.flush.rows",
        "shard_opens": "store.shard.opens",
    }
    _STORE_GAUGE_METRICS = {
        "counts": "store.counts",
        "exists": "store.exists",
        "tier_entries": "store.tier.entries",
        "shards": "store.shards",
    }

    def _collect_store_counters(self) -> Dict[str, int]:
        stats = self._store_stats()
        return {name: stats[key]
                for key, name in self._STORE_COUNTER_METRICS.items()
                if key in stats}

    def _collect_store_gauges(self) -> Dict[str, int]:
        stats = self._store_stats()
        return {name: stats[key]
                for key, name in self._STORE_GAUGE_METRICS.items()
                if key in stats}

    # ------------------------------------------------------------------
    # Counting facade (the operations consumers actually perform)
    # ------------------------------------------------------------------
    def count(self, source, target) -> int:
        """``|hom(source, target)|`` through this session's engine."""
        return self.engine.count(source, target)

    def exists(self, source, target) -> bool:
        """Chandra–Merlin existence probe through this session's engine."""
        return self.engine.exists(source, target)

    @property
    def store(self):
        return self.engine.store

    @property
    def strategy(self) -> str:
        return self.engine.strategy

    # ------------------------------------------------------------------
    # Request accounting (fed by the batch runner and the service)
    # ------------------------------------------------------------------
    def record_task(self, ok: bool = True,
                    budget_exceeded: bool = False) -> None:
        """Count one evaluated request against this session."""
        self._m_tasks.value += 1
        if not ok:
            self._m_task_errors.value += 1
        if budget_exceeded:
            self._m_budget_exceeded.value += 1

    def budget_for(self, deadline_ms: Optional[float] = None
                   ) -> Optional[Budget]:
        """The fresh :class:`~repro.faults.budget.Budget` one request
        should run under — or ``None`` when neither the request nor
        the session bounds it.

        ``deadline_ms`` is the request's own deadline (the
        ``deadline_ms`` envelope field); it overrides the session
        default.  The session's ``default_max_steps`` applies either
        way (a work budget is a property of the deployment, not of one
        request).
        """
        deadline = deadline_ms if deadline_ms is not None \
            else self.default_deadline_ms
        if deadline is None and self.default_max_steps is None:
            return None
        return Budget(deadline_ms=deadline,
                      max_steps=self.default_max_steps)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self, flat: bool = False) -> Dict[str, object]:
        """Aggregated session statistics: engine memo counters, store
        counters when a store is attached, and request accounting.

        ``flat=True`` returns the namespaced registry snapshot — the
        one documented metric schema (:mod:`repro.obs`) shared with
        ``HomEngine.stats(flat=True)`` and the service's ``metrics``
        control op.  The default (``flat=False``) is the legacy nested
        shape, kept as the compatibility path; both views are sourced
        from the same registry-homed counters.

        The engine block carries the shared intern/canonical-label
        counters (``engine.interning`` / ``engine.canonical``:
        structures compiled to ints, canonical keys labeled, cache
        hits on both) — what an operator watches to confirm the
        canonical memo is actually deduplicating a request stream.
        """
        if flat:
            return self.metrics.snapshot()
        report: Dict[str, object] = {
            "engine": self.engine.stats(),
            "tasks_evaluated": self.tasks_evaluated,
            "task_errors": self.task_errors,
            "tasks_budget_exceeded": self.tasks_budget_exceeded,
            "strategy": self.engine.strategy,
        }
        store = self.engine.store
        if store is not None:
            store_stats = getattr(store, "stats", None)
            report["store"] = store_stats() if store_stats else {}
        return report

    def flush(self) -> None:
        """Flush buffered writes of the attached store, if any."""
        self.engine.flush_store()

    def clear(self) -> None:
        """Drop the engine's in-memory caches (store untouched)."""
        self.engine.clear()

    def close(self) -> None:
        """Flush, and close the store when this session opened it.

        Idempotent; adopted engines and borrowed stores are left as the
        caller configured them (only buffered writes are flushed).
        """
        if self._closed:
            return
        self._closed = True
        self.flush()
        if self._owns_store and self._store is not None:
            self._store.close()
            if self._owns_engine:
                self.engine.detach_store()

    def __enter__(self) -> "SolverSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"SolverSession(engine={self.engine!r}, "
                f"tasks={self.tasks_evaluated}, "
                f"owns_engine={self._owns_engine})")


# ----------------------------------------------------------------------
# The module-level default session (compatibility surface)
# ----------------------------------------------------------------------
_DEFAULT_SESSION: Optional[SolverSession] = None


def default_session() -> SolverSession:
    """The process-wide shared session (LRU-bounded, safe to keep).

    :func:`repro.hom.engine.default_engine` is a shim over this — the
    two always agree on which engine is "the default".
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = SolverSession()
    return _DEFAULT_SESSION


def set_default_session(session: Optional[SolverSession]
                        ) -> Optional[SolverSession]:
    """Swap the process-wide default session; returns the previous one.

    ``None`` resets to "build a fresh default on next use".  The
    previous session is *not* closed — the caller decides its fate
    (tests swap a scoped session in and restore the old one after).
    """
    global _DEFAULT_SESSION
    previous = _DEFAULT_SESSION
    _DEFAULT_SESSION = session
    return previous


def resolve_session(session: Optional[SolverSession] = None,
                    engine: Optional[HomEngine] = None) -> SolverSession:
    """The session an API call should run under.

    Precedence: an explicit ``session`` wins; a bare ``engine`` (the
    pre-session calling convention) is adopted into a lightweight
    borrowing session; otherwise the process default.  Passing both a
    session and a *different* engine is a contradiction and raises.
    """
    if session is not None:
        if engine is not None and engine is not session.engine:
            raise ReproError(
                "both session= and engine= were given and disagree; "
                "pass one of them")
        return session
    if engine is not None:
        return SolverSession(engine=engine)
    return default_session()
