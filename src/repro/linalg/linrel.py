"""Linear relations: the executable model of the ``H_w`` machinery.

Definition 19 of the paper turns incidence matrices into *relations* on
``Q^n`` ("while we know that not all matrices are invertible ...
relations can always be inverted!").  Every relation arising there —
graphs of linear maps, their inverses, and compositions — is a linear
subspace of ``Q^n × Q^n``.  :class:`LinearRelation` represents such a
subspace by a canonical (RREF) generator matrix and implements exactly
the operations the Section 3 proofs use:

* ``graph_of(M)`` — the relation ``{(x, Mx)}`` (Def. 19(1)–(3));
* ``inverse()`` — swap the two halves (always defined);
* ``compose()`` — relational composition (Def. 19(4));
* ``__le__`` — containment, the order in Lemmas 21–23;
* ``as_function_graph()`` — recover ``M`` from ``{(x, Mx)}``
  (used by the path-rewriting engine after Corollary 24).

Containment and equality are exact subspace computations, so Lemma 21
(``f̄ f̄⁻¹ ⊇ I`` and ``f̄⁻¹ f̄ ⊆ I``) and Lemma 22 are *checkable*, and
the property tests in ``tests/test_linrel.py`` check them.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence

from repro.errors import LinalgError
from repro.linalg.matrix import QMatrix, vector


class LinearRelation:
    """A linear subspace of ``Q^n × Q^n`` seen as a relation on ``Q^n``.

    The generator matrix is row-reduced **once**, at construction: the
    stored ``basis`` is the RREF rows and ``_pivots`` their leading
    columns.  Every subsequent membership question —
    :meth:`contains_pair` and the :meth:`__le__` containment order the
    decision loops hammer — is answered by reducing the candidate
    vector against that cached form (one subtraction per basis row)
    instead of re-running Gaussian elimination on a freshly stacked
    matrix per comparison.
    """

    __slots__ = ("n", "basis", "_pivots")

    def __init__(self, n: int, generators: Sequence[Sequence] = ()):
        if n < 0:
            raise LinalgError("relation dimension must be >= 0")
        self.n = n
        rows = [vector(g) for g in generators]
        for row in rows:
            if len(row) != 2 * n:
                raise LinalgError(
                    f"generators must have length {2 * n}, got {len(row)}"
                )
        if rows:
            reduced, pivots = QMatrix(rows).rref()
            self.basis = tuple(reduced.rows[i] for i in range(len(pivots)))
            self._pivots = pivots
        else:
            self.basis = ()
            self._pivots = ()

    def _in_span(self, candidate: Sequence[Fraction]) -> bool:
        """Is ``candidate`` in the row span of the cached RREF basis?

        Because the basis is in reduced echelon form (each pivot column
        is zero in every other row, pivot entries are 1), the unique
        candidate combination is read off the pivot coordinates
        directly — no elimination, one pass per basis row.
        """
        residual = list(candidate)
        for row, pivot in zip(self.basis, self._pivots):
            factor = residual[pivot]
            if factor:
                residual = [a - factor * b for a, b in zip(residual, row)]
        return not any(residual)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity(n: int) -> "LinearRelation":
        """``I = {(x, x)}``."""
        eye = QMatrix.identity(n)
        return LinearRelation(n, [list(eye.rows[i]) + list(eye.rows[i])
                                  for i in range(n)])

    @staticmethod
    def graph_of(matrix: QMatrix) -> "LinearRelation":
        """``{(x, Mx)} `` — the relation equal to the function ``h_M``."""
        if not matrix.is_square():
            raise LinalgError("graph_of expects a square matrix")
        n = matrix.nrows
        eye = QMatrix.identity(n)
        generators = []
        for i in range(n):
            x = list(eye.rows[i])
            y = list(matrix.matvec(eye.rows[i]))
            generators.append(x + y)
        return LinearRelation(n, generators)

    @staticmethod
    def full(n: int) -> "LinearRelation":
        """The total relation ``Q^n × Q^n``."""
        eye = QMatrix.identity(2 * n)
        return LinearRelation(n, eye.rows)

    @staticmethod
    def empty(n: int) -> "LinearRelation":
        """The zero subspace ``{(0, 0)}`` (smallest linear relation)."""
        return LinearRelation(n, ())

    # ------------------------------------------------------------------
    # Relation algebra
    # ------------------------------------------------------------------
    def inverse(self) -> "LinearRelation":
        """``{(y, x) : (x, y) ∈ R}``."""
        flipped = [tuple(row[self.n:]) + tuple(row[:self.n]) for row in self.basis]
        return LinearRelation(self.n, flipped)

    def compose(self, other: "LinearRelation") -> "LinearRelation":
        """``{(x, z) : ∃y (x, y) ∈ self ∧ (y, z) ∈ other}``.

        Diagrammatic order: ``self`` is applied first.  For graphs this
        matches ``graph_of(A).compose(graph_of(B)) == graph_of(B*A)``.
        """
        if self.n != other.n:
            raise LinalgError("composing relations of different dimensions")
        n = self.n
        r1, r2 = len(self.basis), len(other.basis)
        if r1 == 0 or r2 == 0:
            return LinearRelation(n, ())
        # Find all (a, b) with  a·Y1 = b·Y2  where self rows are (X1|Y1)
        # and other rows are (Y2|Z2): nullspace of [Y1^T | -Y2^T].
        coupling_rows = []
        for coord in range(n):
            row = [self.basis[i][n + coord] for i in range(r1)]
            row += [-other.basis[j][coord] for j in range(r2)]
            coupling_rows.append(row)
        nullspace = QMatrix(coupling_rows).nullspace()
        generators: List[List[Fraction]] = []
        for solution in nullspace:
            a, b = solution[:r1], solution[r1:]
            x = [sum((a[i] * self.basis[i][c] for i in range(r1)), Fraction(0))
                 for c in range(n)]
            z = [sum((b[j] * other.basis[j][n + c] for j in range(r2)), Fraction(0))
                 for c in range(n)]
            generators.append(x + z)
        return LinearRelation(n, generators)

    # ------------------------------------------------------------------
    # Order and equality
    # ------------------------------------------------------------------
    def dimension(self) -> int:
        return len(self.basis)

    def contains_pair(self, x: Sequence, y: Sequence) -> bool:
        """Is the concrete pair ``(x, y)`` in the relation?"""
        candidate = list(vector(x)) + list(vector(y))
        if len(candidate) != 2 * self.n:
            raise LinalgError("pair has wrong dimension")
        return self._in_span(candidate)

    def __le__(self, other: "LinearRelation") -> bool:
        """Subspace containment ``self ⊆ other`` (row-by-row reduction
        against ``other``'s cached RREF basis)."""
        if self.n != other.n:
            raise LinalgError("comparing relations of different dimensions")
        return all(other._in_span(row) for row in self.basis)

    def __ge__(self, other: "LinearRelation") -> bool:
        return other <= self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearRelation):
            return NotImplemented
        return self.n == other.n and self.basis == other.basis

    def __hash__(self) -> int:
        return hash((self.n, self.basis))

    # ------------------------------------------------------------------
    # Function recovery
    # ------------------------------------------------------------------
    def as_function_graph(self) -> Optional[QMatrix]:
        """If the relation is ``{(x, Mx)}`` for some matrix ``M``,
        return ``M``; else ``None``.

        A subspace is a total function graph iff its dimension is ``n``
        and the projection onto the first block has full rank.
        """
        n = self.n
        if len(self.basis) != n:
            return None
        x_block = QMatrix([row[:n] for row in self.basis])
        y_block = QMatrix([row[n:] for row in self.basis])
        if x_block.rank() != n:
            return None
        # rows satisfy y_i = M x_i, i.e.  Y = X Mᵀ  =>  M = (X⁻¹ Y)ᵀ.
        m_transposed = x_block.inverse().matmul(y_block)
        return m_transposed.transpose()

    def __repr__(self) -> str:
        return f"LinearRelation(n={self.n}, dim={len(self.basis)})"
