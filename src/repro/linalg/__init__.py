"""Exact rational linear algebra used by the determinacy machinery."""

from repro.linalg.matrix import QMatrix, QVector, dot, vector
from repro.linalg.span import (
    in_span,
    integerize,
    span_basis,
    span_coefficients,
    span_dimension,
    verify_combination,
)
from repro.linalg.orthogonal import integer_orthogonal_witness, orthogonal_witness
from repro.linalg.cone import SimplicialCone, perturb
from repro.linalg.vandermonde import (
    is_vandermonde_nonsingular,
    vandermonde_determinant,
    vandermonde_matrix,
)
from repro.linalg.linrel import LinearRelation

__all__ = [
    "QMatrix",
    "QVector",
    "dot",
    "vector",
    "in_span",
    "integerize",
    "span_basis",
    "span_coefficients",
    "span_dimension",
    "verify_combination",
    "integer_orthogonal_witness",
    "orthogonal_witness",
    "SimplicialCone",
    "perturb",
    "is_vandermonde_nonsingular",
    "vandermonde_determinant",
    "vandermonde_matrix",
    "LinearRelation",
]
