"""Rational orthogonal witnesses (Fact 5).

Fact 5 of the paper: if ``u ∉ span{u_1, ..., u_n}`` over ``Q^k``, there
is a rational ``z`` orthogonal to every ``u_i`` but not to ``u``.  The
proof of Lemma 56 takes such a ``z`` (scaled to integers) as "the
difference direction" between the counterexample structures.

Constructively: a basis of the orthogonal complement of
``span{u_i}`` is the nullspace of the matrix with rows ``u_i``;
some basis vector must have non-zero dot with ``u`` (else ``u`` would
be in the double complement = the span).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.linalg.matrix import QMatrix, QVector, dot, vector
from repro.linalg.span import integerize


def orthogonal_witness(
    generators: Sequence[Sequence],
    target: Sequence,
) -> Optional[QVector]:
    """A rational ``z`` with ``⟨z, g⟩ = 0`` for all generators and
    ``⟨z, target⟩ ≠ 0`` — or ``None`` when no such ``z`` exists
    (i.e. when the target lies in the span).

    >>> z = orthogonal_witness([[1, 0, 0]], [0, 1, 0])
    >>> z is not None
    True
    """
    target_vec = vector(target)
    width = len(target_vec)
    if any(len(g) != width for g in generators):
        raise ValueError("generator/target dimension mismatch")
    if generators:
        matrix = QMatrix([vector(g) for g in generators])
        complement = matrix.nullspace()
    else:
        complement = list(QMatrix.identity(width).rows)
    for candidate in complement:
        if dot(candidate, target_vec) != 0:
            return candidate
    return None


def integer_orthogonal_witness(
    generators: Sequence[Sequence],
    target: Sequence,
) -> Optional[tuple]:
    """Like :func:`orthogonal_witness` but scaled to ``Z^k`` — the
    proof of Lemma 56 needs ``z ∈ Z^k`` so that ``t^z`` stays rational
    for rational ``t`` (footnote 26)."""
    witness = orthogonal_witness(generators, target)
    if witness is None:
        return None
    _, scaled = integerize(witness)
    return tuple(scaled)
