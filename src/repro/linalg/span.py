"""Span membership with certificates.

The Main Lemma (31) reduces bag-determinacy of boolean CQs to the
question ``q⃗ ∈ span{v⃗ | v ∈ V}`` in ``Q^k``.  We need more than a
yes/no: the *coefficients* are the exponents of the monomial rewriting
``q(D) = Π_j v_j(D)^{α_j}`` (Appendix D), so membership is returned
with a witness.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.linalg.matrix import QMatrix, QVector, vector


def span_coefficients(
    generators: Sequence[Sequence],
    target: Sequence,
) -> Optional[QVector]:
    """Coefficients ``α`` with ``Σ α_i · generators[i] = target``,
    or ``None`` when the target is outside the span.

    The empty generator list spans only the zero vector.

    >>> span_coefficients([[1, 0], [0, 1]], [3, 4])
    (Fraction(3, 1), Fraction(4, 1))
    >>> span_coefficients([[1, 1]], [1, 2]) is None
    True
    """
    target_vec = vector(target)
    if not generators:
        return () if all(v == 0 for v in target_vec) else None
    width = len(target_vec)
    if any(len(g) != width for g in generators):
        raise ValueError("generator/target dimension mismatch")
    # Solve  G^T α = target  where generators are rows of G.
    matrix = QMatrix.from_columns([vector(g) for g in generators])
    return matrix.solve(target_vec)


def in_span(generators: Sequence[Sequence], target: Sequence) -> bool:
    """Membership without the certificate."""
    return span_coefficients(generators, target) is not None


def span_basis(generators: Sequence[Sequence]) -> List[QVector]:
    """An independent subset of the generators with the same span
    (greedy, keeps earlier generators)."""
    basis: List[QVector] = []
    for generator in generators:
        candidate = vector(generator)
        if span_coefficients(basis, candidate) is None:
            basis.append(candidate)
    return basis


def span_dimension(generators: Sequence[Sequence]) -> int:
    return len(span_basis(generators))


def verify_combination(
    generators: Sequence[Sequence],
    coefficients: Sequence,
    target: Sequence,
) -> bool:
    """Exact check that ``Σ α_i g_i = target`` (certificate validation)."""
    target_vec = vector(target)
    coeffs = vector(coefficients)
    if len(coeffs) != len(generators):
        return False
    width = len(target_vec)
    acc = [Fraction(0)] * width
    for alpha, generator in zip(coeffs, generators):
        g = vector(generator)
        if len(g) != width:
            return False
        acc = [a + alpha * b for a, b in zip(acc, g)]
    return tuple(acc) == target_vec


def integerize(values: Sequence[Fraction]) -> Tuple[int, List[int]]:
    """Smallest positive ``c`` with ``c·values`` integral, plus the
    scaled integers (Lemma 55's "common multiple of denominators")."""
    scale = 1
    for value in values:
        scale = _lcm(scale, Fraction(value).denominator)
    scaled = [int(Fraction(value) * scale) for value in values]
    return scale, scaled


def _lcm(a: int, b: int) -> int:
    from math import gcd
    return a // gcd(a, b) * b
