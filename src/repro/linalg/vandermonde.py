"""Vandermonde matrices (Lemma 46).

Step 3 of the Lemma 40 construction produces the evaluation matrix
``M(i, j) = a_i^{j-1}`` where ``a_i = |hom(w_i, s⁽²⁾)|`` are pairwise
distinct (Observation 45).  Lemma 46: such a matrix is nonsingular.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.linalg.matrix import QMatrix


def vandermonde_matrix(values: Sequence) -> QMatrix:
    """The k×k matrix ``A(i, j) = values[i]^j`` (j = 0..k-1).

    >>> vandermonde_matrix([1, 2]).rows
    ((Fraction(1, 1), Fraction(1, 1)), (Fraction(1, 1), Fraction(2, 1)))
    """
    k = len(values)
    return QMatrix([
        [Fraction(value) ** j for j in range(k)]
        for value in values
    ])


def vandermonde_determinant(values: Sequence) -> Fraction:
    """``Π_{i<j} (a_j - a_i)`` — the closed form, used to cross-check
    :meth:`QMatrix.det` in tests."""
    fractions = [Fraction(v) for v in values]
    result = Fraction(1)
    for j in range(len(fractions)):
        for i in range(j):
            result *= fractions[j] - fractions[i]
    return result


def is_vandermonde_nonsingular(values: Sequence) -> bool:
    """Lemma 46: nonsingular iff the generating values are pairwise
    distinct."""
    fractions = [Fraction(v) for v in values]
    return len(set(fractions)) == len(fractions)
