"""Exact rational matrices.

Everything proof-carrying in this library (span membership for Lemma
31, nonsingularity for Lemma 40, cone membership for Lemma 55/56) runs
on exact :class:`fractions.Fraction` arithmetic — the matrices involved
(radix-``T`` Vandermonde matrices) are catastrophically ill-conditioned
for floating point.

:class:`QMatrix` is a small, immutable, dependency-free implementation
of the handful of operations we need: RREF with pivot tracking, rank,
determinant, inverse, linear solve, matrix/vector products, and
nullspace bases.  It is not a general numerics library and does not try
to be one.

Performance (DESIGN.md §6.5): elimination runs **once** per matrix.
A single Gauss–Jordan pass over ``[A | I]`` is cached on the instance
as ``(R, pivots, T)`` with ``T·A = R``; ``rref``/``rank``/``solve``/
``nullspace``/``inverse`` all read that cache instead of re-eliminating
(``solve`` applies ``T`` to the right-hand side).  Determinants use
**fraction-free Bareiss elimination** over scaled integer rows —
intermediate values stay integers, so the quadratic-blowup gcd
normalization of Fraction arithmetic never runs.  The textbook
Fraction-based determinant is kept as :func:`gaussian_det` — it is the
reference the Bareiss path is property-tested against.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import List, Optional, Sequence, Tuple

from repro.errors import LinalgError

Scalar = Fraction | int
QVector = Tuple[Fraction, ...]


def _to_fraction(value) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise LinalgError(
        f"exact matrices accept int/Fraction entries only, got {type(value).__name__}"
    )


_ZERO = Fraction(0)
_ONE = Fraction(1)


def vector(values: Sequence[Scalar]) -> QVector:
    """Normalize a sequence into a tuple of Fractions."""
    return tuple(_to_fraction(v) for v in values)


def dot(left: Sequence[Scalar], right: Sequence[Scalar]) -> Fraction:
    """Exact dot product ``⟨u, v⟩``."""
    if len(left) != len(right):
        raise LinalgError(f"dot of lengths {len(left)} and {len(right)}")
    return sum((_to_fraction(a) * _to_fraction(b) for a, b in zip(left, right)),
               Fraction(0))


class QMatrix:
    """An immutable matrix over the rationals.

    >>> m = QMatrix([[1, 2], [3, 4]])
    >>> m.det()
    Fraction(-2, 1)
    >>> m.inverse().matvec([1, 0])
    (Fraction(-2, 1), Fraction(3, 2))
    """

    __slots__ = ("rows", "nrows", "ncols", "_elimination", "_det")

    def __init__(self, rows: Sequence[Sequence[Scalar]]):
        normalized: List[QVector] = [vector(row) for row in rows]
        widths = {len(row) for row in normalized}
        if len(widths) > 1:
            raise LinalgError(f"ragged rows with widths {sorted(widths)}")
        self.rows = tuple(normalized)
        self.nrows = len(self.rows)
        self.ncols = next(iter(widths)) if widths else 0
        self._elimination = None
        self._det = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity(size: int) -> "QMatrix":
        return QMatrix([
            [Fraction(1) if i == j else Fraction(0) for j in range(size)]
            for i in range(size)
        ])

    @staticmethod
    def zeros(nrows: int, ncols: int) -> "QMatrix":
        return QMatrix([[Fraction(0)] * ncols for _ in range(nrows)])

    @staticmethod
    def from_columns(columns: Sequence[Sequence[Scalar]]) -> "QMatrix":
        if not columns:
            return QMatrix([])
        height = len(columns[0])
        if any(len(c) != height for c in columns):
            raise LinalgError("columns of unequal height")
        return QMatrix([[columns[j][i] for j in range(len(columns))]
                        for i in range(height)])

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def entry(self, i: int, j: int) -> Fraction:
        return self.rows[i][j]

    def row(self, i: int) -> QVector:
        return self.rows[i]

    def column(self, j: int) -> QVector:
        return tuple(row[j] for row in self.rows)

    def columns(self) -> List[QVector]:
        return [self.column(j) for j in range(self.ncols)]

    def is_square(self) -> bool:
        return self.nrows == self.ncols

    def transpose(self) -> "QMatrix":
        return QMatrix([[self.rows[i][j] for i in range(self.nrows)]
                        for j in range(self.ncols)])

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def matvec(self, x: Sequence[Scalar]) -> QVector:
        if len(x) != self.ncols:
            raise LinalgError(f"matvec: {self.ncols} columns vs vector of {len(x)}")
        xs = vector(x)
        return tuple(dot(row, xs) for row in self.rows)

    def matmul(self, other: "QMatrix") -> "QMatrix":
        if self.ncols != other.nrows:
            raise LinalgError(
                f"matmul: {self.nrows}x{self.ncols} times {other.nrows}x{other.ncols}"
            )
        other_cols = other.columns()
        return QMatrix([
            [dot(row, col) for col in other_cols]
            for row in self.rows
        ])

    def __mul__(self, other):
        if isinstance(other, QMatrix):
            return self.matmul(other)
        return NotImplemented

    def scale(self, factor: Scalar) -> "QMatrix":
        f = _to_fraction(factor)
        return QMatrix([[f * v for v in row] for row in self.rows])

    def add(self, other: "QMatrix") -> "QMatrix":
        if (self.nrows, self.ncols) != (other.nrows, other.ncols):
            raise LinalgError("matrix addition shape mismatch")
        return QMatrix([
            [a + b for a, b in zip(r1, r2)]
            for r1, r2 in zip(self.rows, other.rows)
        ])

    # ------------------------------------------------------------------
    # Elimination
    # ------------------------------------------------------------------
    def _eliminate(self):
        """The cached single elimination pass.

        Runs Gauss–Jordan once over ``[A | I]`` and stores
        ``(reduced_rows, pivots, transform_rows)`` where
        ``transform · A = reduced`` is the RREF of ``A``.  Every
        elimination-based operation reads this cache.
        """
        if self._elimination is None:
            width = self.ncols
            height = self.nrows
            rows: List[List[Fraction]] = [
                list(row) + [_ONE if i == j else _ZERO for j in range(height)]
                for i, row in enumerate(self.rows)
            ]
            pivots: List[int] = []
            pivot_row = 0
            for col in range(width):
                chosen = None
                for r in range(pivot_row, height):
                    if rows[r][col] != 0:
                        chosen = r
                        break
                if chosen is None:
                    continue
                rows[pivot_row], rows[chosen] = rows[chosen], rows[pivot_row]
                pivot_value = rows[pivot_row][col]
                if pivot_value != 1:
                    rows[pivot_row] = [v / pivot_value for v in rows[pivot_row]]
                for r in range(height):
                    if r != pivot_row and rows[r][col] != 0:
                        factor = rows[r][col]
                        pivot = rows[pivot_row]
                        rows[r] = [a - factor * b
                                   for a, b in zip(rows[r], pivot)]
                pivots.append(col)
                pivot_row += 1
                if pivot_row == height:
                    break
            reduced = tuple(tuple(row[:width]) for row in rows)
            transform = tuple(tuple(row[width:]) for row in rows)
            self._elimination = (reduced, tuple(pivots), transform)
        return self._elimination

    def rref(self) -> Tuple["QMatrix", Tuple[int, ...]]:
        """Reduced row echelon form and the pivot column indices."""
        reduced, pivots, _ = self._eliminate()
        return QMatrix(reduced), pivots

    def rank(self) -> int:
        _, pivots, _ = self._eliminate()
        return len(pivots)

    def det(self) -> Fraction:
        """Determinant via cached fraction-free Bareiss elimination."""
        if not self.is_square():
            raise LinalgError("determinant of a non-square matrix")
        if self._det is None:
            self._det = self._bareiss_det()
        return self._det

    def _bareiss_det(self) -> Fraction:
        """Bareiss' fraction-free algorithm: rows are scaled to
        integers and every intermediate division is exact, so no
        Fraction normalization happens in the inner loop."""
        size = self.nrows
        if size == 0:
            return Fraction(1)
        denominator = 1
        mat: List[List[int]] = []
        for row in self.rows:
            common = 1
            for value in row:
                common = common // gcd(common, value.denominator) * value.denominator
            denominator *= common
            mat.append([int(value * common) for value in row])
        sign = 1
        previous = 1
        for k in range(size - 1):
            if mat[k][k] == 0:
                chosen = None
                for r in range(k + 1, size):
                    if mat[r][k] != 0:
                        chosen = r
                        break
                if chosen is None:
                    return Fraction(0)
                mat[k], mat[chosen] = mat[chosen], mat[k]
                sign = -sign
            pivot = mat[k][k]
            row_k = mat[k]
            for i in range(k + 1, size):
                row_i = mat[i]
                lead = row_i[k]
                for j in range(k + 1, size):
                    row_i[j] = (row_i[j] * pivot - lead * row_k[j]) // previous
                row_i[k] = 0
            previous = pivot
        return Fraction(sign * mat[size - 1][size - 1], denominator)

    def is_nonsingular(self) -> bool:
        return self.is_square() and self.det() != 0

    def inverse(self) -> "QMatrix":
        if not self.is_square():
            raise LinalgError("inverse of a non-square matrix")
        _, pivots, transform = self._eliminate()
        if pivots != tuple(range(self.nrows)):
            raise LinalgError("matrix is singular")
        return QMatrix(transform)

    def solve(self, b: Sequence[Scalar]) -> Optional[QVector]:
        """A particular solution of ``A x = b``, or ``None`` when
        inconsistent.  Free variables are set to zero.

        Uses the cached elimination: with ``T·A = R`` the system is
        consistent iff ``(T·b)_i = 0`` on every zero row of ``R``."""
        if len(b) != self.nrows:
            raise LinalgError(f"solve: {self.nrows} rows vs rhs of {len(b)}")
        bs = vector(b)
        _, pivots, transform = self._eliminate()
        transformed = [dot(row, bs) for row in transform]
        for r in range(len(pivots), self.nrows):
            if transformed[r] != 0:
                return None  # zero row of R with non-zero rhs: inconsistent
        solution = [Fraction(0)] * self.ncols
        for row_index, col in enumerate(pivots):
            solution[col] = transformed[row_index]
        return tuple(solution)

    def nullspace(self) -> List[QVector]:
        """A basis of ``{x : A x = 0}``."""
        reduced, pivots, _ = self._eliminate()
        pivot_set = set(pivots)
        free_columns = [j for j in range(self.ncols) if j not in pivot_set]
        basis: List[QVector] = []
        for free in free_columns:
            candidate = [Fraction(0)] * self.ncols
            candidate[free] = Fraction(1)
            for row_index, pivot_col in enumerate(pivots):
                candidate[pivot_col] = -reduced[row_index][free]
            basis.append(tuple(candidate))
        return basis

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QMatrix):
            return NotImplemented
        return self.rows == other.rows

    def __hash__(self) -> int:
        return hash(self.rows)

    def __repr__(self) -> str:
        body = "; ".join(
            "[" + ", ".join(str(v) for v in row) + "]" for row in self.rows
        )
        return f"QMatrix({self.nrows}x{self.ncols}: {body})"

    def to_int_rows(self) -> List[List[int]]:
        """Rows as ints; raises when any entry is non-integral."""
        result = []
        for row in self.rows:
            ints = []
            for value in row:
                if value.denominator != 1:
                    raise LinalgError(f"entry {value} is not an integer")
                ints.append(value.numerator)
            result.append(ints)
        return result


def gaussian_det(matrix: QMatrix) -> Fraction:
    """Textbook Fraction-arithmetic Gaussian determinant.

    This is the pre-Bareiss reference implementation, kept as the
    ground truth the fraction-free path is property-tested against
    (and as the ablation baseline for ``bench_engine.py``).
    """
    if not matrix.is_square():
        raise LinalgError("determinant of a non-square matrix")
    rows = [list(row) for row in matrix.rows]
    size = matrix.nrows
    determinant = Fraction(1)
    for col in range(size):
        chosen = None
        for r in range(col, size):
            if rows[r][col] != 0:
                chosen = r
                break
        if chosen is None:
            return Fraction(0)
        if chosen != col:
            rows[col], rows[chosen] = rows[chosen], rows[col]
            determinant = -determinant
        determinant *= rows[col][col]
        inv = Fraction(1) / rows[col][col]
        for r in range(col + 1, size):
            if rows[r][col] != 0:
                factor = rows[r][col] * inv
                rows[r] = [a - factor * b for a, b in zip(rows[r], rows[col])]
    return determinant
