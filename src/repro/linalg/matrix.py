"""Exact rational matrices.

Everything proof-carrying in this library (span membership for Lemma
31, nonsingularity for Lemma 40, cone membership for Lemma 55/56) runs
on exact :class:`fractions.Fraction` arithmetic — the matrices involved
(radix-``T`` Vandermonde matrices) are catastrophically ill-conditioned
for floating point.

:class:`QMatrix` is a small, immutable, dependency-free implementation
of the handful of operations we need: RREF with pivot tracking, rank,
determinant, inverse, linear solve, matrix/vector products, and
nullspace bases.  It is not a general numerics library and does not try
to be one.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.errors import LinalgError

Scalar = Fraction | int
QVector = Tuple[Fraction, ...]


def _to_fraction(value) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise LinalgError(
        f"exact matrices accept int/Fraction entries only, got {type(value).__name__}"
    )


def vector(values: Sequence[Scalar]) -> QVector:
    """Normalize a sequence into a tuple of Fractions."""
    return tuple(_to_fraction(v) for v in values)


def dot(left: Sequence[Scalar], right: Sequence[Scalar]) -> Fraction:
    """Exact dot product ``⟨u, v⟩``."""
    if len(left) != len(right):
        raise LinalgError(f"dot of lengths {len(left)} and {len(right)}")
    return sum((_to_fraction(a) * _to_fraction(b) for a, b in zip(left, right)),
               Fraction(0))


class QMatrix:
    """An immutable matrix over the rationals.

    >>> m = QMatrix([[1, 2], [3, 4]])
    >>> m.det()
    Fraction(-2, 1)
    >>> m.inverse().matvec([1, 0])
    (Fraction(-2, 1), Fraction(3, 2))
    """

    __slots__ = ("rows", "nrows", "ncols")

    def __init__(self, rows: Sequence[Sequence[Scalar]]):
        normalized: List[QVector] = [vector(row) for row in rows]
        widths = {len(row) for row in normalized}
        if len(widths) > 1:
            raise LinalgError(f"ragged rows with widths {sorted(widths)}")
        self.rows = tuple(normalized)
        self.nrows = len(self.rows)
        self.ncols = next(iter(widths)) if widths else 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity(size: int) -> "QMatrix":
        return QMatrix([
            [Fraction(1) if i == j else Fraction(0) for j in range(size)]
            for i in range(size)
        ])

    @staticmethod
    def zeros(nrows: int, ncols: int) -> "QMatrix":
        return QMatrix([[Fraction(0)] * ncols for _ in range(nrows)])

    @staticmethod
    def from_columns(columns: Sequence[Sequence[Scalar]]) -> "QMatrix":
        if not columns:
            return QMatrix([])
        height = len(columns[0])
        if any(len(c) != height for c in columns):
            raise LinalgError("columns of unequal height")
        return QMatrix([[columns[j][i] for j in range(len(columns))]
                        for i in range(height)])

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def entry(self, i: int, j: int) -> Fraction:
        return self.rows[i][j]

    def row(self, i: int) -> QVector:
        return self.rows[i]

    def column(self, j: int) -> QVector:
        return tuple(row[j] for row in self.rows)

    def columns(self) -> List[QVector]:
        return [self.column(j) for j in range(self.ncols)]

    def is_square(self) -> bool:
        return self.nrows == self.ncols

    def transpose(self) -> "QMatrix":
        return QMatrix([[self.rows[i][j] for i in range(self.nrows)]
                        for j in range(self.ncols)])

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def matvec(self, x: Sequence[Scalar]) -> QVector:
        if len(x) != self.ncols:
            raise LinalgError(f"matvec: {self.ncols} columns vs vector of {len(x)}")
        xs = vector(x)
        return tuple(dot(row, xs) for row in self.rows)

    def matmul(self, other: "QMatrix") -> "QMatrix":
        if self.ncols != other.nrows:
            raise LinalgError(
                f"matmul: {self.nrows}x{self.ncols} times {other.nrows}x{other.ncols}"
            )
        other_cols = other.columns()
        return QMatrix([
            [dot(row, col) for col in other_cols]
            for row in self.rows
        ])

    def __mul__(self, other):
        if isinstance(other, QMatrix):
            return self.matmul(other)
        return NotImplemented

    def scale(self, factor: Scalar) -> "QMatrix":
        f = _to_fraction(factor)
        return QMatrix([[f * v for v in row] for row in self.rows])

    def add(self, other: "QMatrix") -> "QMatrix":
        if (self.nrows, self.ncols) != (other.nrows, other.ncols):
            raise LinalgError("matrix addition shape mismatch")
        return QMatrix([
            [a + b for a, b in zip(r1, r2)]
            for r1, r2 in zip(self.rows, other.rows)
        ])

    # ------------------------------------------------------------------
    # Elimination
    # ------------------------------------------------------------------
    def rref(self) -> Tuple["QMatrix", Tuple[int, ...]]:
        """Reduced row echelon form and the pivot column indices."""
        rows = [list(row) for row in self.rows]
        pivots: List[int] = []
        pivot_row = 0
        for col in range(self.ncols):
            chosen = None
            for r in range(pivot_row, len(rows)):
                if rows[r][col] != 0:
                    chosen = r
                    break
            if chosen is None:
                continue
            rows[pivot_row], rows[chosen] = rows[chosen], rows[pivot_row]
            pivot_value = rows[pivot_row][col]
            rows[pivot_row] = [v / pivot_value for v in rows[pivot_row]]
            for r in range(len(rows)):
                if r != pivot_row and rows[r][col] != 0:
                    factor = rows[r][col]
                    rows[r] = [a - factor * b for a, b in zip(rows[r], rows[pivot_row])]
            pivots.append(col)
            pivot_row += 1
            if pivot_row == len(rows):
                break
        return QMatrix(rows), tuple(pivots)

    def rank(self) -> int:
        _, pivots = self.rref()
        return len(pivots)

    def det(self) -> Fraction:
        if not self.is_square():
            raise LinalgError("determinant of a non-square matrix")
        rows = [list(row) for row in self.rows]
        size = self.nrows
        determinant = Fraction(1)
        for col in range(size):
            chosen = None
            for r in range(col, size):
                if rows[r][col] != 0:
                    chosen = r
                    break
            if chosen is None:
                return Fraction(0)
            if chosen != col:
                rows[col], rows[chosen] = rows[chosen], rows[col]
                determinant = -determinant
            determinant *= rows[col][col]
            inv = Fraction(1) / rows[col][col]
            for r in range(col + 1, size):
                if rows[r][col] != 0:
                    factor = rows[r][col] * inv
                    rows[r] = [a - factor * b for a, b in zip(rows[r], rows[col])]
        return determinant

    def is_nonsingular(self) -> bool:
        return self.is_square() and self.det() != 0

    def inverse(self) -> "QMatrix":
        if not self.is_square():
            raise LinalgError("inverse of a non-square matrix")
        size = self.nrows
        augmented = QMatrix([
            list(self.rows[i]) + list(QMatrix.identity(size).rows[i])
            for i in range(size)
        ])
        reduced, pivots = augmented.rref()
        if tuple(pivots) != tuple(range(size)):
            raise LinalgError("matrix is singular")
        return QMatrix([row[size:] for row in reduced.rows])

    def solve(self, b: Sequence[Scalar]) -> Optional[QVector]:
        """A particular solution of ``A x = b``, or ``None`` when
        inconsistent.  Free variables are set to zero."""
        if len(b) != self.nrows:
            raise LinalgError(f"solve: {self.nrows} rows vs rhs of {len(b)}")
        bs = vector(b)
        augmented = QMatrix([list(row) + [bs[i]] for i, row in enumerate(self.rows)])
        reduced, pivots = augmented.rref()
        if self.ncols in pivots:
            return None  # pivot in the augmented column: inconsistent
        solution = [Fraction(0)] * self.ncols
        for row_index, col in enumerate(pivots):
            solution[col] = reduced.rows[row_index][-1]
        return tuple(solution)

    def nullspace(self) -> List[QVector]:
        """A basis of ``{x : A x = 0}``."""
        reduced, pivots = self.rref()
        pivot_set = set(pivots)
        free_columns = [j for j in range(self.ncols) if j not in pivot_set]
        basis: List[QVector] = []
        for free in free_columns:
            candidate = [Fraction(0)] * self.ncols
            candidate[free] = Fraction(1)
            for row_index, pivot_col in enumerate(pivots):
                candidate[pivot_col] = -reduced.rows[row_index][free]
            basis.append(tuple(candidate))
        return basis

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QMatrix):
            return NotImplemented
        return self.rows == other.rows

    def __hash__(self) -> int:
        return hash(self.rows)

    def __repr__(self) -> str:
        body = "; ".join(
            "[" + ", ".join(str(v) for v in row) + "]" for row in self.rows
        )
        return f"QMatrix({self.nrows}x{self.ncols}: {body})"

    def to_int_rows(self) -> List[List[int]]:
        """Rows as ints; raises when any entry is non-integral."""
        result = []
        for row in self.rows:
            ints = []
            for value in row:
                if value.denominator != 1:
                    raise LinalgError(f"entry {value} is not an integer")
                ints.append(value.numerator)
            result.append(ints)
        return result
