"""Deadlines and work budgets for counting work (DESIGN.md §14).

A :class:`Budget` bounds one request two ways at once:

* a **wall-clock deadline** (``deadline_ms``) — the guarantee an
  operator actually cares about: no request occupies a pool thread
  past its deadline (to within the check stride);
* a **work budget** (``max_steps``) — a machine-independent bound in
  *kernel steps* (backtracking search nodes, DP table entries).  Unlike
  the deadline it is deterministic: the same instance exhausts the
  same budget at the same step on every machine.

The budget is installed around a request with :func:`use_budget`
(thread-local, so the daemon's pool threads and batch workers never
see each other's budgets) and the kernels fetch it once per count via
:func:`active_budget`.  The kernels call :meth:`Budget.charge` every
``2^k`` iterations (1024 search nodes, 256 table entries) — one int
test per iteration when a budget is active, a single ``is not None``
test per count when none is — which keeps the overhead inside the
bench gate's ≤2% envelope while bounding the overshoot past a
deadline to one check stride.

Exhaustion raises :class:`BudgetExceeded` carrying partial stats
(reason, steps charged, elapsed wall clock); the request layer turns
it into a structured ``budget-exceeded`` error record instead of an
opaque failure.  When the *work* budget trips inside the DP backend
but wall-clock remains, the engine may degrade to backtracking once
(:meth:`Budget.allow_degrade`) — the DP's table-size bet went wrong,
but the deadline still has room for the O(n)-memory backend.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Optional

from repro.errors import ReproError

# Module-wide budget observability (same scoping as the bitset /
# intern counters: budgets are consulted by shared kernel code).
_BUDGET_COUNTERS = {
    "exceeded_deadline": 0,
    "exceeded_steps": 0,
    "injected": 0,
    "degraded": 0,
}


def budget_stats() -> Dict[str, int]:
    """Counters of the budget layer (for ``stats()`` / the registry)."""
    return dict(_BUDGET_COUNTERS)


class BudgetExceeded(ReproError):
    """A count ran past its deadline or work budget.

    Carries the partial stats of the interrupted count: ``reason`` is
    ``"deadline"``, ``"steps"`` or ``"injected"`` (the deterministic
    fault-injection trigger), ``steps`` is the kernel work charged so
    far, ``elapsed_ms`` the wall clock consumed.
    """

    def __init__(self, reason: str, steps: int = 0,
                 elapsed_ms: float = 0.0,
                 deadline_ms: Optional[float] = None,
                 max_steps: Optional[int] = None):
        self.reason = reason
        self.steps = steps
        self.elapsed_ms = elapsed_ms
        self.deadline_ms = deadline_ms
        self.max_steps = max_steps
        if reason == "deadline":
            detail = (f"deadline of {deadline_ms:.0f}ms exceeded after "
                      f"{elapsed_ms:.1f}ms ({steps} kernel steps)")
        elif reason == "steps":
            detail = (f"work budget of {max_steps} kernel steps exceeded "
                      f"({elapsed_ms:.1f}ms elapsed)")
        else:
            detail = f"fault injection tripped the budget ({reason})"
        super().__init__(detail)

    def to_record(self) -> Dict[str, object]:
        """The structured payload of a ``budget-exceeded`` error record."""
        record: Dict[str, object] = {
            "reason": self.reason,
            "steps": self.steps,
        }
        if self.deadline_ms is not None:
            record["deadline_ms"] = self.deadline_ms
        if self.max_steps is not None:
            record["max_steps"] = self.max_steps
        return record


class Budget:
    """One request's wall-clock deadline and kernel work budget.

    Either bound may be ``None``; a budget with neither is refused
    (it could never trip, and silently accepting it would mask a
    configuration mistake).  ``charge(n)`` accounts ``n`` kernel steps
    and raises :class:`BudgetExceeded` when a bound is crossed.

    A budget is owned by one request on one thread; it is not safe to
    share across threads (and never needs to be — :func:`use_budget`
    scopes it thread-locally).
    """

    __slots__ = ("deadline_ms", "max_steps", "steps", "started_at",
                 "_deadline_at", "_steps_enforced")

    def __init__(self, deadline_ms: Optional[float] = None,
                 max_steps: Optional[int] = None):
        if deadline_ms is None and max_steps is None:
            raise ReproError(
                "Budget needs a deadline_ms and/or a max_steps bound")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ReproError(f"deadline_ms must be > 0, got {deadline_ms}")
        if max_steps is not None and max_steps <= 0:
            raise ReproError(f"max_steps must be > 0, got {max_steps}")
        self.deadline_ms = deadline_ms
        self.max_steps = max_steps
        self.steps = 0
        self.started_at = time.monotonic()
        self._deadline_at = None if deadline_ms is None \
            else self.started_at + deadline_ms / 1000.0
        self._steps_enforced = max_steps is not None

    def elapsed_ms(self) -> float:
        return (time.monotonic() - self.started_at) * 1000.0

    def remaining_ms(self) -> Optional[float]:
        """Wall clock left before the deadline (``None`` = unbounded)."""
        if self._deadline_at is None:
            return None
        return max(0.0, (self._deadline_at - time.monotonic()) * 1000.0)

    def charge(self, steps: int = 1) -> None:
        """Account kernel work; raise when a bound is crossed."""
        self.steps += steps
        if self._steps_enforced and self.steps > self.max_steps:
            _BUDGET_COUNTERS["exceeded_steps"] += 1
            raise BudgetExceeded("steps", steps=self.steps,
                                 elapsed_ms=self.elapsed_ms(),
                                 deadline_ms=self.deadline_ms,
                                 max_steps=self.max_steps)
        if self._deadline_at is not None \
                and time.monotonic() > self._deadline_at:
            _BUDGET_COUNTERS["exceeded_deadline"] += 1
            raise BudgetExceeded("deadline", steps=self.steps,
                                 elapsed_ms=self.elapsed_ms(),
                                 deadline_ms=self.deadline_ms,
                                 max_steps=self.max_steps)

    def allow_degrade(self) -> bool:
        """May the engine retry this request once under backtracking?

        Granted when the *work* budget tripped but the wall clock still
        has room: the steps bound is lifted (the retry runs under the
        deadline alone, which is the bound the operator cares about)
        and subsequent calls return ``False`` — one retry, ever.
        Without a deadline there is nothing left to bound the retry,
        so a steps-only budget never degrades.
        """
        if not self._steps_enforced or self._deadline_at is None:
            return False
        if time.monotonic() > self._deadline_at:
            return False
        self._steps_enforced = False
        _BUDGET_COUNTERS["degraded"] += 1
        return True

    def __repr__(self) -> str:
        return (f"Budget(deadline_ms={self.deadline_ms}, "
                f"max_steps={self.max_steps}, steps={self.steps})")


_ACTIVE = threading.local()


def active_budget() -> Optional[Budget]:
    """The budget installed on this thread, if any."""
    return getattr(_ACTIVE, "budget", None)


def injected_exceeded() -> BudgetExceeded:
    """A :class:`BudgetExceeded` for a fault-injection trip.

    The ``engine.step`` fault point raises through this constructor so
    injected trips are counted apart from organic ones.
    """
    _BUDGET_COUNTERS["injected"] += 1
    budget = active_budget()
    if budget is None:
        return BudgetExceeded("injected")
    return BudgetExceeded("injected", steps=budget.steps,
                          elapsed_ms=budget.elapsed_ms(),
                          deadline_ms=budget.deadline_ms,
                          max_steps=budget.max_steps)


def may_degrade(exc: BudgetExceeded) -> bool:
    """Arbiter of the one-shot DP→backtracking degradation.

    Consulted by the engine (``strategy=auto`` only) when the DP
    backend trips a budget.  A *deadline* trip never degrades — the
    wall clock is spent either way.  A *steps* trip degrades through
    :meth:`Budget.allow_degrade` (work budget lifted, deadline keeps
    guarding, one retry ever).  An *injected* trip degrades whenever
    the deadline (if any) still has room — the deterministic handle
    the fault harness uses to exercise this path.
    """
    if exc.reason == "deadline":
        return False
    budget = active_budget()
    if exc.reason == "injected":
        if budget is not None:
            remaining = budget.remaining_ms()
            if remaining is not None and remaining <= 0.0:
                return False
        _BUDGET_COUNTERS["degraded"] += 1
        return True
    if budget is None:
        return False
    return budget.allow_degrade()


@contextmanager
def use_budget(budget: Optional[Budget]):
    """Install ``budget`` thread-locally for the duration of the block.

    ``None`` is accepted and is a no-op (callers thread an optional
    budget through without branching).  Nested budgets shadow — the
    inner request wins, the outer budget is restored on exit.
    """
    if budget is None:
        yield None
        return
    previous = active_budget()
    _ACTIVE.budget = budget
    try:
        yield budget
    finally:
        _ACTIVE.budget = previous
