"""Fault-tolerant execution layer (DESIGN.md §14).

Two orthogonal primitives that every layer of the stack consults:

* :mod:`repro.faults.budget` — per-request **deadlines and work
  budgets**.  A :class:`Budget` (wall-clock deadline plus a counting
  work budget) is installed thread-locally around one request; the
  counting kernels check it every ``2^k`` search nodes / table
  entries and raise :class:`BudgetExceeded` carrying partial stats,
  so an adversarial instance can never pin an engine worker forever.
* :mod:`repro.faults.inject` — a **deterministic fault-injection
  harness**.  A :class:`FaultPlan` (counter-indexed and/or seeded
  trigger points: ``store.lookup``, ``worker.chunk``,
  ``client.connect``, ``engine.step``) is installed process-globally;
  the store, the batch workers, the daemon client and the engine
  consult it at their fault points, so every recovery path — store
  self-healing, worker-crash bisection, connect backoff, budget
  degradation — is reproducibly testable without monkeypatching
  internals.  A plan with no entries is byte-for-byte equivalent to
  no plan at all.
"""

from repro.faults.budget import (
    Budget,
    BudgetExceeded,
    active_budget,
    budget_stats,
    use_budget,
)
from repro.faults.inject import (
    FaultInjected,
    FaultPlan,
    clear_fault_plan,
    current_fault_plan,
    install_fault_plan,
    should_inject,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "FaultInjected",
    "FaultPlan",
    "active_budget",
    "budget_stats",
    "clear_fault_plan",
    "current_fault_plan",
    "install_fault_plan",
    "should_inject",
    "use_budget",
]
