"""Deterministic fault injection (DESIGN.md §14).

A :class:`FaultPlan` names *trigger points* — the places the stack
deliberately consults before doing something that can fail in
production — and decides, deterministically, which invocations of each
point fail:

====================  ====================================================
point                 consulted by
====================  ====================================================
``store.lookup``      :class:`repro.batch.cache.SQLiteHomStore` before
                      each SQLite probe (fires as a corrupt-database
                      error → exercises store self-healing)
``worker.chunk``      batch worker processes before evaluating a chunk
                      (fires as ``os._exit`` → exercises pool restart,
                      retry and poison-task bisection)
``client.connect``    :class:`repro.service.client.DaemonClient` before
                      dialing (fires as connection-refused → exercises
                      retry backoff and ``wait_until_ready``)
``engine.step``       the counting kernels at count start (fires as
                      :class:`~repro.faults.budget.BudgetExceeded` with
                      reason ``"injected"`` → exercises the structured
                      budget-exceeded path and DP→backtracking
                      degradation without wall-clock races)
====================  ====================================================

Each point's entry selects invocations three composable ways:

* ``indices`` — explicit 0-based invocation indices of that point
  (process-local counter, incremented on every consult);
* ``task_ids`` — fire whenever the consult is keyed by one of these
  ids (scheduling-independent: a poison task kills its worker no
  matter which worker drew it);
* ``probability`` + plan-level ``seed`` — a per-point
  ``random.Random(seed ^ crc32(point))`` coin, so seeded chaos lanes
  get the same fault sequence on every run.

The plan is installed **process-globally** (:func:`install_fault_plan`)
— batch workers receive it through the pool initializer, and the
``REPRO_FAULT_PLAN`` environment variable installs one at import time
for CLI chaos runs.  No plan installed (or an empty plan) means every
consult answers "no fault": the property the test suite pins is that a
fault-free plan is byte-identical to no plan at all.
"""

from __future__ import annotations

import json
import os
import random
import threading
import zlib
from typing import Dict, Optional

from repro.errors import ReproError

POINTS = ("store.lookup", "worker.chunk", "client.connect", "engine.step")


class FaultInjected(ReproError):
    """Generic injected failure (points with no native error type)."""


class _PointTrigger:
    """Compiled trigger rule of one fault point."""

    __slots__ = ("indices", "task_ids", "probability", "rng", "calls",
                 "fired")

    def __init__(self, point: str, entry, seed: int):
        if isinstance(entry, (list, tuple)):
            entry = {"indices": list(entry)}
        if not isinstance(entry, dict):
            raise ReproError(
                f"fault plan entry for {point!r} must be a list of "
                f"indices or an object, got {type(entry).__name__}")
        unknown = set(entry) - {"indices", "task_ids", "probability"}
        if unknown:
            raise ReproError(
                f"fault plan entry for {point!r} has unknown keys "
                f"{sorted(unknown)}")
        self.indices = frozenset(int(i) for i in entry.get("indices", ()))
        self.task_ids = frozenset(str(t) for t in entry.get("task_ids", ()))
        probability = entry.get("probability")
        if probability is not None:
            probability = float(probability)
            if not 0.0 <= probability <= 1.0:
                raise ReproError(
                    f"fault probability for {point!r} must be in [0, 1], "
                    f"got {probability}")
        self.probability = probability
        # Seeded per point (not per plan): two points never share a
        # coin sequence, so adding a point never shifts another's.
        self.rng = random.Random(seed ^ zlib.crc32(point.encode("utf-8")))
        self.calls = 0
        self.fired = 0

    def fire(self, key: Optional[str]) -> bool:
        index = self.calls
        self.calls += 1
        hit = index in self.indices \
            or (key is not None and key in self.task_ids) \
            or (self.probability is not None
                and self.rng.random() < self.probability)
        if hit:
            self.fired += 1
        return hit


class FaultPlan:
    """A compiled, installable fault plan.

    ``spec`` maps point names to trigger entries (see the module
    docstring); a plan-level ``"seed"`` key seeds the probability
    coins.  The spec round-trips (:meth:`to_spec`) so plans travel to
    worker processes and ``repro batch run --fault-plan`` files
    unchanged.  Consults are thread-safe (the daemon's pool threads
    share one plan).
    """

    def __init__(self, spec: Optional[Dict] = None):
        spec = dict(spec or {})
        seed = int(spec.pop("seed", 0))
        unknown = set(spec) - set(POINTS)
        if unknown:
            raise ReproError(
                f"fault plan names unknown points {sorted(unknown)}; "
                f"expected a subset of {list(POINTS)}")
        self.seed = seed
        self._spec = {point: spec[point] for point in POINTS if point in spec}
        self._triggers = {point: _PointTrigger(point, entry, seed)
                          for point, entry in self._spec.items()}
        self._lock = threading.Lock()

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                spec = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot load fault plan {path!r}: {exc}")
        if not isinstance(spec, dict):
            raise ReproError(
                f"fault plan {path!r} must be a JSON object, "
                f"got {type(spec).__name__}")
        return cls(spec)

    def to_spec(self) -> Dict:
        """The JSON-serializable spec this plan was built from."""
        spec: Dict = dict(self._spec)
        if self.seed:
            spec["seed"] = self.seed
        return spec

    def should_fire(self, point: str, key: Optional[str] = None) -> bool:
        """Consult one trigger point (increments its counter)."""
        trigger = self._triggers.get(point)
        if trigger is None:
            return False
        with self._lock:
            return trigger.fire(key)

    def fired(self) -> Dict[str, int]:
        """Fires per point so far (chaos-lane accounting)."""
        with self._lock:
            return {point: trigger.fired
                    for point, trigger in self._triggers.items()
                    if trigger.fired}

    def __repr__(self) -> str:
        return f"FaultPlan(points={sorted(self._triggers)}, seed={self.seed})"


# ----------------------------------------------------------------------
# Process-global installation
# ----------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None


def install_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` process-globally; returns the previous plan."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous


def clear_fault_plan() -> None:
    install_fault_plan(None)


def current_fault_plan() -> Optional[FaultPlan]:
    return _PLAN


def should_inject(point: str, key: Optional[str] = None) -> bool:
    """The one-line consult the fault points call.

    ``False`` with no side effects when no plan is installed — the
    production fast path is a module-global ``is None`` test.
    """
    plan = _PLAN
    if plan is None:
        return False
    return plan.should_fire(point, key)


# CLI chaos runs install a plan through the environment: the variable
# names a JSON spec file, loaded once at import.  A bad path must fail
# loudly — a chaos lane silently running fault-free would pass its
# assertions for the wrong reason.
_ENV_PLAN = os.environ.get("REPRO_FAULT_PLAN")
if _ENV_PLAN:
    install_fault_plan(FaultPlan.from_file(_ENV_PLAN))
