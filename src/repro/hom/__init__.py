"""Homomorphism search, counting, containment and evaluation matrices.

Counting architecture (DESIGN.md §6.5)
--------------------------------------
Hot-path counting runs on the **compiled engine** in
:mod:`repro.hom.engine`, over the interned integer form of
:mod:`repro.structures.interned`: a
:class:`~repro.hom.engine.TargetIndex` compiles each counting target
once (positional candidate sets, per-relation int-row sets, binary
projection maps for forward checking), a
:class:`~repro.hom.engine.SourcePlan` compiles each source once
(variable order, incident-fact lists, and a lazy tree-decomposition DP
schedule), and a :class:`~repro.hom.engine.HomEngine` memoizes counts
in an LRU cache keyed by the canonical byte key
(:func:`~repro.structures.canonical.canonical_key`) of each connected
component — so isomorphic components share one count through a single
dict probe (DESIGN.md §11).  Two counting
backends sit behind the engine (DESIGN.md §9): worst-case-exponential
backtracking with forward checking, and bag-table dynamic programming
over a nice tree decomposition (:mod:`repro.hom.decompose` /
:mod:`repro.hom.dpcount`) that is polynomial for bounded-treewidth
sources; :func:`~repro.hom.engine.choose_strategy` picks per
``(source, target)`` pair by estimated cost.  ``count_homs`` uses the
shared process-wide engine by default; construct a ``HomEngine`` to
scope the memoization (as the decision procedure and
:class:`ViewCatalog` do), or pass a plain dict for the legacy
exact-key cache.
:func:`~repro.hom.search.count_homomorphisms_direct` stays the naive
recursive ground truth that both backends are property-tested against.
"""

from repro.hom.search import (
    count_homomorphisms_direct,
    exists_homomorphism,
    find_homomorphism,
    iter_homomorphisms,
)
from repro.hom.engine import (
    HomEngine,
    SourcePlan,
    TargetIndex,
    choose_strategy,
    default_engine,
)
from repro.hom.decompose import (
    NiceDecomposition,
    TreeDecomposition,
    decompose,
    gaifman_graph,
    make_nice,
)
from repro.hom.dpcount import count_homomorphisms_dp
from repro.hom.count import count_homs, count_homs_connected, hom_vector
from repro.hom.containment import (
    are_equivalent_set,
    is_contained_set,
    is_contained_set_ucq,
    views_containing,
)
from repro.hom.matrix import answer_vector, evaluation_matrix
from repro.hom.lovasz import (
    distinguisher_battery,
    find_left_distinguisher,
    find_right_distinguisher,
    hom_count_profile,
)
from repro.hom.cores import core, core_query, is_core

__all__ = [
    "count_homomorphisms_direct",
    "exists_homomorphism",
    "find_homomorphism",
    "iter_homomorphisms",
    "HomEngine",
    "SourcePlan",
    "TargetIndex",
    "choose_strategy",
    "default_engine",
    "NiceDecomposition",
    "TreeDecomposition",
    "decompose",
    "gaifman_graph",
    "make_nice",
    "count_homomorphisms_dp",
    "count_homs",
    "count_homs_connected",
    "hom_vector",
    "are_equivalent_set",
    "is_contained_set",
    "is_contained_set_ucq",
    "views_containing",
    "answer_vector",
    "evaluation_matrix",
    "distinguisher_battery",
    "find_left_distinguisher",
    "find_right_distinguisher",
    "hom_count_profile",
    "core",
    "core_query",
    "is_core",
]
