"""Homomorphism search, counting, containment and evaluation matrices."""

from repro.hom.search import (
    count_homomorphisms_direct,
    exists_homomorphism,
    find_homomorphism,
    iter_homomorphisms,
)
from repro.hom.count import count_homs, count_homs_connected, hom_vector
from repro.hom.containment import (
    are_equivalent_set,
    is_contained_set,
    is_contained_set_ucq,
    views_containing,
)
from repro.hom.matrix import answer_vector, evaluation_matrix
from repro.hom.lovasz import (
    distinguisher_battery,
    find_left_distinguisher,
    find_right_distinguisher,
    hom_count_profile,
)
from repro.hom.cores import core, core_query, is_core

__all__ = [
    "count_homomorphisms_direct",
    "exists_homomorphism",
    "find_homomorphism",
    "iter_homomorphisms",
    "count_homs",
    "count_homs_connected",
    "hom_vector",
    "are_equivalent_set",
    "is_contained_set",
    "is_contained_set_ucq",
    "views_containing",
    "answer_vector",
    "evaluation_matrix",
    "distinguisher_battery",
    "find_left_distinguisher",
    "find_right_distinguisher",
    "hom_count_profile",
    "core",
    "core_query",
    "is_core",
]
