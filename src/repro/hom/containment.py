"""Set-semantics containment of boolean (U)CQs.

The classical Chandra–Merlin characterization (quoted in paper Section
2.1): for boolean CQs, ``q ⊆set q'`` — i.e. ``q(D) > 0 ⇒ q'(D) > 0``
for every ``D`` — holds iff ``hom(q', q)`` is non-empty, where boolean
CQs are identified with their frozen bodies.

The Theorem 3 decision procedure uses this to compute
``V = {v ∈ V0 | q ⊆set v}`` (Definition 25).

For boolean UCQs the standard lifting applies: ``Φ ⊆set Ψ`` iff every
disjunct of ``Φ`` is ⊆set some disjunct of ``Ψ``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfBooleanCQs
from repro.hom.engine import HomEngine
from repro.session import SolverSession, resolve_session


def is_contained_set(
    query: ConjunctiveQuery,
    container: ConjunctiveQuery,
    engine: Optional[HomEngine] = None,
    session: Optional[SolverSession] = None,
) -> bool:
    """``query ⊆set container`` for boolean CQs (Chandra–Merlin).

    The existence probe runs on the compiled engine (shared target
    indexes + memoized verdicts); pass ``session`` (or a bare
    ``engine``) to scope the memo.

    >>> from repro.queries.parser import parse_boolean_cq
    >>> q = parse_boolean_cq("R(x,y), R(y,z)")
    >>> v = parse_boolean_cq("R(x,y)")
    >>> is_contained_set(q, v)
    True
    >>> is_contained_set(v, q)
    False
    """
    _require_boolean(query)
    _require_boolean(container)
    session = resolve_session(session, engine)
    return session.exists(container.frozen_body(), query.frozen_body())


def are_equivalent_set(left: ConjunctiveQuery, right: ConjunctiveQuery,
                       session: Optional[SolverSession] = None) -> bool:
    """Set-semantics equivalence (mutual containment)."""
    session = resolve_session(session)
    return (is_contained_set(left, right, session=session)
            and is_contained_set(right, left, session=session))


def is_contained_set_ucq(query: UnionOfBooleanCQs, container: UnionOfBooleanCQs) -> bool:
    """``Φ ⊆set Ψ`` for boolean UCQs."""
    return all(
        any(is_contained_set(phi, psi) for psi in container.disjuncts)
        for phi in query.disjuncts
    )


def views_containing(
    query: ConjunctiveQuery,
    views,
    engine: Optional[HomEngine] = None,
    session: Optional[SolverSession] = None,
) -> list:
    """Definition 25: the sublist of ``views`` that ``query`` is
    ⊆set-contained in (these are the views that can never answer 0 on a
    structure where ``q`` answers positively)."""
    session = resolve_session(session, engine)
    return [view for view in views
            if is_contained_set(query, view, session=session)]


def _require_boolean(query: ConjunctiveQuery) -> None:
    if not isinstance(query, ConjunctiveQuery):
        raise QueryError(f"expected a CQ, got {query!r}")
    if not query.is_boolean():
        raise QueryError(
            f"containment here is for boolean CQs; got free variables {query.free}"
        )
