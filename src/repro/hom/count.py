"""Homomorphism counting — the engine behind every answer count.

``count_homs(A, B)`` counts homomorphisms from a structure ``A`` into a
target that may be a concrete :class:`~repro.structures.structure.Structure`
or a lazy :class:`~repro.structures.expression.StructureExpression`.

Strategy (all identities are Lemma 4 of the paper):

1. factor ``A`` into connected components and multiply
   (``|hom(A+B, C)| = |hom(A,C)|·|hom(B,C)|``);
2. evaluate each *connected* component against the target tree:

   * ``Sum``:     add over terms, scaled by coefficients (4(1)+4(2);
     needs connectedness — guaranteed by step 1; sums are nullary-free
     by construction);
   * ``Product``: multiply over factors (4(3) — any source);
   * ``Power``:   exponentiate (4(4));
   * ``Leaf``:    backtracking count, with two fast paths — a single
     isolated vertex counts ``|dom|``, a single 0-ary fact counts
     membership.

Counts of (component, leaf) pairs are memoized through the compiled
engine of :mod:`repro.hom.engine`: pass no cache to use the shared
process-wide :class:`~repro.hom.engine.HomEngine` (targets compiled
once, counts shared across isomorphic components, each leaf count
routed to backtracking or tree-decomposition DP by the engine's cost
model — see DESIGN.md §9), pass ``session=`` (or a
:class:`~repro.session.SolverSession` / a
:class:`~repro.hom.engine.HomEngine` as the cache) to scope the
memoization (or to force a backend via the ``strategy`` knob), or pass
a plain ``dict`` for the legacy exact-key cache — dict-cached counting
deliberately runs the *naive* recursive backtracker, so it stays an
independent audit path for engine-produced results (the witness
verifier relies on this).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from repro.errors import StructureError
from repro.structures.components import connected_components
from repro.structures.expression import (
    LeafExpression,
    PowerExpression,
    ProductExpression,
    StructureExpression,
    SumExpression,
    as_expression,
)
from repro.structures.structure import Structure
from repro.hom.engine import HomEngine, default_engine
from repro.hom.search import count_homomorphisms_direct
from repro.session import SolverSession

Target = Structure | StructureExpression
CountCache = Dict[Tuple[Structure, Structure], int]
Cache = Union[CountCache, HomEngine, SolverSession, None]


def _unwrap(cache: Cache, session: Optional[SolverSession]) -> Cache:
    """Collapse the cache/session calling conventions onto one value.

    An explicit ``session`` wins (its engine carries the memo); a
    :class:`SolverSession` passed *as* the cache is unwrapped to its
    engine; dicts and engines pass through untouched.
    """
    if session is not None:
        return session.engine
    if isinstance(cache, SolverSession):
        return cache.engine
    return cache


def count_homs(
    source: Structure,
    target: Target,
    cache: Cache = None,
    session: Optional[SolverSession] = None,
) -> int:
    """``|hom(source, target)|`` with component factorization.

    >>> from repro.structures.generators import path_structure
    >>> count_homs(path_structure(['R']), path_structure(['R', 'R']))
    2
    """
    cache = _unwrap(cache, session)
    expression = as_expression(target)
    total = 1
    for component in connected_components(source):
        total *= _count_connected(component, expression, cache)
        if total == 0:
            return 0
    return total


def count_homs_connected(
    component: Structure,
    target: Target,
    cache: Cache = None,
    session: Optional[SolverSession] = None,
) -> int:
    """Count for a source already known to be connected (no re-split)."""
    return _count_connected(component, as_expression(target),
                            _unwrap(cache, session))


def _count_connected(
    component: Structure,
    target: StructureExpression,
    cache: Cache,
) -> int:
    if isinstance(target, LeafExpression):
        return _count_into_leaf(component, target.structure, cache)
    if isinstance(target, SumExpression):
        # Lemma 4(1)/(2): valid because `component` is connected and the
        # sum's operands carry no 0-ary facts (enforced at construction).
        _require_summable(component)
        return sum(
            coefficient * _count_connected(component, term, cache)
            for coefficient, term in target.terms
        )
    if isinstance(target, ProductExpression):
        result = 1
        for factor in target.factors:
            result *= _count_connected(component, factor, cache)
            if result == 0:
                return 0
        if not target.factors:
            return _count_into_unit(component, target)
        return result
    if isinstance(target, PowerExpression):
        if target.exponent == 0:
            return _count_into_unit(component, target)
        return _count_connected(component, target.base, cache) ** target.exponent
    raise StructureError(f"unknown expression node {target!r}")


def _count_into_leaf(
    component: Structure,
    leaf: Structure,
    cache: Cache,
) -> int:
    if isinstance(cache, HomEngine):
        return cache.count_connected_leaf(component, leaf)
    facts = component.facts()
    if not facts:
        # Fast path: a single isolated vertex maps anywhere in the domain.
        if len(component.domain()) == 1:
            return len(leaf.domain())
    elif len(facts) == 1 and not component.domain():
        # Fast path: a lone 0-ary fact is a membership test — decided
        # before any candidate machinery is built.
        only = next(iter(facts))
        if not only.terms:
            return 1 if leaf.has_fact(only.relation) else 0
    if cache is None:
        return default_engine().count_connected_leaf(component, leaf)
    # Legacy dict cache: exact (component, leaf) keys, caller-owned,
    # counted by the naive recursive backtracker.  This path is kept
    # *independent of the engine* on purpose — the witness verifier
    # uses it to audit engine-produced decisions with different code.
    key = (component, leaf)
    cached = cache.get(key)
    if cached is None:
        cached = count_homomorphisms_direct(component, leaf)
        cache[key] = cached
    return cached


def _count_into_unit(component: Structure, node: StructureExpression) -> int:
    """Counts into ``A^0``: the all-loops singleton over ``node``'s schema.

    Every constant must map to α, so the count is 1 exactly when each
    fact of the component exists as the full loop — i.e. when the
    component's relations are all in the unit's schema — else 0.
    """
    schema = node.schema()
    for fact in component.facts():
        if fact.relation not in schema or schema.arity(fact.relation) != len(fact.terms):
            return 0
    return 1


def _require_summable(component: Structure) -> None:
    for fact in component.facts():
        if not fact.terms:
            raise StructureError(
                "cannot count a 0-ary fact into a disjoint union; "
                "Lemma 4(1) fails for nullary sources"
            )


def hom_vector(sources, target: Target, cache: Cache = None,
               session: Optional[SolverSession] = None):
    """Counts for many sources against one target, as a list of ints."""
    cache = _unwrap(cache, session)
    return [count_homs(source, target, cache) for source in sources]
