"""Evaluation matrices (Definition 37).

For basis queries ``W = {w_1, ..., w_k}`` and structures
``S = {s_1, ..., s_m}``, the evaluation matrix is
``M_S(i, j) = |hom(w_i, s_j)| = w_i(s_j)``.

Targets may be lazy expressions; counts are exact integers embedded in
a rational :class:`~repro.linalg.matrix.QMatrix` so the rest of the
pipeline (inverse, cone membership) stays exact.  Counting goes through
the compiled engine (:mod:`repro.hom.engine`): every target column is
compiled once and shared across the ``k`` basis rows, isomorphic basis
components share one count, and each counted component's compiled plan
— in particular its tree decomposition, when the cost model routes it
to the DP backend — is built once (module-level plan cache, keyed by
the engine's canonical component representatives) and reused across
the whole family of ``m`` target columns.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hom.count import Cache, CountCache, count_homs
from repro.linalg.matrix import QMatrix
from repro.session import SolverSession, resolve_session
from repro.structures.expression import StructureExpression
from repro.structures.structure import Structure

__all__ = ["CountCache", "answer_vector", "evaluation_matrix"]


def _resolve_cache(cache: Cache, session: Optional[SolverSession]) -> Cache:
    """Session (explicit, then default) wins; dict caches pass through."""
    if session is not None or cache is None:
        return resolve_session(session).engine
    return cache


def evaluation_matrix(
    basis: Sequence[Structure],
    targets: Sequence[Structure | StructureExpression],
    cache: Cache = None,
    session: Optional[SolverSession] = None,
) -> QMatrix:
    """The k×m matrix ``M(i,j) = |hom(basis[i], targets[j])|``."""
    cache = _resolve_cache(cache, session)
    rows = [
        [count_homs(w, s, cache) for s in targets]
        for w in basis
    ]
    return QMatrix(rows)


def answer_vector(
    basis: Sequence[Structure],
    target: Structure | StructureExpression,
    cache: Cache = None,
    session: Optional[SolverSession] = None,
) -> list:
    """The column ``(w_1(D), ..., w_k(D))`` for a single structure —
    a point of the answer space P of Definition 51 when ``D ∈ S``."""
    cache = _resolve_cache(cache, session)
    return [count_homs(w, target, cache) for w in basis]
