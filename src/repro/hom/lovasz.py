"""Lovász-style distinguishers (Lemmas 43 and 44).

Lemma 43 (Chaudhuri–Vardi / Fisk): ``G ≅ G'`` iff ``|hom(G, H)| =
|hom(G', H)|`` for *every* ``H``.  Lemma 44 (Lovász 1967) is the mirror
statement for left hom-counts.  Step 1 of the Lemma 40 construction
needs the effective content: *find* an ``H`` whose counts differ for a
given non-isomorphic pair.

This module exposes that search in both directions, with the same
candidate strategy as the good-basis builder (deterministic heuristics,
then seeded random structures), plus a convenience
``hom_count_profile`` used by tests to compare structures through a
battery of probes.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence

from repro.errors import SearchExhaustedError
from repro.hom.count import count_homs
from repro.structures.isomorphism import are_isomorphic
from repro.structures.generators import random_structure
from repro.structures.operations import product, unit_structure
from repro.structures.schema import Schema
from repro.structures.structure import Structure


def hom_count_profile(
    structure: Structure, probes: Sequence[Structure]
) -> tuple:
    """The vector ``(|hom(structure, p)|)_p`` over the probe battery."""
    return tuple(count_homs(structure, probe) for probe in probes)


def find_right_distinguisher(
    left: Structure,
    right: Structure,
    rng: Optional[random.Random] = None,
    budget: int = 5000,
) -> Optional[Structure]:
    """An ``H`` with ``|hom(left, H)| ≠ |hom(right, H)|``, or ``None``
    when the inputs are isomorphic (Lemma 43: none exists then).

    Raises :class:`SearchExhaustedError` if non-isomorphic inputs defeat
    the budget (Lemma 43 guarantees the search is not in vain).
    """
    if are_isomorphic(left, right):
        return None
    rng = rng or random.Random(0x10A5)
    for candidate in _candidates(left, right, rng, budget):
        if count_homs(left, candidate) != count_homs(right, candidate):
            return candidate
    raise SearchExhaustedError(
        f"no right distinguisher found within budget {budget}"
    )


def find_left_distinguisher(
    left: Structure,
    right: Structure,
    rng: Optional[random.Random] = None,
    budget: int = 5000,
) -> Optional[Structure]:
    """Lemma 44 direction: an ``H`` with ``|hom(H, left)| ≠
    |hom(H, right)|``, or ``None`` for isomorphic inputs."""
    if are_isomorphic(left, right):
        return None
    rng = rng or random.Random(0x10A5)
    for candidate in _candidates(left, right, rng, budget):
        if count_homs(candidate, left) != count_homs(candidate, right):
            return candidate
    raise SearchExhaustedError(
        f"no left distinguisher found within budget {budget}"
    )


def _ambient(left: Structure, right: Structure) -> Schema:
    return left.schema.union(right.schema)


def _candidates(
    left: Structure,
    right: Structure,
    rng: random.Random,
    budget: int,
) -> Iterator[Structure]:
    ambient = _ambient(left, right)
    yield left.with_schema(ambient)
    yield right.with_schema(ambient)
    yield unit_structure(ambient)
    if not ambient.has_nullary():
        yield product(left, right).with_schema(ambient)
        yield product(left, left).with_schema(ambient)
        yield product(right, right).with_schema(ambient)
    max_size = max(len(left.domain()), len(right.domain()), 1) + 1
    produced = 0
    while produced < budget:
        size = rng.randint(1, max_size)
        density = rng.choice((0.15, 0.3, 0.5, 0.75))
        yield random_structure(ambient, size, density=density, rng=rng,
                               ensure_nonempty=True)
        produced += 1


def distinguisher_battery(
    structures: Sequence[Structure],
    rng: Optional[random.Random] = None,
    budget: int = 5000,
) -> List[Structure]:
    """Probes separating every non-isomorphic pair of ``structures`` by
    right hom-counts — a standalone version of the Step 1 search."""
    rng = rng or random.Random(0x10A5)
    probes: List[Structure] = []

    def separated(a: Structure, b: Structure) -> bool:
        return any(count_homs(a, p) != count_homs(b, p) for p in probes)

    for i, a in enumerate(structures):
        for b in structures[i + 1:]:
            if are_isomorphic(a, b) or separated(a, b):
                continue
            found = find_right_distinguisher(a, b, rng=rng, budget=budget)
            if found is not None:
                probes.append(found)
    return probes
