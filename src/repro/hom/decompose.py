"""Tree decompositions of source structures (the DP backend's frontend).

Counting homomorphisms from a bounded-treewidth source is polynomial —
``O(|B|^{tw+1})`` by dynamic programming over a tree decomposition
(Díaz–Serna–Thilikos style, the standard technique behind hom-vector
computations in Lovász-type arguments) — while the backtracking counter
of :mod:`repro.hom.engine` is worst-case exponential in the number of
source variables no matter how tree-like the source is.  This module
produces the decompositions that :mod:`repro.hom.dpcount` runs on:

1. :func:`gaifman_graph` — the primal graph of a structure: vertices
   are active-domain constants, edges join constants co-occurring in a
   fact (every fact's term set is a clique);
2. :func:`decompose` — a greedy elimination-order decomposition
   (``min-fill`` by default, ``min-degree`` as the cheap alternative),
   deterministic for a given structure: ties break on ``repr`` order;
3. :meth:`TreeDecomposition.validate` — checks the three
   decomposition invariants (vertex coverage, fact coverage,
   running-intersection connectedness) so a buggy heuristic can never
   silently corrupt counts;
4. :func:`make_nice` — conversion to a *nice* decomposition: a rooted
   tree of empty-bag leaves, single-variable ``introduce``/``forget``
   nodes and equal-bag ``join`` nodes, with an empty root bag.  The DP
   transitions in :mod:`repro.hom.dpcount` are one dict pass per node.

Elimination-order decompositions cover every fact by construction: a
fact's terms form a clique in the Gaifman graph, and when the first of
them is eliminated the rest are among its neighbours, so its bag
contains them all.  ``validate`` re-checks anyway — it is cheap and the
property tests run it over the whole random corpus.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import StructureError
from repro.structures.interned import InternedStructure
from repro.structures.structure import Structure

Constant = Hashable

HEURISTICS = ("min-fill", "min-degree")

# Nice-node kinds (ints: the DP inner loop switches on them).
LEAF, INTRODUCE, FORGET, JOIN = 0, 1, 2, 3

_NO_NEIGHBOURS: FrozenSet = frozenset()


def _adjacency_from_rows(rows) -> Dict[Constant, Set[Constant]]:
    """Primal-graph adjacency from an iterable of fact term rows
    (every row's term set becomes a clique)."""
    adjacency: Dict[Constant, Set[Constant]] = {}
    for row in rows:
        for term in row:
            adjacency.setdefault(term, set())
        distinct = set(row)
        for a in distinct:
            for b in distinct:
                if a != b:
                    adjacency[a].add(b)
    return adjacency


def gaifman_graph(structure: Structure) -> Dict[Constant, Set[Constant]]:
    """The primal (Gaifman) graph over the *active* domain.

    Isolated domain elements are excluded on purpose: the counting
    layers handle them by a ``|dom(B)|`` power, never by search.
    """
    return _adjacency_from_rows(fact.terms for fact in structure.facts())


def gaifman_graph_interned(inter: InternedStructure) -> Dict[int, Set[int]]:
    """The primal graph over the interned *active* domain (dense ints).

    The engine's DP path decomposes this graph instead of the
    constant-vertex one: the elimination loop is set-algebra over
    whatever the vertices hash as, and ints hash for free.
    """
    return _adjacency_from_rows(row for _, row in inter.iter_facts())


class TreeDecomposition:
    """Bags plus tree edges; immutable once built.

    ``bags[i]`` is a frozenset of constants, ``edges`` are index pairs
    forming a tree over the bags (a single bag has no edges).
    """

    __slots__ = ("bags", "edges", "width")

    def __init__(self, bags: Sequence[FrozenSet[Constant]],
                 edges: Sequence[Tuple[int, int]]):
        self.bags: Tuple[FrozenSet[Constant], ...] = tuple(
            frozenset(bag) for bag in bags)
        self.edges: Tuple[Tuple[int, int], ...] = tuple(
            (min(a, b), max(a, b)) for a, b in edges)
        self.width = max((len(bag) for bag in self.bags), default=0) - 1

    def validate(self, structure: Structure) -> None:
        """Raise :class:`~repro.errors.StructureError` unless this is a
        valid tree decomposition of ``structure``'s Gaifman graph:

        * every active constant appears in some bag;
        * every fact's term set is contained in some bag;
        * the edges form a tree (or forest) over the bags;
        * for each constant, the bags containing it induce a connected
          subtree (the running-intersection property).
        """
        self._validate(structure.active_domain(),
                       [frozenset(fact.terms) for fact in structure.facts()])

    def validate_interned(self, inter: InternedStructure) -> None:
        """:meth:`validate` against an interned structure (int bags)."""
        self._validate(frozenset(range(inter.n_active)),
                       [frozenset(row) for _, row in inter.iter_facts()])

    def _validate(self, active, term_sets) -> None:
        n = len(self.bags)
        for a, b in self.edges:
            if not (0 <= a < n and 0 <= b < n):
                raise StructureError(f"tree edge ({a}, {b}) out of range")
        if len(self.edges) >= n and n > 0:
            raise StructureError("decomposition edges contain a cycle")

        covered: Set[Constant] = set()
        for bag in self.bags:
            covered |= bag
        missing = active - covered
        if missing:
            raise StructureError(
                f"constants in no bag: {sorted(map(repr, missing))}")

        for terms in term_sets:
            if terms and not any(terms <= bag for bag in self.bags):
                raise StructureError(
                    f"fact over {sorted(map(repr, terms))} covered by no bag")

        # Running intersection: bags holding v must form one tree
        # component of the subgraph induced on them.
        adjacency: Dict[int, List[int]] = {i: [] for i in range(n)}
        for a, b in self.edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        for constant in active:
            holders = [i for i, bag in enumerate(self.bags) if constant in bag]
            seen = {holders[0]}
            frontier = [holders[0]]
            holder_set = set(holders)
            while frontier:
                node = frontier.pop()
                for neighbour in adjacency[node]:
                    if neighbour in holder_set and neighbour not in seen:
                        seen.add(neighbour)
                        frontier.append(neighbour)
            if seen != holder_set:
                raise StructureError(
                    f"bags containing {constant!r} are not connected")

    def __repr__(self) -> str:
        return (f"TreeDecomposition(bags={len(self.bags)}, "
                f"width={self.width})")


def _elimination_order(adjacency: Dict[Constant, Set[Constant]],
                       heuristic: str) -> List[Constant]:
    """Greedy elimination order; mutates a private copy of the graph.

    ``min-fill`` eliminates the vertex whose elimination adds the
    fewest fill edges; ``min-degree`` the vertex of least degree.  Ties
    break on ``repr`` so the order — and hence the decomposition and
    every DP table built on it — is deterministic per structure.
    """
    if heuristic not in HEURISTICS:
        raise StructureError(
            f"unknown decomposition heuristic {heuristic!r}; "
            f"expected one of {HEURISTICS}")
    graph = {v: set(neighbours) for v, neighbours in adjacency.items()}
    order: List[Constant] = []
    while graph:
        best = None
        best_score = None
        for vertex in graph:
            neighbours = graph[vertex]
            if heuristic == "min-degree":
                score = len(neighbours)
            else:
                fill = 0
                listed = list(neighbours)
                for i, a in enumerate(listed):
                    missing = neighbours - graph[a]
                    missing.discard(a)
                    fill += len(missing)
                score = fill  # double-counts symmetrically: fine for argmin
            key = (score, repr(vertex))
            if best_score is None or key < best_score:
                best, best_score = vertex, key
        neighbours = graph.pop(best)
        for a in neighbours:
            graph[a].discard(best)
            graph[a] |= neighbours - {a}
        order.append(best)
    return order


def decompose(structure: Structure,
              heuristic: str = "min-fill") -> TreeDecomposition:
    """A greedy tree decomposition of ``structure``'s Gaifman graph.

    One bag per active constant (``{v} ∪ N(v)`` at elimination time),
    parent = the bag of ``v``'s earliest-eliminated remaining
    neighbour.  Disconnected Gaifman graphs yield one subtree per
    component; the subtree roots are chained so the result is a single
    tree (harmless: the chained bags share no constants).  Structures
    with no facts (or only nullary facts) get one empty bag.
    """
    return decompose_adjacency(gaifman_graph(structure), heuristic)


def decompose_interned(inter: InternedStructure,
                       heuristic: str = "min-fill") -> TreeDecomposition:
    """:func:`decompose` over the interned Gaifman graph (int bags).

    This is what the engine's DP plans are built on: the bags, the
    nice-node orders and therefore every DP table key downstream are
    tuples of dense ints.
    """
    return decompose_adjacency(gaifman_graph_interned(inter), heuristic)


def decompose_adjacency(adjacency: Dict[Constant, Set[Constant]],
                        heuristic: str = "min-fill") -> TreeDecomposition:
    """The greedy elimination-order decomposition of a primal graph."""
    if not adjacency:
        return TreeDecomposition([frozenset()], [])
    order = _elimination_order(adjacency, heuristic)
    position = {v: i for i, v in enumerate(order)}

    graph = {v: set(neighbours) for v, neighbours in adjacency.items()}
    bags: List[FrozenSet[Constant]] = []
    edges: List[Tuple[int, int]] = []
    roots: List[int] = []
    bag_of: Dict[Constant, int] = {}
    for vertex in order:
        neighbours = graph.pop(vertex)
        for a in neighbours:
            graph[a].discard(vertex)
            graph[a] |= neighbours - {a}
        index = len(bags)
        bags.append(frozenset({vertex, *neighbours}))
        bag_of[vertex] = index
        if neighbours:
            parent = min(neighbours, key=lambda u: position[u])
            # The parent bag does not exist yet (parents eliminate
            # later); record the edge once it does, via a fixup list.
            edges.append((index, parent))  # type: ignore[arg-type]
        else:
            roots.append(index)
    fixed_edges = [(index, bag_of[parent]) for index, parent in edges]
    for previous, current in zip(roots, roots[1:]):
        fixed_edges.append((previous, current))
    bags, fixed_edges = _contract_subset_bags(bags, fixed_edges)
    return TreeDecomposition(bags, fixed_edges)


def _contract_subset_bags(
        bags: List[FrozenSet[Constant]],
        edges: List[Tuple[int, int]],
) -> Tuple[List[FrozenSet[Constant]], List[Tuple[int, int]]]:
    """Contract tree edges whose child bag is contained in its
    neighbour's bag.

    Elimination-order decompositions are full of such redundant bags
    (the drain toward the last-eliminated vertices, and early small
    bags swallowed by later cliques).  Contracting them preserves all
    three decomposition invariants — the merged bag is the larger of
    the two, so coverage and running intersection are untouched — and
    every contracted bag removes a forget/introduce (or a whole leaf
    ramp, or a join) from the nice decomposition the DP sweeps.
    Deterministic: candidates are scanned in index order.
    """
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(len(bags))}
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    alive = sorted(adjacency)
    changed = True
    while changed:
        changed = False
        for a in alive:
            into = next((b for b in sorted(adjacency[a])
                         if bags[a] <= bags[b]), None)
            if into is None:
                continue
            adjacency[into].discard(a)
            for other in adjacency[a]:
                if other != into:
                    adjacency[other].discard(a)
                    adjacency[other].add(into)
                    adjacency[into].add(other)
            adjacency[a] = set()
            alive.remove(a)
            changed = True
            break
    remap = {old: new for new, old in enumerate(alive)}
    kept_bags = [bags[old] for old in alive]
    kept_edges = [(remap[a], remap[b]) for a in alive
                  for b in adjacency[a] if a < b]
    return kept_bags, kept_edges


class NiceNode:
    """One node of a nice decomposition, in bottom-up order.

    ``kind`` is one of the module constants ``LEAF``/``INTRODUCE``/
    ``FORGET``/``JOIN``; ``order`` is the bag as a deterministically
    sorted tuple (the key layout of the node's DP table); ``var`` is
    the introduced/forgotten constant (``None`` elsewhere);
    ``var_pos`` its index in ``order`` (introduce) or in the child's
    ``order`` (forget); ``children`` are indices of earlier nodes.
    """

    __slots__ = ("kind", "order", "var", "var_pos", "children")

    def __init__(self, kind: int, order: Tuple[Constant, ...],
                 var: Optional[Constant], var_pos: int,
                 children: Tuple[int, ...]):
        self.kind = kind
        self.order = order
        self.var = var
        self.var_pos = var_pos
        self.children = children

    def __repr__(self) -> str:
        name = ("leaf", "introduce", "forget", "join")[self.kind]
        return f"NiceNode({name}, bag={self.order!r})"


class NiceDecomposition:
    """A nice decomposition: ``nodes`` in bottom-up (children-first)
    order, ending in the root, whose bag is empty — so the final DP
    table has the single key ``()`` holding the total count."""

    __slots__ = ("nodes", "width")

    def __init__(self, nodes: Sequence[NiceNode], width: int):
        self.nodes = tuple(nodes)
        self.width = width

    def __repr__(self) -> str:
        return f"NiceDecomposition(nodes={len(self.nodes)}, width={self.width})"


def _sorted_bag(bag: FrozenSet[Constant]) -> Tuple[Constant, ...]:
    """Deterministic bag order: natural for homogeneous comparable
    bags, ``repr`` otherwise.

    The engine's DP path decomposes *interned* Gaifman graphs, so its
    bags are dense ints and sort numerically — which is what the
    packed bag-table keys of :mod:`repro.hom.dpcount` slot by, and
    matches the ascending bit-scan order of the bitset kernels.  Bags
    of raw constants (mixed types, tuples, strings) keep the legacy
    ``repr`` tie-break.
    """
    try:
        return tuple(sorted(bag))
    except TypeError:
        return tuple(sorted(bag, key=repr))


def make_nice(decomposition: TreeDecomposition,
              root: int = 0,
              adjacency: Optional[Dict[Constant, Set[Constant]]] = None,
              ) -> NiceDecomposition:
    """Convert to a nice decomposition rooted (with an empty bag) at
    ``root``.

    Between adjacent bags the conversion forgets the vanishing
    constants first, then introduces the new ones — so for any set
    ``S`` inside an original bag there is an introduce node whose bag
    already contains all of ``S`` (the fact-check anchoring
    :mod:`repro.hom.dpcount` relies on).  Multi-child bags become
    left-folded binary joins; leaves grow from empty bags one
    introduce at a time.

    ``adjacency`` (the primal graph, when the caller has it) steers
    the order multiple fresh constants are introduced in: a constant
    with a neighbour already in the bag goes first, so the DP filters
    it immediately instead of building an unconstrained product table
    that the next introduce prunes anyway.  Purely an ordering hint —
    any order is correct — and deterministic (ties keep bag order).
    """
    n = len(decomposition.bags)
    bag_neighbours: Dict[int, List[int]] = {i: [] for i in range(n)}
    for a, b in decomposition.edges:
        bag_neighbours[a].append(b)
        bag_neighbours[b].append(a)

    nodes: List[NiceNode] = []

    def emit(node: NiceNode) -> int:
        nodes.append(node)
        return len(nodes) - 1

    def chain_to(bag_order: Tuple[Constant, ...], top: int,
                 target: FrozenSet[Constant]) -> Tuple[Tuple[Constant, ...], int]:
        """Forget-then-introduce from ``bag_order`` to ``target``."""
        current = list(bag_order)
        bag = frozenset(current)
        for gone in _sorted_bag(bag - target):
            var_pos = current.index(gone)
            current.pop(var_pos)
            top = emit(NiceNode(FORGET, tuple(current), gone, var_pos, (top,)))
        pending = list(_sorted_bag(target - bag))
        while pending:
            fresh = pending[0]
            if adjacency is not None and len(pending) > 1:
                present = set(current)
                fresh = next(
                    (v for v in pending
                     if not adjacency.get(v, _NO_NEIGHBOURS)
                        .isdisjoint(present)),
                    fresh)
            pending.remove(fresh)
            new_order = _sorted_bag(frozenset(current) | {fresh})
            var_pos = new_order.index(fresh)
            current = list(new_order)
            top = emit(NiceNode(INTRODUCE, new_order, fresh, var_pos, (top,)))
        return tuple(current), top

    # Iterative post-order over the (rooted) bag tree: children's nice
    # subtrees are built before their parent joins them.
    done: Dict[int, int] = {}
    stack: List[Tuple[int, int, bool]] = [(root, -1, False)]
    while stack:
        node, parent, expanded = stack.pop()
        if not expanded:
            stack.append((node, parent, True))
            for neighbour in bag_neighbours[node]:
                if neighbour != parent:
                    stack.append((neighbour, node, False))
            continue
        target = decomposition.bags[node]
        tops: List[int] = []
        for neighbour in bag_neighbours[node]:
            if neighbour == parent:
                continue
            child_top = done[neighbour]
            child_order = nodes[child_top].order
            _, lifted = chain_to(child_order, child_top, target)
            tops.append(lifted)
        if not tops:
            top = emit(NiceNode(LEAF, (), None, -1, ()))
            _, top = chain_to((), top, target)
        else:
            top = tops[0]
            for other in tops[1:]:
                top = emit(NiceNode(JOIN, nodes[top].order, None, -1,
                                    (top, other)))
        done[node] = top

    # Drain the root bag so the final table key is ().
    root_top = done[root]
    _, final = chain_to(nodes[root_top].order, root_top, frozenset())
    assert nodes[final].order == ()
    return NiceDecomposition(nodes, decomposition.width)
