"""Bag-table dynamic programming over nice tree decompositions.

The second counting backend (DESIGN.md §9).  Where the backtracking
counter of :mod:`repro.hom.engine` explores assignments one variable at
a time — worst-case exponential in the number of source variables —
this module counts ``|hom(A, B)|`` in ``O(poly · |B|^{w+1})`` for a
source of treewidth ``w`` by sweeping a nice tree decomposition
(:mod:`repro.hom.decompose`) bottom-up:

* **leaf** — the empty partial assignment, multiplicity 1;
* **introduce v** — extend every table key by each candidate value of
  ``v`` (positional candidate sets, exactly the ones the backtracking
  counter prunes with), filtering by the facts *anchored* at this node;
* **forget v** — project ``v`` out, summing multiplicities;
* **join** — multiply tables pointwise on the shared bag (extensions
  below the two children are disjoint by the running-intersection
  property, so the product is exact).

Each fact is anchored at exactly one introduce node whose bag contains
all its terms (such a node always exists: ``make_nice`` forgets before
it introduces between adjacent bags, so any in-bag term set survives
to the introduce of its last term).  Checking a fact once suffices —
every counted assignment restricts to that node's bag — and anchoring
each fact once keeps the inner loop minimal.

Nullary facts, arity mismatches and isolated source elements are
handled by the same preamble the backtracking counter uses
(:func:`repro.hom.engine._plan_preamble`), so the two backends are
bit-identical by construction on everything outside the core search —
and property-tested bit-identical on the core
(``tests/test_dpcount.py``).  Disconnected sources need no special
case here: a decomposition of a disconnected Gaifman graph is a forest
chained into one tree, and the DP multiplies the components' counts
through its join/forget algebra; the engine still factors into
components *first* (canonical memoization happens per component), so
this path usually sees connected sources.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import StructureError
from repro.structures.structure import Structure
from repro.hom.decompose import (
    FORGET,
    INTRODUCE,
    JOIN,
    LEAF,
    NiceDecomposition,
    decompose_interned,
    make_nice,
)

_EMPTY: frozenset = frozenset()


class DPPlan:
    """A compiled DP schedule for one source structure.

    Built once per source (cached on the
    :class:`~repro.hom.engine.SourcePlan`) and reused across every
    target: ``nodes`` come from the nice decomposition, ``checks[i]``
    holds the facts anchored at introduce node ``i`` as
    ``(relation, term_positions)`` pairs with positions resolved into
    the node's bag order, and ``size_histogram`` maps bag size to node
    count — all a cost model needs (`Σ count · |B|^size`).
    """

    __slots__ = ("nice", "checks", "width", "size_histogram")

    def __init__(self, nice: NiceDecomposition,
                 checks: Tuple[Tuple[Tuple[str, Tuple[int, ...]], ...], ...]):
        self.nice = nice
        self.checks = checks
        self.width = nice.width
        histogram: Dict[int, int] = {}
        for node in nice.nodes:
            size = len(node.order)
            histogram[size] = histogram.get(size, 0) + 1
        self.size_histogram = histogram

    def __repr__(self) -> str:
        return (f"DPPlan(nodes={len(self.nice.nodes)}, "
                f"width={self.width})")


def build_dp_plan(source: Structure, plan,
                  heuristic: str = "min-fill") -> DPPlan:
    """Compile the DP schedule for ``source``.

    ``plan`` is the source's :class:`~repro.hom.engine.SourcePlan`
    (duck-typed: only ``plan.inter`` and ``plan.facts`` are read).
    The decomposition runs over the *interned* Gaifman graph — bags,
    nice-node orders and DP table keys are all dense ints — and is
    validated before use (once per source, cheap next to the DP it
    enables); every fact must find an anchor, so a heuristic bug
    raises :class:`~repro.errors.StructureError` instead of silently
    corrupting counts.
    """
    decomposition = decompose_interned(plan.inter, heuristic=heuristic)
    decomposition.validate_interned(plan.inter)
    nice = make_nice(decomposition)
    remaining = list(enumerate(plan.facts))
    checks: List[Tuple[Tuple[str, Tuple[int, ...]], ...]] = []
    for node in nice.nodes:
        if node.kind != INTRODUCE or not remaining:
            checks.append(())
            continue
        bag = set(node.order)
        position = {term: i for i, term in enumerate(node.order)}
        anchored = []
        kept = []
        for entry in remaining:
            _, (relation, terms) = entry
            if all(term in bag for term in terms):
                anchored.append(
                    (relation, tuple(position[term] for term in terms)))
            else:
                kept.append(entry)
        remaining = kept
        checks.append(tuple(anchored))
    if remaining:
        raise StructureError(
            f"decomposition anchored no bag for facts "
            f"{[str(relation) for _, (relation, _) in remaining]}; "
            f"invariants violated")
    return DPPlan(nice, tuple(checks))


def count_plan_dp(plan, index) -> int:
    """``|hom| `` of a compiled source plan into a compiled target.

    ``plan`` is a :class:`~repro.hom.engine.SourcePlan`, ``index`` a
    :class:`~repro.hom.engine.TargetIndex`.  Semantics are identical to
    :func:`repro.hom.engine._count` with ``first_only=False``.
    """
    from repro.hom.engine import _plan_preamble

    decided, domains, free_factor = _plan_preamble(plan, index, False)
    if decided is not None:
        return decided

    dp = plan.dp_plan()
    nodes = dp.nice.nodes
    all_checks = dp.checks
    tuples = index.tuples
    tables: List[Optional[Dict[tuple, int]]] = [None] * len(nodes)
    for position, node in enumerate(nodes):
        kind = node.kind
        if kind == LEAF:
            tables[position] = {(): 1}
            continue
        if kind == JOIN:
            left_at, right_at = node.children
            left, right = tables[left_at], tables[right_at]
            tables[left_at] = tables[right_at] = None
            if len(left) > len(right):
                left, right = right, left
            joined: Dict[tuple, int] = {}
            for key, count in left.items():
                other = right.get(key)
                if other is not None:
                    joined[key] = count * other
            tables[position] = joined
            continue
        child_at = node.children[0]
        child = tables[child_at]
        tables[child_at] = None
        var_pos = node.var_pos
        out: Dict[tuple, int] = {}
        if kind == FORGET:
            for key, count in child.items():
                shrunk = key[:var_pos] + key[var_pos + 1:]
                accumulated = out.get(shrunk)
                out[shrunk] = count if accumulated is None \
                    else accumulated + count
        else:  # INTRODUCE
            values = domains[node.var]
            checks = all_checks[position]
            for key, count in child.items():
                head, tail = key[:var_pos], key[var_pos:]
                for value in values:
                    grown = head + (value,) + tail
                    for relation, term_positions in checks:
                        image = tuple(grown[i] for i in term_positions)
                        if image not in tuples.get(relation, _EMPTY):
                            break
                    else:
                        # (key, value) -> grown is injective: plain set.
                        out[grown] = count
        tables[position] = out
    total = tables[-1].get((), 0)
    return total * free_factor


def count_homomorphisms_dp(source: Structure, target: Structure) -> int:
    """``|hom(source, target)|`` via tree-decomposition DP.

    Convenience entry point (fresh compilation each call, no
    factorization into components) — the property-test counterpart of
    :func:`repro.hom.search.count_homomorphisms_direct`.  Hot paths go
    through :class:`~repro.hom.engine.HomEngine` instead, which picks
    DP or backtracking per source by estimated cost.
    """
    from repro.hom.engine import TargetIndex, source_plan

    return count_plan_dp(source_plan(source), TargetIndex(target))
